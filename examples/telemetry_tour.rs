//! Observability tour: run a 4-port shared-pool fabric with the flight
//! recorder, per-packet path records, and sampled gauges enabled, then
//! walk the three telemetry products — and verify, inline, that
//! telemetry only observes (departures are bit-identical to a
//! telemetry-off run).
//!
//! ```sh
//! cargo run --release --example telemetry_tour
//! ```

use pifo::core::telemetry::EventKind;
use pifo::prelude::*;

const PORTS: usize = 4;
const RATE_BPS: u64 = 10_000_000_000;

fn build(telemetry: Option<TelemetryConfig>) -> Switch {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_burst(16);
    sb.with_shared_pool(256, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
    if let Some(cfg) = telemetry {
        sb.with_telemetry(cfg);
    }
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool)
                .expect("tree")
        });
    }
    sb.build(Box::new(|p: &Packet| p.flow.0 as usize % PORTS))
}

fn main() {
    // A bursty deterministic workload: 32 flows, 4 waves of 256 packets.
    let mut arrivals = Vec::new();
    for wave in 0..4u64 {
        for k in 0..256u64 {
            arrivals.push(Packet::new(
                wave * 256 + k,
                FlowId((k % 32) as u32),
                1_000,
                Nanos(wave * 40_000),
            ));
        }
    }

    // Telemetry config: the flight recorder is on by default; opt into
    // path records and sample gauges every 2 scheduling rounds.
    let mut cfg = TelemetryConfig::with_paths();
    cfg.sample_every = 2;

    let mut sw = build(Some(cfg));
    let run = sw.run(&arrivals, DrainMode::Batched);
    let snap = sw.telemetry_snapshot(&run).expect("telemetry enabled");

    println!(
        "{} packets in, {} departed, {} dropped\n",
        arrivals.len(),
        run.total_departures(),
        run.total_drops()
    );

    // 1. The flight recorder: per-kind lifetime counts plus the most
    //    recent events retained in each port's ring.
    println!(
        "flight recorder: {} events recorded, {} retained",
        snap.events_recorded,
        snap.events.len()
    );
    for kind in EventKind::ALL {
        if snap.count(kind) > 0 {
            println!("  {:<12} {}", kind.label(), snap.count(kind));
        }
    }

    // 2. Path records: one INT-style digest per departure, index-aligned
    //    with the departure trace for post-hoc joins.
    let port0 = &run.ports[0];
    println!("\npath records on port 0: {}", port0.paths.len());
    for (rec, dep) in port0.paths.iter().zip(&port0.departures).take(3) {
        assert_eq!(rec.wait(), dep.wait, "telemetry wait == departure wait");
        println!(
            "  packet {:>4} flow {:>2}: wait {:>12} rank {:>6} depth-at-enqueue {:>3}",
            rec.packet,
            rec.flow.0,
            format!("{}", rec.wait()),
            rec.hops()[0].rank,
            rec.hops()[0].depth
        );
    }

    // 3. Gauges: sampled time series per port.
    println!("\ngauges:");
    for g in &snap.gauges {
        let peak = g.points.iter().map(|p| p.value).max().unwrap_or(0);
        println!(
            "  {:<22} {:>3} samples, peak {}",
            g.name,
            g.points.len(),
            peak
        );
    }

    // The contract: telemetry observes, never steers.
    let base = build(None).run(&arrivals, DrainMode::Batched);
    for (a, b) in base.ports.iter().zip(&run.ports) {
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.drops, b.drops);
    }
    println!("\ndeparture traces bit-identical with telemetry on vs off ✓");
    println!(
        "snapshot JSON (schema pifo-telemetry-v1): {} bytes",
        snap.to_json().len()
    );
}
