//! Least-Slack-Time-First across a multi-switch path (§3.1, Fig 6):
//! deadline-bearing traffic spends its slack where congestion actually
//! bites, cutting tail latency versus FIFO.
//!
//! ```sh
//! cargo run --release --example tail_latency_lstf
//! ```

use pifo::prelude::*;

const LINK: u64 = 10_000_000_000;

fn lstf_tree() -> ScheduleTree {
    let mut b = TreeBuilder::new();
    let root = b.add_root("lstf", Box::new(Lstf));
    b.buffer_limit(500_000);
    b.build(Box::new(move |_| root)).expect("valid tree")
}

fn main() {
    let end = Nanos::from_millis(30);

    // An interactive flow with a 80 us end-to-end budget over 3 hops.
    let mut urgent: Vec<Packet> = {
        let mut src = PoissonSource::new(FlowId(1), 500, 40_000.0, end, 99);
        std::iter::from_fn(move || src.next_packet()).collect()
    };
    for (i, p) in urgent.iter_mut().enumerate() {
        p.slack = 80_000;
        p.id = PacketId(i as u64);
    }

    // Heavy cross traffic joins at every hop (80% load), generous slack.
    let cross = |hop: u64| -> Vec<Packet> {
        let mut src =
            PoissonSource::new(FlowId(50 + hop as u32), 1_500, 660_000.0, end, 1234 + hop);
        let mut v: Vec<Packet> = std::iter::from_fn(move || src.next_packet()).collect();
        for (i, p) in v.iter_mut().enumerate() {
            p.slack = 50_000_000;
            p.id = PacketId(10_000_000 * (hop + 1) + i as u64);
        }
        v
    };

    for (name, use_lstf) in [("LSTF", true), ("FIFO", false)] {
        let hops: Vec<Hop> = (0..3u64)
            .map(|h| Hop {
                scheduler: if use_lstf {
                    Box::new(TreeScheduler::new("lstf", lstf_tree())) as Box<dyn PortScheduler>
                } else {
                    Box::new(FifoSched::new(500_000))
                },
                cross_traffic: cross(h),
                prop_delay: Nanos(2_000),
            })
            .collect();
        let mut cfg = PortConfig::new(LINK).with_horizon(end);
        if use_lstf {
            cfg = cfg.with_lstf_charging();
        }
        let res = run_pipeline(urgent.clone(), hops, &cfg);
        let delays: Vec<u64> = res.e2e_delay.values().copied().collect();
        let st = latency_stats(&delays).expect("delivered");
        let deadline_misses = delays.iter().filter(|&&d| d > 80_000 + 6_000).count();
        println!(
            "{name:<6} {} pkts | e2e mean {:6.1} us p99 {:6.1} us max {:6.1} us | misses {}",
            st.count,
            st.mean_ns / 1e3,
            st.p99_ns as f64 / 1e3,
            st.max_ns as f64 / 1e3,
            deadline_misses
        );
    }
}
