//! Write a brand-new scheduling algorithm in the transaction language
//! and deploy it without touching the "hardware" — the paper's whole
//! point (§8: "No longer will research experiments be limited… they
//! could create their own").
//!
//! The custom policy: **deadline-aware fair queueing** — packets carry a
//! deadline; rank = time to deadline, but each flow is also charged a
//! fair-share virtual start so a flow cannot monopolise by setting every
//! deadline to zero. (A toy policy — the point is that it's *new*.)
//!
//! ```sh
//! cargo run --example custom_algorithm
//! ```

use pifo::domino::ast::AtomKind;
use pifo::domino::{analyze, parse, DominoScheduling, Interp};
use pifo::prelude::*;

const SRC: &str = r#"
// Deadline-aware fair queueing: rank = max(fair-share start, slack-ish
// deadline urgency). State mirrors STFQ's per-flow finish tags.
statemap last_finish;
state virtual_time = 0;

if (flow in last_finish) {
    p.start = max(virtual_time, last_finish[flow]);
} else {
    p.start = virtual_time;
}
last_finish[flow] = p.start + (p.length * 256) / weight;

// Urgency: nanoseconds to deadline, floored at zero, scaled to virtual
// units (>>8 keeps it comparable to the 256-scaled starts).
p.urgency = p.deadline - now;
if (p.urgency < 0) { p.urgency = 0; }

p.rank = min(p.start, p.urgency);

@dequeue {
    virtual_time = max(virtual_time, rank);
}
"#;

fn main() {
    // 1. Parse and line-rate check the program, like the Domino compiler.
    let prog = parse(SRC).expect("program parses");
    let report = analyze(&prog).expect("analyzable");
    println!(
        "atom required: {} (available up to {}), pipeline depth {}, {} ALUs",
        report.required_atom,
        AtomKind::Pairs,
        report.stages,
        report.atoms
    );
    assert!(
        report.required_atom <= AtomKind::Pairs,
        "fits the vocabulary"
    );

    // 2. Deploy it on a PIFO.
    let tx = DominoScheduling::new("deadline-fq", Interp::new(prog));
    let mut b = TreeBuilder::new();
    let root = b.add_root("custom", Box::new(tx));
    let mut tree = b.build(Box::new(move |_| root)).expect("valid");

    // 3. Traffic: a bulk flow without deadlines vs sparse urgent frames.
    let mut id = 0u64;
    for i in 0..12u64 {
        let t = Nanos(i * 100);
        tree.enqueue(
            Packet::new(id, FlowId(1), 1_500, t).with_deadline(Nanos(1 << 40)),
            t,
        )
        .expect("enqueue");
        id += 1;
        if i % 4 == 3 {
            // An urgent frame with a 2 us deadline.
            tree.enqueue(
                Packet::new(id, FlowId(2), 200, t).with_deadline(t + Nanos(2_000)),
                t,
            )
            .expect("enqueue");
            id += 1;
        }
    }

    let order: Vec<String> = std::iter::from_fn(|| tree.dequeue(Nanos(1 << 41)))
        .map(|p| format!("{}{}", if p.flow.0 == 2 { "URGENT-" } else { "" }, p.id.0))
        .collect();
    println!("dequeue order: {}", order.join(", "));
    println!("(urgent frames overtook the bulk flow without starving it)");
}
