//! Quickstart: program three schedulers onto PIFOs in a few lines each
//! and watch how they order the same four packets.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pifo::prelude::*;
use pifo_core::transaction::FnTransaction;

/// Build a single-PIFO scheduler from any scheduling transaction.
fn single(tx: Box<dyn SchedulingTransaction>) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    let root = b.add_root("q", tx);
    b.build(Box::new(move |_| root)).expect("valid tree")
}

fn main() {
    // Four packets: (id, flow, bytes, class, remaining flow bytes).
    let packets = [
        (0u64, 1u32, 1_500u32, 2u8, 90_000u64),
        (1, 2, 64, 0, 600),
        (2, 1, 1_500, 2, 88_500),
        (3, 3, 700, 1, 12_000),
    ];
    let mk = |(id, flow, len, class, rem): (u64, u32, u32, u8, u64)| {
        Packet::new(id, FlowId(flow), len, Nanos(id))
            .with_class(class)
            .with_remaining(rem)
    };

    // 1. FIFO: rank = arrival time.
    let fifo = single(Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
        Rank(ctx.now.as_nanos())
    })));

    // 2. Strict priority: rank = TOS class (one line, §3.4).
    let prio = single(Box::new(StrictPriority));

    // 3. SRPT: rank = remaining flow bytes (one line, §3.4).
    let srpt = single(Box::new(Srpt));

    for (name, mut tree) in [("FIFO", fifo), ("StrictPriority", prio), ("SRPT", srpt)] {
        for spec in packets {
            let p = mk(spec);
            let t = p.arrival;
            tree.enqueue(p, t).expect("enqueue");
        }
        let order: Vec<String> = std::iter::from_fn(|| tree.dequeue(Nanos(100)))
            .map(|p| format!("p{}", p.id.0))
            .collect();
        println!("{name:<16} -> {}", order.join(", "));
    }

    // The same idea scales to weighted fairness: STFQ (Fig 1 of the
    // paper) is just another transaction.
    let mut wfq = single(Box::new(Stfq::new(WeightTable::from_pairs([
        (FlowId(1), 1),
        (FlowId(2), 4),
    ]))));
    let mut id = 100;
    for _ in 0..6 {
        for f in [1u32, 2] {
            wfq.enqueue(Packet::new(id, FlowId(f), 1_000, Nanos(0)), Nanos(0))
                .expect("enqueue");
            id += 1;
        }
    }
    let order: Vec<u32> = std::iter::from_fn(|| wfq.dequeue(Nanos(1)))
        .map(|p| p.flow.0)
        .collect();
    println!(
        "WFQ 1:4          -> flows {:?} (flow 2 gets ~4 of every 5 slots)",
        order
    );

    // The queue engine behind every node is swappable without touching
    // the program: `TreeBuilder::with_backend` picks the sorted-array
    // reference, the binary heap, or the Eiffel-style bucket calendar
    // (fastest at switch-scale occupancies). Semantics are identical on
    // every *exact* backend — same order, same FIFO tie-breaks.
    for backend in PifoBackend::EXACT {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        let root = b.add_root("prio", Box::new(StrictPriority));
        let mut tree = b.build(Box::new(move |_| root)).expect("valid tree");
        for spec in packets {
            let p = mk(spec);
            let t = p.arrival;
            tree.enqueue(p, t).expect("enqueue");
        }
        let order: Vec<String> = std::iter::from_fn(|| tree.dequeue(Nanos(100)))
            .map(|p| format!("p{}", p.id.0))
            .collect();
        println!(
            "StrictPriority on '{backend}' backend -> {}",
            order.join(", ")
        );
    }

    // The *approximate* backends (`sp-pifo:k`, `rifo`, `aifo`) trade
    // exact ordering for O(1)-ish queues; their deviation is a number,
    // not a surprise: enable inversion tracking and read how far each
    // departure overtook a smaller rank still waiting.
    for backend in PifoBackend::APPROX {
        let mut b = TreeBuilder::new();
        b.with_backend(backend).track_inversions(true);
        let root = b.add_root("prio", Box::new(StrictPriority));
        let mut tree = b.build(Box::new(move |_| root)).expect("valid tree");
        for i in 0..32u64 {
            // Zig-zag priorities so an inexact queue actually inverts.
            let p = Packet::new(i, FlowId(0), 1_000, Nanos(i)).with_class((i * 7 % 10) as u8);
            tree.enqueue(p, Nanos(i)).expect("enqueue");
        }
        while tree.dequeue(Nanos(100)).is_some() {}
        let stats = tree.inversion_stats().expect("tracking enabled");
        println!(
            "StrictPriority on '{backend}' backend -> {} inversions, unpifoness {}",
            stats.inversions, stats.unpifoness
        );
    }
}
