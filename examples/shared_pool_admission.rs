//! One buffer for all ports: §5.1's shared packet memory with §6.1
//! threshold admission, on a 16-port fabric under an incast storm.
//!
//! Three buffer organisations face the same traffic — an 8×
//! oversubscribed incast storm into port 0, with short bursts on every
//! other port:
//!
//! * **private slabs** — ports share nothing: victims are safe, but the
//!   storm cannot use one byte of the victims' idle memory;
//! * **one shared pool, naive cap** — the storm pins the pool at
//!   capacity and locks every victim port out;
//! * **one shared pool, dynamic thresholds** (Choudhury–Hahne) — each
//!   port may hold at most `alpha ×` the remaining free space, so the
//!   storm is fenced to a fraction of the pool and victims sail through.
//!
//! ```sh
//! cargo run --release --example shared_pool_admission
//! ```

use pifo::prelude::*;

const PORTS: usize = 16;
const POOL: usize = 1_024;

fn arrivals() -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    // The storm: 25 waves of 1 024 packets (64 senders x 16) into port 0.
    for wave in 0..25u64 {
        for k in 0..1_024u64 {
            out.push(Packet::new(
                id,
                FlowId((k % 64) as u32),
                1_000,
                Nanos(wave * 20_000),
            ));
            id += 1;
        }
    }
    // The victims: one 64-packet burst per port, staggered mid-storm.
    for port in 1..PORTS as u64 {
        for _ in 0..64 {
            out.push(Packet::new(
                id,
                FlowId(100 + port as u32),
                1_000,
                Nanos(50_000 + 30_000 * (port - 1)),
            ));
            id += 1;
        }
    }
    out.sort_by_key(|p| p.arrival);
    out
}

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        (p.flow.0 as usize - 100) % PORTS
    }
}

fn stfq_root(b: &mut TreeBuilder) -> NodeId {
    b.add_root("stfq", Box::new(Stfq::unweighted()))
}

fn report(name: &str, run: &SwitchRun) {
    let victim_drops: u64 = run.ports[1..].iter().map(|p| p.drops).sum();
    let victim_out: usize = run.ports[1..].iter().map(|p| p.departures.len()).sum();
    println!(
        "{name:<28} hog: {:>6} sent / {:>6} dropped   victims: {:>4} sent / {:>4} dropped",
        run.ports[0].departures.len(),
        run.ports[0].drops,
        victim_out,
        victim_drops,
    );
}

fn main() {
    let arr = arrivals();
    println!(
        "{} packets: an incast storm into port 0, a 64-packet burst on each of {} victim ports\n",
        arr.len(),
        PORTS - 1
    );

    // --- Private slabs: isolation by construction. ----------------------
    let mut sb = SwitchBuilder::new(10_000_000_000);
    for port in 0..PORTS {
        let mut b = TreeBuilder::new();
        if port == 0 {
            b.buffer_limit(POOL);
        }
        let root = stfq_root(&mut b);
        sb.add_port(b.build(Box::new(move |_| root)).unwrap());
    }
    let run = sb.build(Box::new(classify)).run(&arr, DrainMode::Batched);
    report("private slabs", &run);

    // --- One pool, naive cap: the storm owns every slot. ----------------
    let mut sb = SwitchBuilder::new(10_000_000_000);
    sb.with_shared_pool(POOL, AdmissionPolicy::Unlimited);
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            let root = stfq_root(&mut b);
            b.build_in_pool(Box::new(move |_| root), pool).unwrap()
        });
    }
    let run = sb.build(Box::new(classify)).run(&arr, DrainMode::Batched);
    report("shared pool, naive cap", &run);
    let naive_victim_drops: u64 = run.ports[1..].iter().map(|p| p.drops).sum();

    // --- One pool, dynamic thresholds: the storm is fenced. -------------
    let mut sb = SwitchBuilder::new(10_000_000_000);
    let pool = sb.with_shared_pool(POOL, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
    for _ in 0..PORTS {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            let root = stfq_root(&mut b);
            b.build_in_pool(Box::new(move |_| root), h).unwrap()
        });
    }
    let run = sb.build(Box::new(classify)).run(&arr, DrainMode::Batched);
    report("shared pool, dynamic alpha=1", &run);

    let stats = pool.stats();
    println!(
        "\npool after the run: {} live / {:?} capacity; per-port rejects: {:?}",
        stats.live,
        stats.capacity,
        stats.ports.iter().map(|p| p.rejected).collect::<Vec<_>>(),
    );
    let fenced_victim_drops: u64 = run.ports[1..].iter().map(|p| p.drops).sum();
    println!(
        "\nThe §6.1 point: one memory, shared *and* fenced — victims dropped {naive_victim_drops} \
         packets under the naive cap, {fenced_victim_drops} under dynamic thresholds."
    );
}
