//! Multi-port switch fabric: one shared classifier spraying mixed
//! traffic — an incast storm, Markov on/off bursts and smooth CBR —
//! across four egress ports, each scheduled by its own PIFO tree, then
//! drained at line rate with the batched hot path.
//!
//! ```sh
//! cargo run --release --example multi_port_switch
//! ```

use pifo::prelude::*;

fn port_tree(backend: PifoBackend) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    b.buffer_limit(20_000);
    let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
    b.build(Box::new(move |_| root)).expect("single-node tree")
}

fn main() {
    const PORTS: usize = 4;
    let end = Nanos::from_millis(2);

    // Traffic mix. Flows 0..31 are an incast storm aimed (via the
    // classifier below) at port 0; flows 100..104 burst on/off; flows
    // 200..208 are smooth CBR background spread across all ports.
    let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
    sources.push(Box::new(IncastSource::new(
        FlowId(0),
        32,             // fan-in
        1_000,          // bytes
        8,              // packets per sender per epoch
        10_000_000_000, // sender access rate
        Nanos::from_micros(100),
        end,
    )));
    for f in 100..104 {
        sources.push(Box::new(MarkovOnOffSource::new(
            FlowId(f),
            1_000,
            12.0,
            10_000_000_000,
            Nanos::from_micros(30),
            end,
            f as u64,
        )));
    }
    for f in 200..208 {
        sources.push(Box::new(CbrSource::new(
            FlowId(f),
            1_000,
            500_000_000,
            Nanos::ZERO,
            end,
        )));
    }
    let mut arrivals = merge(sources);
    renumber(&mut arrivals);
    println!("{} packets across {} sources\n", arrivals.len(), 13);

    // The shared classifier: the incast flows all hit port 0; everything
    // else is spread by flow hash.
    let classify = |p: &Packet| -> usize {
        if p.flow.0 < 32 {
            0
        } else {
            p.flow.0 as usize % PORTS
        }
    };

    // One fabric per backend; batched and per-packet drains agree bit
    // for bit, so run the batched one and cross-check on the reference.
    for backend in PifoBackend::ALL {
        let build = || {
            let mut sb = SwitchBuilder::new(10_000_000_000); // 10 Gb/s ports
            for _ in 0..PORTS {
                sb.add_port(port_tree(backend));
            }
            sb.with_horizon(end).with_burst(64);
            sb.build(Box::new(classify))
        };
        let t0 = std::time::Instant::now();
        let run = build().run(&arrivals, DrainMode::Batched);
        let elapsed = t0.elapsed();

        println!(
            "backend={} ({:.1} ms wall clock)",
            backend,
            elapsed.as_secs_f64() * 1e3
        );
        for (i, port) in run.ports.iter().enumerate() {
            let bytes: u64 = port.departures.iter().map(|d| d.packet.length as u64).sum();
            let max_wait = port
                .departures
                .iter()
                .map(|d| d.wait)
                .max()
                .unwrap_or(Nanos::ZERO);
            println!(
                "  port {i}: {:>6} departures  {:>5} drops  {:>6.2} Gb/s offered  max wait {:>9}",
                port.departures.len(),
                port.drops,
                (bytes as f64 * 8.0) / end.as_nanos() as f64,
                format!("{} ns", max_wait.as_nanos()),
            );
        }
        let reference = build().run(&arrivals, DrainMode::PerPacket);
        let agree = reference.ports.iter().zip(&run.ports).all(|(a, b)| {
            a.departures.len() == b.departures.len()
                && a.departures
                    .iter()
                    .zip(&b.departures)
                    .all(|(x, y)| x.packet == y.packet && x.start == y.start)
        });
        println!(
            "  batched == per-packet traces: {}\n",
            if agree {
                "yes (bit-identical)"
            } else {
                "NO — BUG"
            }
        );
        assert!(agree);
    }

    println!("The incast storm concentrates on port 0 (watch its max wait),");
    println!("while the CBR background on ports 1-3 barely queues — the");
    println!("behaviour single-queue microbenchmarks cannot show.");
}
