//! A datacenter tenant hierarchy with shaping — Figs 3 & 4 of the paper
//! as a runnable scenario.
//!
//! Two tenants share a 10 Gbit/s port 1:9; within each tenant, services
//! get weighted fair shares; tenant B's traffic is additionally capped at
//! 1 Gbit/s by a token-bucket shaper (e.g. a purchased rate plan).
//!
//! ```sh
//! cargo run --release --example datacenter_hierarchy
//! ```

use pifo::prelude::*;

const LINK: u64 = 10_000_000_000;

fn main() {
    // Flows: tenant A runs services 0 (web, weight 3) and 1 (batch, 7);
    // tenant B runs services 2 (cache, 4) and 3 (analytics, 6).
    let mut b = TreeBuilder::new();
    let root = b.add_root(
        "port",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(1), 1), // child node 1 = tenant A
            (FlowId(2), 9), // child node 2 = tenant B
        ]))),
    );
    let tenant_a = b.add_child(
        root,
        "tenantA",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(0), 3),
            (FlowId(1), 7),
        ]))),
    );
    let tenant_b = b.add_child(
        root,
        "tenantB",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(2), 4),
            (FlowId(3), 6),
        ]))),
    );
    // Tenant B bought a 1 Gbit/s plan: shape the whole class (Fig 4).
    b.set_shaper(
        tenant_b,
        Box::new(TokenBucketFilter::new(1_000_000_000, 50_000)),
    );
    b.buffer_limit(500_000);
    let tree = b
        .build(Box::new(
            move |p: &Packet| {
                if p.flow.0 < 2 {
                    tenant_a
                } else {
                    tenant_b
                }
            },
        ))
        .expect("valid tree");

    // Everyone offers 5 Gbit/s of 1500 B packets for 20 ms.
    let end = Nanos::from_millis(20);
    let sources: Vec<Box<dyn TrafficSource>> = (0..4u32)
        .map(|f| {
            Box::new(CbrSource::new(
                FlowId(f),
                1_500,
                5_000_000_000,
                Nanos::ZERO,
                end,
            )) as Box<dyn TrafficSource>
        })
        .collect();
    let mut arrivals = pifo::sim::merge(sources);
    pifo::sim::renumber(&mut arrivals);

    let mut sched = TreeScheduler::new("tenants", tree);
    let cfg = PortConfig::new(LINK).with_horizon(end);
    let deps = run_port(&arrivals, &mut sched, &cfg);

    let window = (Nanos::from_millis(5), end);
    let report = throughput(&deps, window.0, window.1);
    println!("tenant hierarchy on a 10 Gbit/s port, tenant B shaped to 1 Gbit/s:");
    for (flow, label) in [
        (0u32, "tenant A / web      (w=3)"),
        (1, "tenant A / batch    (w=7)"),
        (2, "tenant B / cache    (w=4)"),
        (3, "tenant B / analytics(w=6)"),
    ] {
        println!(
            "  {label}: {:7.2} Mbit/s",
            report.rate_bps(FlowId(flow)) / 1e6
        );
    }
    let b_total = (report.rate_bps(FlowId(2)) + report.rate_bps(FlowId(3))) / 1e6;
    println!("  tenant B total: {b_total:.2} Mbit/s (plan: 1000)");
    println!(
        "  tenant A absorbs the rest: {:.2} Mbit/s",
        (report.rate_bps(FlowId(0)) + report.rate_bps(FlowId(1))) / 1e6
    );
}
