//! Drive the hardware model by hand: one PIFO block cycle by cycle, then
//! a compiled two-level mesh — the §4–§5 design made tangible.
//!
//! ```sh
//! cargo run --example hardware_walkthrough
//! ```

use pifo::compiler::{compile, instantiate, TreeSpec};
use pifo::hw::{BlockConfig, LogicalPifoId, PifoBlock};
use pifo::prelude::*;

fn main() {
    // --- A single PIFO block (Fig 12) -------------------------------
    println!("== one PIFO block: flow scheduler + rank store ==");
    let mut blk = PifoBlock::new(BlockConfig::tiny()).strict_monotonic(true);
    let q = LogicalPifoId(0);

    // Two flows with increasing ranks; only heads occupy the sorted array.
    for (flow, rank, meta) in [
        (1u32, 10u64, 0u64),
        (1, 25, 1),
        (1, 40, 2),
        (2, 15, 3),
        (2, 30, 4),
    ] {
        blk.enqueue(q, FlowId(flow), Rank(rank), meta)
            .expect("enqueue");
        println!(
            "  enqueue f{flow} rank {rank}: scheduler holds {} heads, rank store {} elements",
            blk.active_flows(),
            blk.stored_elements()
        );
    }
    print!("  dequeue order:");
    while let Some((rank, flow, _)) = blk.dequeue(q) {
        print!(" {}@{}", flow, rank);
    }
    println!("\n  (flows interleave by rank; each flow stays FIFO)\n");

    // --- PFC pause (Sec 6.2) ----------------------------------------
    println!("== PFC: pausing flow 1 masks it in the scheduler ==");
    blk.enqueue(q, FlowId(1), Rank(5), 0).expect("enqueue");
    blk.enqueue(q, FlowId(2), Rank(9), 1).expect("enqueue");
    blk.pause_flow(FlowId(1));
    println!(
        "  paused f1; head is now {:?}",
        blk.peek(q).map(|(r, f, _)| (f, r))
    );
    blk.resume_flow(FlowId(1));
    println!(
        "  resumed;  head is back {:?}\n",
        blk.peek(q).map(|(r, f, _)| (f, r))
    );
    while blk.dequeue(q).is_some() {}

    // --- A compiled mesh (Figs 9-11) ---------------------------------
    println!("== compiling HPFQ onto a mesh (Fig 10b) ==");
    let layout = compile(&TreeSpec::hpfq()).expect("compiles");
    print!("{}", layout.render());

    let sched: Vec<Box<dyn SchedulingTransaction>> = vec![
        Box::new(Stfq::unweighted()),
        Box::new(Stfq::unweighted()),
        Box::new(Stfq::unweighted()),
    ];
    let mut mesh = instantiate(
        &layout,
        sched,
        vec![None, None, None],
        Box::new(|p: &Packet| if p.flow.0 % 2 == 0 { 1usize } else { 2 }),
        BlockConfig::default(),
        1,
    );

    println!("\n== running 8 packets through the mesh, cycle by cycle ==");
    for i in 0..8u64 {
        mesh.enqueue_packet(Packet::new(i, FlowId((i % 4) as u32), 64, mesh.now()))
            .expect("ports free");
        mesh.tick();
    }
    print!("  transmit order:");
    let mut got = 0;
    while got < 8 {
        // Same-lpifo dequeues need 3-cycle spacing (§5.2).
        mesh.tick();
        mesh.tick();
        mesh.tick();
        if let Ok(Some(p)) = mesh.transmit() {
            print!(" p{}", p.id.0);
            got += 1;
        }
    }
    println!("\n  mesh stats: {:?}", mesh.stats());
}
