//! Minimizing flow completion times with SRPT — the opening motivation
//! of the paper (§1), programmed as a one-line scheduling transaction.
//!
//! ```sh
//! cargo run --release --example flow_completion
//! ```

use pifo::prelude::*;
use std::collections::HashMap;

const LINK: u64 = 10_000_000_000;

fn single(tx: Box<dyn SchedulingTransaction>) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    let root = b.add_root("q", tx);
    b.buffer_limit(2_000_000);
    b.build(Box::new(move |_| root)).expect("valid tree")
}

fn main() {
    // A heavy-tailed web-search-like workload: 500 flows.
    let (arrivals, specs) = flow_workload(
        500,
        2_000.0, // flows per second
        &SizeDistribution::web_search(),
        LINK,
        1_500,
        2024,
    );
    let expected: HashMap<FlowId, u64> = specs.iter().map(|s| (s.flow, s.size)).collect();
    println!(
        "workload: {} flows, {} packets, sizes {}B..{}B",
        specs.len(),
        arrivals.len(),
        specs.iter().map(|s| s.size).min().unwrap(),
        specs.iter().map(|s| s.size).max().unwrap()
    );

    let cfg = PortConfig::new(LINK).with_horizon(Nanos::from_secs(30));
    let mut results = Vec::new();
    for (name, mut sched) in [
        (
            "SRPT",
            Box::new(TreeScheduler::new("srpt", single(Box::new(Srpt)))) as Box<dyn PortScheduler>,
        ),
        ("FIFO", Box::new(FifoSched::new(2_000_000))),
    ] {
        let deps = run_port(&arrivals, sched.as_mut(), &cfg);
        let fcts = pifo::sim::flow_completions(&deps, &expected);
        let small: Vec<u64> = fcts
            .iter()
            .filter(|c| c.bytes < 100_000)
            .map(|c| c.fct().as_nanos())
            .collect();
        let all: Vec<u64> = fcts.iter().map(|c| c.fct().as_nanos()).collect();
        let st_small = latency_stats(&small).expect("small flows exist");
        let st_all = latency_stats(&all).expect("flows exist");
        println!(
            "{name:<6} mean FCT {:8.3} ms | small flows: mean {:8.3} ms, p99 {:8.3} ms",
            st_all.mean_ns / 1e6,
            st_small.mean_ns / 1e6,
            st_small.p99_ns as f64 / 1e6
        );
        results.push(st_small.mean_ns);
    }
    println!(
        "SRPT improves small-flow mean FCT by {:.1}x over FIFO",
        results[1] / results[0]
    );
}
