//! Workspace smoke test: the umbrella crate's public API, end to end.
//!
//! Builds a two-level HPFQ hierarchy through `pifo::prelude`, pushes a
//! mixed four-flow trace through it, and checks the two invariants every
//! PIFO scheduler owes its callers: **work conservation** (a backlogged
//! tree always serves, and serves everything) and **FIFO within each
//! flow** (per-flow packet order survives scheduling). A second test
//! sweeps the umbrella re-exports across all seven sub-crates so a
//! broken `pub use` fails here rather than in downstream code.

use pifo::prelude::*;
use std::collections::HashMap;

#[test]
fn hpfq_two_level_work_conservation_and_flow_fifo() {
    // Two-level hierarchy: root splits 3:1 between Left and Right;
    // each leaf class runs WFQ over two flows.
    let h = Hierarchy::class(
        "root",
        vec![
            (
                3,
                Hierarchy::leaf("left", vec![(FlowId(0), 2), (FlowId(1), 1)]),
            ),
            (
                1,
                Hierarchy::leaf("right", vec![(FlowId(2), 1), (FlowId(3), 1)]),
            ),
        ],
    );
    let (mut tree, leaf_of) = h.build();
    assert_eq!(leaf_of.len(), 4, "all four flows mapped to leaves");

    // Mixed trace: four flows interleaved, varying sizes, strictly
    // increasing arrival times so per-flow enqueue order is unambiguous.
    let mut enqueued_per_flow: HashMap<u32, Vec<u64>> = HashMap::new();
    let mut id = 0u64;
    let mut now = 0u64;
    for round in 0..50u64 {
        for flow in 0..4u32 {
            // Uneven mix: flow 0 sends every round, flow 1 every other
            // round, flows 2-3 in bursts of two every third round.
            let sends = match flow {
                0 => 1,
                1 => usize::from(round % 2 == 0),
                _ => {
                    if round % 3 == 0 {
                        2
                    } else {
                        0
                    }
                }
            };
            for _ in 0..sends {
                now += 100;
                let len = 64 + ((id * 37) % 1400) as u32;
                tree.enqueue(Packet::new(id, FlowId(flow), len, Nanos(now)), Nanos(now))
                    .expect("enqueue admitted");
                enqueued_per_flow.entry(flow).or_default().push(id);
                id += 1;
            }
        }
    }
    let total = id as usize;
    assert_eq!(tree.len(), total, "everything buffered before service");

    // Work conservation: with no shapers in the tree, a backlogged
    // scheduler must emit a packet on every service opportunity, and
    // must eventually emit exactly what was enqueued.
    let mut departures_per_flow: HashMap<u32, Vec<u64>> = HashMap::new();
    let horizon = Nanos(now + 1);
    for served in 0..total {
        let p = tree
            .dequeue(horizon)
            .unwrap_or_else(|| panic!("backlogged tree failed to serve at step {served}"));
        departures_per_flow
            .entry(p.flow.0)
            .or_default()
            .push(p.id.0);
    }
    assert!(tree.dequeue(horizon).is_none(), "tree fully drained");
    assert_eq!(tree.len(), 0);

    // FIFO within flow: each flow's departure order equals its enqueue
    // order (scheduling may interleave flows, never reorder one).
    for (flow, sent) in &enqueued_per_flow {
        assert_eq!(
            departures_per_flow.get(flow),
            Some(sent),
            "flow {flow} departures must preserve enqueue order"
        );
    }
}

#[test]
fn umbrella_reexports_cover_every_subcrate() {
    // pifo::core / pifo::algos — Fig 3's HPFQ instance runs, zero-copy
    // through the shared packet-buffer slab.
    let (mut tree, _) = pifo::algos::fig3_hpfq();
    tree.enqueue(Packet::new(0, FlowId(0), 100, Nanos(0)), Nanos(0))
        .expect("fig3 tree accepts flow 0");
    assert_eq!(
        tree.packet_buffer().live(),
        1,
        "packet lives once, in the slab"
    );
    assert_eq!(tree.peek_at(Nanos(1)).expect("previews head").id.0, 0);
    assert_eq!(tree.dequeue(Nanos(1)).expect("serves it").id.0, 0);
    assert_eq!(
        tree.packet_buffer().live(),
        0,
        "dequeue moved it out of its slot"
    );
    assert_eq!(
        tree.shaping_inspections(),
        0,
        "work-conserving trees never touch the shaping agenda"
    );

    // pifo::core — the statically dispatched engine sum re-exports too.
    let mut q: EnumPifo<u32> = PifoBackend::Bucket.make_enum();
    q.push(Rank(3), 30);
    q.push(Rank(1), 10);
    assert_eq!(q.backend(), PifoBackend::Bucket);
    assert_eq!(q.pop(), Some((Rank(1), 10)));

    // pifo::core — PacketBuffer/PktHandle round-trip through the prelude.
    let mut slab = PacketBuffer::with_capacity(2);
    let h: PktHandle = slab
        .try_insert(Packet::new(9, FlowId(0), 64, Nanos(0)))
        .unwrap();
    assert_eq!(slab.get(h).id.0, 9);
    assert_eq!(slab.release(h).expect("last ref moves out").id.0, 9);

    // pifo::domino — parse + analyze the paper's STFQ program.
    let prog = pifo::domino::parser::parse(pifo::domino::figures::STFQ_SRC).expect("STFQ parses");
    let report = pifo::domino::pipeline::analyze(&prog).expect("STFQ compiles to atoms");
    assert_eq!(report.required_atom, pifo::domino::ast::AtomKind::Pairs);

    // pifo::hw — a PIFO block round-trips one element.
    let mut block = pifo::hw::PifoBlock::new(pifo::hw::BlockConfig::default());
    block
        .enqueue(pifo::hw::LogicalPifoId(0), FlowId(1), Rank(5), 42)
        .expect("block enqueue");
    let (rank, flow, meta) = block
        .dequeue(pifo::hw::LogicalPifoId(0))
        .expect("block dequeue");
    assert_eq!((rank, flow, meta), (Rank(5), FlowId(1), 42));

    // pifo::compiler — compile a tiny two-level tree spec onto a mesh.
    let spec = pifo::compiler::TreeSpec::new(vec![("root", None, false), ("leaf", Some(0), false)]);
    let layout = pifo::compiler::compile(&spec).expect("two-node tree compiles");
    assert!(layout.n_blocks >= 1, "layout allocates at least one block");

    // pifo::synth — Table 1 renders non-empty.
    let table1 = pifo::synth::render_table1(&pifo::hw::BlockConfig::default());
    assert!(table1.contains("mm"), "area table mentions mm^2: {table1}");

    // pifo::sim — deterministic CBR source feeds the metrics pipeline.
    let src = pifo::sim::CbrSource::new(FlowId(0), 1000, 1_000_000_000, Nanos(0), Nanos(10_000));
    let packets = pifo::sim::merge(vec![Box::new(src)]);
    assert!(!packets.is_empty(), "CBR source produced packets");
}
