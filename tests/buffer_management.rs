//! §6.1 end-to-end: buffer management composes with (and is orthogonal
//! to) programmable scheduling.
//!
//! The scenario is the classic tail-drop lockout: with a small shared
//! buffer and phase-aligned arrivals, the
//! slowest-draining flow can monopolise freed buffer slots and starve
//! the others *before the scheduler ever sees their packets*. The
//! paper's answer (§6.1) is per-flow thresholds in front of the
//! scheduler; the dynamic Choudhury–Hahne variant \[14\] restores the
//! scheduler's weighted shares without retuning.

use pifo_algos::{Stfq, WeightTable};
use pifo_core::prelude::*;
use pifo_sim::{
    run_port, throughput, CbrSource, ManagedScheduler, PortConfig, SharedBuffer, Threshold,
    TrafficSource, TreeScheduler,
};

const LINK: u64 = 10_000_000_000;

fn arrivals(end: Nanos) -> Vec<Packet> {
    let sources: Vec<Box<dyn TrafficSource>> = (1..=3u32)
        .map(|f| {
            Box::new(CbrSource::new(FlowId(f), 1_500, LINK, Nanos::ZERO, end))
                as Box<dyn TrafficSource>
        })
        .collect();
    let mut pkts = pifo_sim::merge(sources);
    pifo_sim::renumber(&mut pkts);
    pkts
}

fn stfq_tree() -> ScheduleTree {
    let mut b = TreeBuilder::new();
    let root = b.add_root(
        "wfq",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(1), 1),
            (FlowId(2), 2),
            (FlowId(3), 4),
        ]))),
    );
    // The *scheduler* is unbounded; admission control happens in front.
    b.build(Box::new(move |_| root)).expect("valid")
}

fn run(threshold: Option<Threshold>) -> [f64; 3] {
    let end = Nanos::from_millis(10);
    let pkts = arrivals(end);
    let cfg = PortConfig::new(LINK).with_horizon(end);
    let deps = match threshold {
        None => {
            // Plain shared tail drop: tiny buffer inside the tree.
            let mut b = TreeBuilder::new();
            let root = b.add_root(
                "wfq",
                Box::new(Stfq::new(WeightTable::from_pairs([
                    (FlowId(1), 1),
                    (FlowId(2), 2),
                    (FlowId(3), 4),
                ]))),
            );
            b.buffer_limit(256);
            let tree = b.build(Box::new(move |_| root)).expect("valid");
            let mut sched = TreeScheduler::new("taildrop", tree);
            run_port(&pkts, &mut sched, &cfg)
        }
        Some(t) => {
            let mut sched = ManagedScheduler::new(
                TreeScheduler::new("managed", stfq_tree()),
                SharedBuffer::new(256, t),
            );
            run_port(&pkts, &mut sched, &cfg)
        }
    };
    let (lo, hi) = (Nanos::from_millis(5), end);
    let rep = throughput(&deps, lo, hi);
    [
        rep.rate_bps(FlowId(1)) / 1e6,
        rep.rate_bps(FlowId(2)) / 1e6,
        rep.rate_bps(FlowId(3)) / 1e6,
    ]
}

/// Without admission control, the phase-aligned pattern lets flow 1
/// (lowest weight, slowest drain) capture every freed slot: lockout.
#[test]
fn tail_drop_lockout_reproduces() {
    let rates = run(None);
    assert!(rates[0] > 9_000.0, "flow 1 monopolises the link: {rates:?}");
    assert!(
        rates[1] < 500.0 && rates[2] < 500.0,
        "others starved: {rates:?}"
    );
}

/// Dynamic per-flow thresholds (alpha = 1) in front of the same
/// scheduler restore the 1:2:4 weighted shares with the same 256-packet
/// buffer.
#[test]
fn dynamic_thresholds_restore_fair_shares() {
    let rates = run(Some(Threshold::Dynamic { num: 1, den: 1 }));
    let ideal = [10_000.0 / 7.0, 20_000.0 / 7.0, 40_000.0 / 7.0];
    for (got, want) in rates.iter().zip(ideal) {
        let rel = (got - want).abs() / want;
        assert!(
            rel < 0.15,
            "shares must track weights within 15%: got {rates:?}"
        );
    }
}

/// Static thresholds also break the lockout (a third of the buffer per
/// flow), though they need manual sizing.
#[test]
fn static_thresholds_also_work() {
    let rates = run(Some(Threshold::Static(85)));
    assert!(rates[1] > 1_000.0, "flow 2 served: {rates:?}");
    assert!(rates[2] > 2_000.0, "flow 3 served: {rates:?}");
}
