//! Composition tests: the paper's §3.4 "framework" algorithms assembled
//! from their parts — a rate regulator (shaping transaction) plus a
//! packet scheduler (scheduling transaction) on one node — and
//! multi-port use of one PIFO block.

use pifo_algos::{Edf, Fifo, HierarchicalRoundRobin, JitterEdd, ScEdf, ServiceCurve};
use pifo_core::prelude::*;
use pifo_hw::{BlockConfig, LogicalPifoId, PifoBlock};

/// RCSD / Jitter-EDD (§3.4 item 4): hold each packet for its earliness
/// tag (shaping), then schedule by deadline (EDF). The composed
/// discipline removes upstream jitter: packets that arrived early wait
/// exactly their earliness before competing.
#[test]
fn jitter_edd_composition_removes_jitter() {
    let mut b = TreeBuilder::new();
    let root = b.add_root("edf", Box::new(Edf));
    let leaf = b.add_child(root, "regulator", Box::new(Fifo));
    b.set_shaper(leaf, Box::new(JitterEdd));
    let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

    // Three packets of one flow, nominally spaced 1 ms, but the middle
    // one arrived 400 us early (slack = earliness tag) with jitter.
    // Deadlines encode the nominal schedule. Events in time order:
    let enq = |tree: &mut ScheduleTree, id: u64, t: u64, early: i64, deadline: u64| {
        tree.enqueue(
            Packet::new(id, FlowId(1), 500, Nanos(t))
                .with_slack(early)
                .with_deadline(Nanos(deadline)),
            Nanos(t),
        )
        .unwrap();
    };
    enq(&mut tree, 0, 0, 0, 2_000_000); // on time, releases immediately
    enq(&mut tree, 1, 600_000, 400_000, 3_000_000); // 400 us early, held to t=1ms

    // At t=600_000: only packet 0 is schedulable.
    assert_eq!(tree.dequeue(Nanos(600_000)).unwrap().id.0, 0);
    assert!(
        tree.dequeue(Nanos(999_999)).is_none(),
        "early packet still held by the regulator"
    );
    // After its hold expires it becomes visible and EDF serves it.
    assert_eq!(tree.dequeue(Nanos(1_000_000)).unwrap().id.0, 1);
    enq(&mut tree, 2, 2_000_000, 0, 4_000_000); // on time
    assert_eq!(tree.dequeue(Nanos(2_000_000)).unwrap().id.0, 2);
}

/// RCSD / HRR: the frame regulator spaces a flow to one packet per
/// frame even under a burst, composed with FIFO scheduling at the root.
#[test]
fn hrr_composition_spaces_bursts() {
    let mut hrr = HierarchicalRoundRobin::new(Nanos(1_000), Nanos(100));
    hrr.assign_slot(FlowId(1), 0);
    let mut b = TreeBuilder::new();
    let root = b.add_root("fifo", Box::new(Fifo));
    let leaf = b.add_child(root, "hrr", Box::new(Fifo));
    b.set_shaper(leaf, Box::new(hrr));
    let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

    // A 4-packet burst at t=0 (slot 0 of frame 0 still open).
    for i in 0..4 {
        tree.enqueue(Packet::new(i, FlowId(1), 100, Nanos(0)), Nanos(0))
            .unwrap();
    }
    // One release per frame: t=0, 1000, 2000, 3000.
    let mut releases = Vec::new();
    for t in [0u64, 500, 1_000, 1_500, 2_000, 2_500, 3_000] {
        if let Some(p) = tree.dequeue(Nanos(t)) {
            releases.push((p.id.0, t));
        }
    }
    assert_eq!(
        releases,
        vec![(0, 0), (1, 1_000), (2, 2_000), (3, 3_000)],
        "exactly one packet per frame"
    );
}

/// SC-EDF behind a PIFO: flows with different service curves get
/// deadline-ordered service; the faster curve wins when both are
/// backlogged.
#[test]
fn sced_orders_by_service_curve() {
    let mut sced = ScEdf::new(ServiceCurve::rate(8_000_000)); // 1 B/us default
    sced.set_curve(FlowId(2), ServiceCurve::rate(80_000_000)); // 10x faster

    let mut b = TreeBuilder::new();
    let root = b.add_root("sced", Box::new(sced));
    let mut tree = b.build(Box::new(move |_| root)).unwrap();

    // Interleave arrivals: slow flow first.
    for i in 0..3 {
        tree.enqueue(Packet::new(i, FlowId(1), 1_000, Nanos(0)), Nanos(0))
            .unwrap();
        tree.enqueue(Packet::new(10 + i, FlowId(2), 1_000, Nanos(0)), Nanos(0))
            .unwrap();
    }
    let order: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(1)))
        .map(|p| p.id.0)
        .collect();
    // Flow 2's deadlines: 100us, 200us, 300us; flow 1's: 1ms, 2ms, 3ms.
    assert_eq!(order, vec![10, 11, 12, 0, 1, 2]);
}

/// Fig 14 / §7: a switch may aggregate flows from distinct end hosts
/// into a single flow *for scheduling purposes* — the capability UPS
/// lacks. Here four endpoint flows map onto two switch-level WFQ flows
/// via the leaf's flow function, and the aggregates share 1:1 while
/// endpoints within an aggregate share its allocation.
#[test]
fn fig14_flow_aggregation_at_the_switch() {
    use pifo_algos::Stfq;
    let mut b = TreeBuilder::new();
    let root = b.add_root("wfq", Box::new(Stfq::unweighted()));
    // Endpoint flows 0,1 -> aggregate 100; flows 2,3 -> aggregate 200.
    b.set_flow_fn(
        root,
        Box::new(|p: &Packet| {
            if p.flow.0 < 2 {
                FlowId(100)
            } else {
                FlowId(200)
            }
        }),
    );
    let mut tree = b.build(Box::new(move |_| root)).unwrap();

    // Aggregate 100 has two senders, aggregate 200 only one — yet the
    // *aggregates* split the link 1:1 (not 2:1 by sender count).
    let mut id = 0;
    for _ in 0..30 {
        for f in [0u32, 1, 2] {
            tree.enqueue(Packet::new(id, FlowId(f), 1_000, Nanos(0)), Nanos(0))
                .unwrap();
            id += 1;
        }
    }
    let mut agg = [0u32; 2];
    for _ in 0..40 {
        let p = tree.dequeue(Nanos(1)).unwrap();
        agg[if p.flow.0 < 2 { 0 } else { 1 }] += 1;
    }
    assert!(
        (agg[0] as i32 - agg[1] as i32).abs() <= 2,
        "aggregates share 1:1 regardless of sender count: {agg:?}"
    );
}

/// §5.3: the hardware stores 16-bit ranks. Truncation preserves order
/// only while the live rank range fits the field — the reason deployed
/// rank computations re-normalise virtual time. Pin both sides of that
/// boundary.
#[test]
fn sixteen_bit_ranks_wrap_beyond_horizon() {
    use pifo_core::pifo::PifoQueue;
    // In-range: order preserved under truncation.
    let mut q: SortedArrayPifo<u64> = SortedArrayPifo::new();
    for r in [100u64, 65_000, 30_000] {
        q.push(Rank(r).truncate(16), r);
    }
    let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
    assert_eq!(order, vec![100, 30_000, 65_000]);

    // Out of range: 65_537 truncates to 1 and unfairly overtakes.
    let mut q: SortedArrayPifo<u64> = SortedArrayPifo::new();
    for r in [65_000u64, 65_537] {
        q.push(Rank(r).truncate(16), r);
    }
    assert_eq!(
        q.pop().unwrap().1,
        65_537,
        "wrapped rank mis-sorts — the documented 16-bit horizon"
    );
}

/// §5.1's port model: one block hosts one logical PIFO per output port;
/// 64 ports dequeue round-robin, one per cycle, never tripping the
/// 3-cycle same-lpifo limit (each port returns after 64 cycles).
#[test]
fn one_block_serves_64_ports_round_robin() {
    let cfg = BlockConfig {
        n_flows: 1024,
        n_logical_pifos: 64,
        ..BlockConfig::default()
    };
    let mut block = PifoBlock::new(cfg).strict_monotonic(true);
    // 10 packets per port, flows disjoint per port.
    for port in 0..64u16 {
        for k in 0..10u64 {
            block
                .enqueue(
                    LogicalPifoId(port),
                    FlowId(port as u32),
                    Rank(k * 64 + port as u64),
                    (port as u64) << 32 | k,
                )
                .unwrap();
        }
    }
    // Round-robin service: cycle c serves port c % 64. The 3-cycle rule
    // is respected by construction (64 >= 3); PortGates verify.
    let mut gates = pifo_hw::PortGates::new();
    let mut served = 0u64;
    for cycle in 0..640u64 {
        gates.new_cycle(0);
        let port = LogicalPifoId((cycle % 64) as u16);
        gates
            .claim_dequeue(pifo_hw::BlockId(0), port, cycle, false)
            .expect("64-cycle spacing far exceeds the 3-cycle rule");
        let (_, flow, _) = block.dequeue(port).expect("10 per port");
        assert_eq!(flow.0, port.0 as u32, "ports are isolated");
        served += 1;
    }
    assert_eq!(served, 640);
    assert_eq!(block.total_len(), 0);
}
