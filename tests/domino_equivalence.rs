//! Native Rust transactions vs the same algorithms written in
//! domino-lite: identical rank/send-time streams, packet for packet.
//!
//! This is the payoff of keeping deterministic integer semantics on both
//! sides — the figure *programs* in `domino_lite::figures` are not just
//! illustrations, they are drop-in equivalents of `pifo-algos`.

use domino_lite::{figures, DominoScheduling, DominoShaping};
use pifo_algos::{Lstf, MinRateGuarantee, Stfq, StopAndGo, TokenBucketFilter, WeightTable};
use pifo_core::prelude::*;
use proptest::prelude::*;

fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
    EnqCtx {
        packet: p,
        now: Nanos(now),
        flow: p.flow,
    }
}

proptest! {
    /// STFQ: random packet streams over 4 weighted flows; ranks agree at
    /// every step, including after interleaved dequeue events.
    #[test]
    fn stfq_native_equals_domino(
        steps in proptest::collection::vec((0u32..4, 64u32..1500, 0u8..2), 1..200)
    ) {
        let weights = [(FlowId(0), 1u64), (FlowId(1), 2), (FlowId(2), 4), (FlowId(3), 7)];
        let mut native = Stfq::new(WeightTable::from_pairs(weights));
        let mut domino = DominoScheduling::new("stfq", figures::stfq());
        for (f, w) in weights {
            domino = domino.with_weight(f, w);
        }

        let mut now = 0u64;
        let mut last_rank = 0u64;
        for (flow, len, deq) in steps {
            now += 10;
            let p = Packet::new(0, FlowId(flow), len, Nanos(now));
            let c = ctx(&p, now);
            let rn = native.rank(&c);
            let rd = domino.rank(&c);
            prop_assert_eq!(rn, rd, "enqueue rank diverged");
            last_rank = last_rank.max(rn.value());
            if deq == 1 {
                let dctx = DeqCtx { now: Nanos(now), flow: FlowId(flow) };
                native.on_dequeue(Rank(last_rank), &dctx);
                domino.on_dequeue(Rank(last_rank), &dctx);
            }
        }
    }

    /// TBF: identical send-time streams for arbitrary arrival gaps.
    #[test]
    fn tbf_native_equals_domino(
        gaps in proptest::collection::vec((0u64..5_000_000, 64u32..1500), 1..200)
    ) {
        let rate = 10_000_000i64; // 10 Mb/s
        let burst = 15_000i64;
        let mut native = TokenBucketFilter::new(rate as u64, burst as u64);
        let mut domino = DominoShaping::new("tbf", figures::tbf(rate, burst));
        let mut now = 0u64;
        for (gap, len) in gaps {
            now += gap;
            let p = Packet::new(0, FlowId(0), len, Nanos(now));
            let c = ctx(&p, now);
            prop_assert_eq!(native.send_time(&c), domino.send_time(&c));
        }
    }

    /// LSTF is stateless: rank = clamped slack on both sides.
    #[test]
    fn lstf_native_equals_domino(slacks in proptest::collection::vec(-100_000i64..100_000, 1..100)) {
        let mut native = Lstf;
        let mut domino = DominoScheduling::new("lstf", figures::lstf());
        for (i, slack) in slacks.into_iter().enumerate() {
            let p = Packet::new(i as u64, FlowId(0), 100, Nanos(i as u64)).with_slack(slack);
            let c = ctx(&p, i as u64);
            prop_assert_eq!(native.rank(&c), domino.rank(&c));
        }
    }

    /// Min-rate (Fig 8): identical 0/1 priority streams for one flow.
    #[test]
    fn min_rate_native_equals_domino(
        gaps in proptest::collection::vec((0u64..3_000_000, 64u32..1500), 1..200)
    ) {
        let rate = 2_000_000u64;
        let burst = 3_000u64;
        let mut native = MinRateGuarantee::new(rate, burst);
        let mut domino = DominoScheduling::new("minrate", figures::min_rate(rate as i64, burst as i64));
        let mut now = 0u64;
        for (gap, len) in gaps {
            now += gap;
            let p = Packet::new(0, FlowId(5), len, Nanos(now));
            let c = ctx(&p, now);
            prop_assert_eq!(native.rank(&c), domino.rank(&c), "at t={}", now);
        }
    }

    /// Stop-and-Go: the paper's literal single-step program equals the
    /// native tiled implementation as long as no idle gap skips a whole
    /// frame (gap < T guarantees that).
    #[test]
    fn stop_and_go_native_equals_domino_dense(
        gaps in proptest::collection::vec(0u64..999, 1..200)
    ) {
        let frame = 1_000u64;
        let mut native = StopAndGo::new(Nanos(frame));
        let mut domino = DominoShaping::new("sg", figures::stop_and_go(frame as i64));
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            let p = Packet::new(0, FlowId(0), 100, Nanos(now));
            let c = ctx(&p, now);
            prop_assert_eq!(native.send_time(&c), domino.send_time(&c), "at t={}", now);
        }
    }
}

/// The documented divergence: after an idle gap of several frames the
/// paper's single-step update lags (it advances one frame per arrival),
/// while the native implementation tiles time. Pin this behaviour so a
/// future "fix" of the figure program is a conscious choice.
#[test]
fn stop_and_go_single_step_lags_after_long_idle() {
    let frame = 1_000u64;
    let mut native = StopAndGo::new(Nanos(frame));
    let mut domino = DominoShaping::new("sg", figures::stop_and_go(frame as i64));

    let p = Packet::new(0, FlowId(0), 100, Nanos(0));
    // First packet at t=0: both say frame end = 1000.
    assert_eq!(native.send_time(&ctx(&p, 0)), Nanos(1_000));
    assert_eq!(domino.send_time(&ctx(&p, 0)), Nanos(1_000));

    // Next packet after 5 idle frames (t=5500): native tiles to 6000;
    // the paper's program advances a single frame (to 2000).
    assert_eq!(native.send_time(&ctx(&p, 5_500)), Nanos(6_000));
    assert_eq!(domino.send_time(&ctx(&p, 5_500)), Nanos(2_000));
}
