//! The paper's quantitative claims, asserted end-to-end through the
//! public API — machine-checked versions of the paper-vs-measured
//! record printed by `repro all`.

use pifo_compiler::{compile, MeshLayout, TreeSpec};
use pifo_hw::BlockConfig;
use pifo_synth::{AreaModel, TimingModel};

/// §1 / §5.3: "<4% chip area overhead relative to a shared-memory
/// switch" for the full 5-block mesh including rank-computation atoms.
#[test]
fn headline_area_overhead_under_4_percent() {
    let m = AreaModel::calibrated();
    let overhead = m.overhead_fraction(&BlockConfig::default(), 5, pifo_synth::model::MESH_ATOMS);
    assert!(
        overhead < 0.04,
        "overhead {:.2}% must stay under 4%",
        overhead * 100.0
    );
}

/// Table 2's scaling shape: area ~doubles per flow doubling; timing is
/// met up to 2048 flows and fails at 4096.
#[test]
fn table2_shape() {
    let m = AreaModel::calibrated();
    let t = TimingModel::default();
    let mut prev = 0.0;
    for flows in [256usize, 512, 1024, 2048, 4096] {
        let cfg = BlockConfig {
            n_flows: flows,
            ..BlockConfig::default()
        };
        let area = m.flow_scheduler_mm2(&cfg);
        if prev > 0.0 {
            let ratio = area / prev;
            assert!(
                (1.8..=2.2).contains(&ratio),
                "area ratio per doubling {ratio:.2} at {flows}"
            );
        }
        prev = area;
        assert_eq!(t.meets_1ghz(&cfg), flows <= 2048, "timing cliff at {flows}");
    }
}

/// §5.1: the baseline block buffers 60 K elements over ~1 K flows —
/// Trident-class requirements fit the default configuration.
#[test]
fn trident_requirements_fit() {
    let cfg = BlockConfig::default();
    assert!(cfg.rank_store_capacity >= 60_000, "60K packets");
    assert!(cfg.n_flows >= 1_000, "1K flows");
}

/// §5.4: 106 bits per wire set; 2120 bits for the 5-block full mesh; and
/// the claim that RMT's inter-stage wiring is ~2x this (§5.4 cites 4 Kb
/// packet header vectors; we just sanity-check our own arithmetic).
#[test]
fn wiring_bits() {
    let cfg = BlockConfig::default();
    assert_eq!(MeshLayout::wire_set_bits(&cfg), 106);
    let five = compile(&TreeSpec::linear(5)).expect("compiles");
    assert_eq!(five.total_wiring_bits(&cfg), 2_120);
    // A 3-block mesh (Fig 11) needs 3*2 = 6 sets.
    let three = compile(&TreeSpec::hierarchies_with_shaping()).expect("compiles");
    assert_eq!(three.total_wiring_bits(&cfg), 6 * 106);
}

/// §4.2: "we expect a small number of PIFO blocks in a typical switch
/// (e.g., less than five)" — all the paper's example programs fit 5.
#[test]
fn papers_examples_fit_five_blocks() {
    for spec in [
        TreeSpec::hpfq(),
        TreeSpec::hierarchies_with_shaping(),
        TreeSpec::linear(5),
    ] {
        let layout = compile(&spec).expect("compiles");
        assert!(layout.n_blocks <= 5, "{} blocks", layout.n_blocks);
    }
}

/// §4.1: every figure transaction compiles with the Domino atom
/// vocabulary; STFQ needs exactly `Pairs`.
#[test]
fn figure_transactions_compile_at_line_rate() {
    use domino_lite::ast::AtomKind;
    for (name, src) in domino_lite::figures::all_figures() {
        let prog = domino_lite::parse(src).expect("parses");
        domino_lite::compile(&prog, AtomKind::Pairs).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    let stfq = domino_lite::parse(domino_lite::figures::STFQ_SRC).expect("parses");
    assert_eq!(
        domino_lite::analyze(&stfq).expect("analyzes").required_atom,
        AtomKind::Pairs
    );
    assert!(domino_lite::compile(&stfq, AtomKind::NestedIf).is_err());
}
