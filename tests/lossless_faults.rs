//! The fault-injection contract: **no fault plan can hang a lossless
//! fabric**. Any combination of dead ports, slow drains, a stuck pool,
//! and delayed resume frames either drains completely or terminates
//! with a typed [`FabricStall`](pifo::prelude::FabricStall) inside the
//! round budget — and the pause/resume bookkeeping reconciles either
//! way. The property is checked over randomized fault plans and drain
//! modes, with each plan run twice to pin determinism under faults.

use pifo::prelude::*;
use proptest::prelude::*;

const PORTS: usize = 4;
const RATE_BPS: u64 = 10_000_000_000;

fn classify(p: &Packet) -> usize {
    p.flow.0 as usize % PORTS
}

fn config() -> LosslessConfig {
    LosslessConfig::new(8, 2)
        .with_headroom(16)
        .with_max_pause(Nanos::from_micros(100))
        .with_round_budget(100_000)
}

fn build_fabric() -> LosslessFabric {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_shared_pool(
        PORTS * 24,
        AdmissionPolicy::PortFlow {
            port: Threshold::Static(24),
            flow: Threshold::Unlimited,
        },
    );
    for _ in 0..PORTS {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), h).expect("tree")
        });
    }
    LosslessFabric::new(sb.build(Box::new(classify)), config())
}

/// One 1.5×-overdriven CBR stream per port: every port receives traffic,
/// so every injected fault is actually exercised.
fn sources() -> Vec<Box<dyn TrafficSource>> {
    (0..PORTS as u32)
        .map(|p| {
            Box::new(CbrSource::new(
                FlowId(p),
                1_000,
                15_000_000_000,
                Nanos::ZERO,
                Nanos(40_000),
            )) as Box<dyn TrafficSource>
        })
        .collect()
}

fn fault_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(0usize..PORTS, 0..2),
        proptest::collection::vec((0usize..PORTS, 2u32..8), 0..2),
        prop_oneof![
            2 => Just(None),
            1 => (1_000u64..60_000).prop_map(|t| Some(Nanos(t))),
        ],
        prop_oneof![
            2 => Just(Nanos::ZERO),
            1 => (100u64..5_000).prop_map(Nanos),
        ],
    )
        .prop_map(|(dead, slow, stuck, resume_delay)| {
            let mut plan = FaultPlan::none();
            for p in dead {
                plan = plan.dead_port(p);
            }
            for (p, k) in slow {
                plan = plan.slow_port(p, k);
            }
            if let Some(t) = stuck {
                plan = plan.stuck_pool(t);
            }
            plan.delayed_resume(resume_delay)
        })
}

fn mode_strategy() -> impl Strategy<Value = DrainMode> {
    prop_oneof![
        Just(DrainMode::PerPacket),
        Just(DrainMode::Batched),
        Just(DrainMode::Parallel { workers: 4 }),
    ]
}

fn run_plan(plan: &FaultPlan, mode: DrainMode) -> LosslessRun {
    build_fabric().run_with_faults(sources(), mode, plan)
}

proptest! {
    /// Stall-or-drain: the run function *returns* for every plan (a hang
    /// fails the test by timeout), inside the round budget, with the
    /// pause ledger balanced.
    #[test]
    fn any_fault_plan_stalls_or_drains(plan in fault_strategy(), mode in mode_strategy()) {
        let run = run_plan(&plan, mode);

        // Termination bookkeeping: the budget was respected (a budget
        // stall reports the overshooting round itself).
        prop_assert!(
            run.rounds <= config().round_budget + 1,
            "rounds {} blew the budget without a stall", run.rounds
        );

        let pauses = run.count_events(PauseAction::Pause);
        let resumes = run.count_events(PauseAction::Resume);
        match run.stall {
            None => {
                // Complete drain: every pause resolved, switch-side and
                // source-side, and nothing was silently lost to a fault
                // that never actually fired.
                prop_assert_eq!(pauses, resumes, "unresolved switch-side pause");
                for (i, s) in run.sources.iter().enumerate() {
                    prop_assert_eq!(
                        s.pauses, s.resumes,
                        "source {} pause ledger does not reconcile", i
                    );
                }
                // A clean drain with live dead ports is impossible: a
                // dead port that received traffic traps it forever.
                prop_assert!(
                    plan.dead_ports.is_empty(),
                    "dead ports {:?} cannot drain cleanly", plan.dead_ports
                );
            }
            Some(stall) => {
                // A stall may leave pauses asserted — but never more
                // resumes than pauses, anywhere.
                prop_assert!(resumes <= pauses, "resumes exceed pauses");
                for (i, s) in run.sources.iter().enumerate() {
                    prop_assert!(
                        s.resumes <= s.pauses,
                        "source {} resumed more than it paused", i
                    );
                }
                // The diagnosis names an injected fault class (or the
                // generic wedges any fault combination can produce).
                match stall.kind {
                    StallKind::DeadPort { port } => {
                        prop_assert!(
                            plan.dead_ports.contains(&port),
                            "diagnosed dead port {} was not injected", port
                        );
                    }
                    StallKind::StuckPool => {
                        prop_assert!(plan.stuck_pool_at.is_some());
                    }
                    StallKind::PauseStorm { port } => prop_assert!(port < PORTS),
                    StallKind::RoundBudget { rounds } => {
                        prop_assert!(rounds > config().round_budget);
                    }
                    StallKind::CircularWait => {}
                }
            }
        }
    }

    /// Faulty runs are still deterministic: the same plan and mode give
    /// the same stall, the same pause log, and the same traces.
    #[test]
    fn faulty_runs_are_reproducible(plan in fault_strategy(), mode in mode_strategy()) {
        let a = run_plan(&plan, mode);
        let b = run_plan(&plan, mode);
        prop_assert_eq!(a.stall, b.stall);
        prop_assert_eq!(a.pause_events, b.pause_events);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.skid_overflow, b.skid_overflow);
        for (x, y) in a.run.ports.iter().zip(&b.run.ports) {
            prop_assert_eq!(&x.departures, &y.departures);
            prop_assert_eq!(x.drops, y.drops);
        }
    }
}

/// The acceptance-criterion scenario, pinned exactly: a dead port under
/// sustained load yields a typed `FabricStall` within the round budget —
/// no hang, no panic — while the healthy ports keep transmitting.
#[test]
fn dead_port_under_load_is_diagnosed_not_hung() {
    let plan = FaultPlan::none().dead_port(2);
    let run = run_plan(&plan, DrainMode::Batched);
    let stall = run.stall.expect("a dead port under load must stall");
    assert_eq!(stall.kind, StallKind::DeadPort { port: 2 });
    assert!(stall.paused_for >= config().max_pause);
    for port in [0usize, 1, 3] {
        assert!(
            !run.run.ports[port].departures.is_empty(),
            "healthy port {port} must keep transmitting around the fault"
        );
    }
}

/// A pool wedged full mid-run pauses everything and is called out as
/// `StuckPool`, not misdiagnosed as a storm.
#[test]
fn stuck_pool_is_diagnosed() {
    let plan = FaultPlan::none().stuck_pool(Nanos(10_000));
    let run = run_plan(&plan, DrainMode::Batched);
    let stall = run.stall.expect("a permanently stuck pool must stall");
    assert_eq!(stall.kind, StallKind::StuckPool);
}

/// Slow drain alone is degradation, not deadlock: the fabric completes
/// (more slowly) with every pause resolved.
#[test]
fn slow_drain_completes_without_stall() {
    let plan = FaultPlan::none().slow_port(0, 4);
    let run = run_plan(&plan, DrainMode::Batched);
    assert!(run.stall.is_none(), "slow drain stalled: {:?}", run.stall);
    assert_eq!(run.total_drops(), 0, "slow drain stays lossless");
    assert_eq!(
        run.count_events(PauseAction::Pause),
        run.count_events(PauseAction::Resume)
    );
    // The slowed port was paused harder than its healthy peers.
    assert!(run.port_paused[0] > run.port_paused[1]);
}
