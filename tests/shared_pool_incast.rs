//! The §5.1/§6.1 acceptance scenario: a 16-port fabric on **one** shared
//! packet pool, with an incast storm pinning the buffer through port 0
//! while every other port carries short bursts.
//!
//! What must hold (and is asserted here):
//!
//! * under the **naive** shared cap (`AdmissionPolicy::Unlimited`) the
//!   storm locks the victims out — every victim port drops;
//! * under **Choudhury–Hahne dynamic thresholds** the hog is fenced to a
//!   fraction of the pool, victim drops go to zero, and each victim
//!   port's departure trace is **identical** to its private-slab
//!   baseline — sharing one memory costs an unpressured port nothing;
//! * the per-port traces of the shared-pool fabric are bit-identical
//!   across all three PIFO backends and both drain modes;
//! * every offered packet is accounted (departed or dropped), and the
//!   pool's per-port counters reconcile with the traces.

use pifo::prelude::*;

const PORTS: usize = 16;
const POOL_CAPACITY: usize = 1_024;
/// 64 synchronized senders, 16 packets each: one 1 024-packet wave.
const WAVE_PKTS: u64 = 1_024;
const WAVES: u64 = 25;
const WAVE_PERIOD_NS: u64 = 20_000;
/// Per-victim burst: bigger than the scheduling round (32), so a pinned
/// pool with only `burst` slots free must drop part of it.
const VICTIM_BURST: u64 = 64;

/// Hog: `WAVES` incast waves of 1 024 packets into port 0 (flows 0..63),
/// 8× past the port's drain rate — the pool stays pinned for the whole
/// run. Victims: one 64-packet burst per port 1..15 (flow 100+port),
/// staggered 30 µs apart starting mid-storm.
fn arrivals() -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..WAVES {
        for k in 0..WAVE_PKTS {
            out.push(Packet::new(
                id,
                FlowId((k % 64) as u32),
                1_000,
                Nanos(wave * WAVE_PERIOD_NS),
            ));
            id += 1;
        }
    }
    for port in 1..PORTS as u64 {
        for _ in 0..VICTIM_BURST {
            out.push(Packet::new(
                id,
                FlowId(100 + port as u32),
                1_000,
                Nanos(50_000 + 30_000 * (port - 1)),
            ));
            id += 1;
        }
    }
    out.sort_by_key(|p| p.arrival);
    out
}

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        (p.flow.0 as usize - 100) % PORTS
    }
}

fn port_tree(backend: PifoBackend, pool: PoolHandle) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
    b.build_in_pool(Box::new(move |_| root), pool)
        .expect("single-node tree")
}

/// The private-slab baseline: the hog port tail-drops against its own
/// `POOL_CAPACITY`-deep buffer; victims have unbounded private slabs.
fn run_private(backend: PifoBackend, mode: DrainMode, arr: &[Packet]) -> SwitchRun {
    let mut sb = SwitchBuilder::new(10_000_000_000);
    for port in 0..PORTS {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        if port == 0 {
            b.buffer_limit(POOL_CAPACITY);
        }
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        sb.add_port(b.build(Box::new(move |_| root)).expect("tree"));
    }
    sb.build(Box::new(classify)).run(arr, mode)
}

fn run_shared(
    backend: PifoBackend,
    mode: DrainMode,
    policy: AdmissionPolicy,
    arr: &[Packet],
) -> (SwitchRun, PoolStats) {
    let mut sb = SwitchBuilder::new(10_000_000_000);
    let pool = sb.with_shared_pool(POOL_CAPACITY, policy);
    for _ in 0..PORTS {
        sb.add_shared_port(|h| port_tree(backend, h));
    }
    let run = sb.build(Box::new(classify)).run(arr, mode);
    (run, pool.stats())
}

#[test]
fn incast_on_a_shared_pool_is_fenced_by_dynamic_thresholds() {
    let arr = arrivals();
    let offered_hog = WAVES * WAVE_PKTS;
    let offered_victims = (PORTS as u64 - 1) * VICTIM_BURST;
    assert_eq!(arr.len() as u64, offered_hog + offered_victims);

    let backend = PifoBackend::Bucket;
    let baseline = run_private(backend, DrainMode::Batched, &arr);
    assert_eq!(
        baseline.ports[1..].iter().map(|p| p.drops).sum::<u64>(),
        0,
        "private victims never drop"
    );

    // --- Naive shared cap: the storm locks the victims out. ------------
    let (naive, naive_stats) = run_shared(
        backend,
        DrainMode::Batched,
        AdmissionPolicy::Unlimited,
        &arr,
    );
    for port in 1..PORTS {
        assert!(
            naive.ports[port].drops > 0,
            "naive cap: victim port {port} must be locked out (0 drops)"
        );
    }
    assert!(naive_stats.ports[0].occupancy == 0, "fabric drained");

    // --- Dynamic thresholds: victims fenced off from the storm. --------
    let (fenced, fenced_stats) = run_shared(
        backend,
        DrainMode::Batched,
        AdmissionPolicy::DynamicThreshold { num: 1, den: 1 },
        &arr,
    );
    for port in 1..PORTS {
        assert_eq!(
            fenced.ports[port].drops, 0,
            "dynamic thresholds: victim port {port} must not drop"
        );
        // The victim's departure trace is identical to its private-slab
        // baseline: packet for packet, instant for instant.
        let (a, b) = (&baseline.ports[port], &fenced.ports[port]);
        assert_eq!(
            a.departures.len(),
            b.departures.len(),
            "victim port {port} departure count vs baseline"
        );
        for (x, y) in a.departures.iter().zip(&b.departures) {
            assert_eq!(
                x, y,
                "victim port {port} trace diverges from private baseline"
            );
        }
    }
    // The hog still pays: it is fenced to a fraction of the pool, so its
    // drops exceed the naive run's.
    assert!(
        fenced.ports[0].drops >= naive.ports[0].drops,
        "fencing the hog cannot reduce its drops (fenced {} < naive {})",
        fenced.ports[0].drops,
        naive.ports[0].drops
    );

    // --- Accounting: every offered packet departed or was dropped, and
    // the pool counters reconcile with the traces. ----------------------
    for (run, stats) in [(&naive, &naive_stats), (&fenced, &fenced_stats)] {
        assert_eq!(run.misrouted, 0);
        assert_eq!(
            run.total_departures() as u64 + run.total_drops(),
            offered_hog + offered_victims,
            "offered-packet conservation"
        );
        assert_eq!(stats.live, 0, "pool drains clean");
        for port in 0..PORTS {
            assert_eq!(
                stats.ports[port].rejected, run.ports[port].drops,
                "port {port}: pool reject counter vs trace drops"
            );
            assert_eq!(
                stats.ports[port].admitted,
                run.ports[port].departures.len() as u64,
                "port {port}: admitted packets all departed"
            );
        }
    }
}

/// Per-port departure traces of the shared-pool fabric are bit-identical
/// across every **exact** PIFO backend and both drain modes. (The
/// approximate backends legally reorder departures; their distance from
/// the exact schedule is measured by the inversion-metrics layer, not
/// pinned here.)
#[test]
fn shared_pool_traces_bit_identical_across_backends_and_drain_modes() {
    let arr = arrivals();
    let policy = AdmissionPolicy::DynamicThreshold { num: 1, den: 1 };
    let (reference, _) = run_shared(PifoBackend::SortedArray, DrainMode::PerPacket, policy, &arr);
    assert!(
        reference.total_drops() > 0,
        "the scenario must keep admission pressure real"
    );
    for backend in PifoBackend::EXACT {
        for mode in [DrainMode::PerPacket, DrainMode::Batched] {
            let (run, _) = run_shared(backend, mode, policy, &arr);
            for (port, (a, b)) in reference.ports.iter().zip(&run.ports).enumerate() {
                assert_eq!(
                    a.drops,
                    b.drops,
                    "[{backend}/{}] port {port} drops diverge",
                    mode.label()
                );
                assert_eq!(
                    a.departures.len(),
                    b.departures.len(),
                    "[{backend}/{}] port {port} departure count diverges",
                    mode.label()
                );
                for (x, y) in a.departures.iter().zip(&b.departures) {
                    assert_eq!(
                        x,
                        y,
                        "[{backend}/{}] port {port} trace diverges",
                        mode.label()
                    );
                }
            }
        }
    }
}
