//! The telemetry contract, property-tested end to end:
//!
//! 1. **Observes, never steers** — enabling the flight recorder and
//!    path records leaves departure traces bit-identical, across every
//!    exact backend × every drain mode.
//! 2. **Deterministic** — two identically-built runs produce
//!    byte-identical event streams and snapshots, and the event stream
//!    is invariant across `PerPacket`/`Batched`/`Parallel` drains.
//! 3. **Reconciles** — telemetry-derived waits equal the
//!    departure-derived waits of [`waits_of`](pifo::sim::metrics), and
//!    the same holds through `latency_stats` percentiles.
//!
//! The same properties are pinned on the lossless fabric, whose runs
//! add synthesized pause/resume events and fabric gauges.
//!
//! On failure, the offending run's event stream is dumped to
//! `$CARGO_TARGET_TMPDIR/telemetry-dumps/` so CI can upload it as an
//! artifact (mirroring the domino diagnostics pattern).

use pifo::prelude::*;
use pifo_core::telemetry::TelemetrySnapshot;
use proptest::prelude::*;
use std::path::PathBuf;

const RATE_BPS: u64 = 10_000_000_000;

/// Best-effort CI artifact: the snapshot JSON of a failing run.
fn dump_snapshot(name: &str, snap: &TelemetrySnapshot) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("telemetry-dumps");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.json")), snap.to_json());
    }
}

/// A deterministic bursty workload parameterized by the proptest seed
/// values: `flows` flows spraying `waves` waves of `wave_pkts` packets.
fn arrivals(flows: u32, waves: u64, wave_pkts: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..waves {
        for k in 0..wave_pkts {
            out.push(Packet::new(
                id,
                FlowId((k % flows as u64) as u32),
                1_000,
                Nanos(wave * 15_000),
            ));
            id += 1;
        }
    }
    out
}

fn build_switch(
    ports: usize,
    pool: usize,
    backend: PifoBackend,
    telemetry: Option<TelemetryConfig>,
) -> Switch {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_burst(8);
    sb.with_shared_pool(pool, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
    if let Some(cfg) = telemetry {
        sb.with_telemetry(cfg);
    }
    for _ in 0..ports {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), h).expect("tree")
        });
    }
    sb.build(Box::new(move |p: &Packet| p.flow.0 as usize % ports))
}

const MODES: [DrainMode; 3] = [
    DrainMode::PerPacket,
    DrainMode::Batched,
    DrainMode::Parallel { workers: 2 },
];

fn mode_name(mode: DrainMode) -> &'static str {
    match mode {
        DrainMode::PerPacket => "per_packet",
        DrainMode::Batched => "batched",
        DrainMode::Parallel { .. } => "parallel",
    }
}

proptest! {
    /// Contract 1 + 2 on the plain switch: telemetry-on departures are
    /// bit-identical to telemetry-off in every exact backend × drain
    /// mode, identical builds give identical snapshots, and the event
    /// stream is drain-mode invariant.
    #[test]
    fn switch_telemetry_observes_and_is_deterministic(
        flows in 1u32..24,
        waves in 1u64..4,
        wave_pkts in 16u64..128,
        ports in 2usize..5,
    ) {
        let arr = arrivals(flows, waves, wave_pkts);
        let pool = 64 * ports;
        let cfg = TelemetryConfig::with_paths();

        for backend in PifoBackend::EXACT {
            let mut stream_ref: Option<TelemetrySnapshot> = None;
            for mode in MODES {
                let base = build_switch(ports, pool, backend, None).run(&arr, mode);

                let mut sw = build_switch(ports, pool, backend, Some(cfg));
                let run = sw.run(&arr, mode);
                let snap = sw.telemetry_snapshot(&run).expect("telemetry on");

                // 1: observes, never steers.
                for (a, b) in base.ports.iter().zip(&run.ports) {
                    prop_assert_eq!(&a.departures, &b.departures,
                        "[{}/{}] telemetry changed departures", backend, mode_name(mode));
                    prop_assert_eq!(&a.drops, &b.drops);
                }

                // 2a: identical build -> byte-identical snapshot.
                let mut sw2 = build_switch(ports, pool, backend, Some(cfg));
                let run2 = sw2.run(&arr, mode);
                let snap2 = sw2.telemetry_snapshot(&run2).expect("telemetry on");
                if snap != snap2 {
                    dump_snapshot(&format!("rerun-a-{}-{}", backend.label(), mode_name(mode)), &snap);
                    dump_snapshot(&format!("rerun-b-{}-{}", backend.label(), mode_name(mode)), &snap2);
                    prop_assert!(false, "[{}/{}] rerun produced a different snapshot",
                        backend, mode_name(mode));
                }
                prop_assert_eq!(snap.to_json(), snap2.to_json(), "JSON export must be stable");

                // 2b: the event stream is drain-mode invariant.
                match &stream_ref {
                    None => stream_ref = Some(snap),
                    Some(r) => {
                        if *r != snap {
                            dump_snapshot(&format!("mode-ref-{}", backend.label()), r);
                            dump_snapshot(&format!("mode-got-{}-{}", backend.label(), mode_name(mode)), &snap);
                            prop_assert!(false,
                                "[{}/{}] event stream differs from the per-packet drain",
                                backend, mode_name(mode));
                        }
                    }
                }
            }
        }
    }

    /// Contract 3: the telemetry layer's per-packet waits reconcile
    /// exactly with the departure-derived waits — record for record,
    /// and through the `latency_stats` percentiles.
    #[test]
    fn path_record_waits_match_departure_waits(
        flows in 1u32..24,
        waves in 1u64..4,
        wave_pkts in 16u64..128,
    ) {
        let arr = arrivals(flows, waves, wave_pkts);
        let mut sw = build_switch(4, 256, PifoBackend::default(), Some(TelemetryConfig::with_paths()));
        let run = sw.run(&arr, DrainMode::Batched);

        for port in &run.ports {
            prop_assert_eq!(port.paths.len(), port.departures.len(),
                "one path record per departure");
            let from_paths: Vec<u64> =
                port.paths.iter().map(|r| r.wait().as_nanos()).collect();
            let from_departures = pifo::sim::metrics::waits_of(&port.departures, None);
            prop_assert_eq!(&from_paths, &from_departures,
                "telemetry waits must equal departure waits");
            prop_assert_eq!(
                latency_stats(&from_paths),
                latency_stats(&from_departures)
            );
            // Spot the stronger per-record identity too.
            for (rec, dep) in port.paths.iter().zip(&port.departures) {
                prop_assert_eq!(rec.packet, dep.packet.id.0);
                prop_assert_eq!(rec.wait(), dep.wait);
                prop_assert_eq!(rec.departed, dep.start);
                prop_assert_eq!(rec.enqueued, dep.packet.arrival);
            }
        }
    }

    /// The lossless fabric: identical builds give byte-identical
    /// snapshots (including synthesized pause/resume events and fabric
    /// gauges), and telemetry leaves departures and the pause log
    /// untouched.
    #[test]
    fn lossless_telemetry_observes_and_is_deterministic(
        rate_x10 in 12u64..20,
        ports in 2usize..5,
    ) {
        let cfg = LosslessConfig::new(8, 2).with_headroom(16);
        let build = |telemetry: bool| {
            let mut sb = SwitchBuilder::new(RATE_BPS);
            sb.with_shared_pool(
                ports * 24,
                AdmissionPolicy::PortFlow {
                    port: Threshold::Static(24),
                    flow: Threshold::Unlimited,
                },
            );
            if telemetry {
                sb.with_telemetry(TelemetryConfig::with_paths());
            }
            for _ in 0..ports {
                sb.add_shared_port(|h| {
                    let mut b = TreeBuilder::new();
                    let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
                    b.build_in_pool(Box::new(move |_| root), h).expect("tree")
                });
            }
            let sw = sb.build(Box::new(move |p: &Packet| p.flow.0 as usize % ports));
            LosslessFabric::new(sw, cfg)
        };
        let sources = move || -> Vec<Box<dyn TrafficSource>> {
            (0..ports as u32)
                .map(|p| {
                    Box::new(CbrSource::new(
                        FlowId(p),
                        1_000,
                        rate_x10 * 1_000_000_000,
                        Nanos::ZERO,
                        Nanos(40_000),
                    )) as Box<dyn TrafficSource>
                })
                .collect()
        };

        let base = build(false).run(sources(), DrainMode::Batched);
        let a = build(true).run(sources(), DrainMode::Batched);
        let b = build(true).run(sources(), DrainMode::Batched);

        // Observes, never steers — departures AND the pause log.
        for (x, y) in base.run.ports.iter().zip(&a.run.ports) {
            prop_assert_eq!(&x.departures, &y.departures);
            prop_assert_eq!(&x.drops, &y.drops);
        }
        prop_assert_eq!(&base.pause_events, &a.pause_events);

        // Identical builds -> byte-identical snapshots.
        let (sa, sb_) = (a.telemetry.expect("on"), b.telemetry.expect("on"));
        if sa != sb_ {
            dump_snapshot("lossless-rerun-a", &sa);
            dump_snapshot("lossless-rerun-b", &sb_);
            prop_assert!(false, "lossless rerun produced a different snapshot");
        }
        prop_assert!(base.telemetry.is_none(), "telemetry off must stay off");
    }
}

/// Pause/resume transitions surface as first-class events in the
/// lossless snapshot, and their counts reconcile with the pause log.
#[test]
fn lossless_snapshot_carries_pause_events() {
    use pifo_core::telemetry::EventKind;

    let ports = 4usize;
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_shared_pool(
        ports * 24,
        AdmissionPolicy::PortFlow {
            port: Threshold::Static(24),
            flow: Threshold::Unlimited,
        },
    );
    sb.with_telemetry(TelemetryConfig::default());
    for _ in 0..ports {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), h).expect("tree")
        });
    }
    let sw = sb.build(Box::new(move |p: &Packet| p.flow.0 as usize % ports));
    let mut fabric = LosslessFabric::new(sw, LosslessConfig::new(8, 2).with_headroom(16));

    let sources: Vec<Box<dyn TrafficSource>> = (0..ports as u32)
        .map(|p| {
            Box::new(CbrSource::new(
                FlowId(p),
                1_000,
                18_000_000_000,
                Nanos::ZERO,
                Nanos(60_000),
            )) as Box<dyn TrafficSource>
        })
        .collect();
    let run = fabric.run(sources, DrainMode::Batched);
    let snap = run.telemetry.as_ref().expect("telemetry on");

    assert!(
        run.count_events(PauseAction::Pause) > 0,
        "the overdriven fabric must pause"
    );
    assert_eq!(
        snap.count(EventKind::Pause),
        run.count_events(PauseAction::Pause) as u64,
        "pause events reconcile with the pause log"
    );
    assert_eq!(
        snap.count(EventKind::Resume),
        run.count_events(PauseAction::Resume) as u64,
        "resume events reconcile with the pause log"
    );
    assert_eq!(run.total_drops(), 0, "lossless stays lossless");
}
