//! Sim-to-hardware pause replay: the pause/resume event log produced by
//! the lossless fabric drives the §6.2 PFC hooks of the hardware PIFO
//! block ([`PifoBlock::pause_flow`]/[`resume_flow`]), and the block's
//! flow scheduler honors every window — **a paused flow never pops while
//! paused**, unpaused flows keep draining around it, per-flow FIFO order
//! survives, and once every pause resolves the block drains to empty.
//!
//! This pins the cross-layer contract: the *same* pause signal the
//! simulator derives from watermark pressure is expressible on the §5.2
//! flow-scheduler hardware as-is, one `pause_flow` per flow behind the
//! congested (port, class).
//!
//! [`resume_flow`]: PifoBlock::resume_flow

use pifo::hw::{BlockConfig, LogicalPifoId, PifoBlock};
use pifo::prelude::*;
use std::collections::HashSet;

const RATE_BPS: u64 = 10_000_000_000;
/// Hog senders behind port 0 — the flows a port-0 pause frame covers.
const HOG_FLOWS: u32 = 8;

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        1
    }
}

/// A 2-port lossless run whose hog port pauses repeatedly: the source of
/// both the packet stream and the pause log replayed below.
fn lossless_run() -> LosslessRun {
    let cfg = LosslessConfig::new(16, 4).with_headroom(16);
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_shared_pool(
        2 * 32,
        AdmissionPolicy::PortFlow {
            port: Threshold::Static(32),
            flow: Threshold::Unlimited,
        },
    );
    for _ in 0..2 {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), h).expect("tree")
        });
    }
    let mut fabric = LosslessFabric::new(sb.build(Box::new(classify)), cfg);
    let sources: Vec<Box<dyn TrafficSource>> = vec![
        // 8 incast senders, 4x the port-0 drain rate: pauses guaranteed.
        Box::new(IncastSource::new(
            FlowId(0),
            HOG_FLOWS,
            1_000,
            8,
            RATE_BPS,
            Nanos(10_000),
            Nanos(200_000),
        )),
        Box::new(CbrSource::new(
            FlowId(100),
            1_000,
            RATE_BPS / 2,
            Nanos::ZERO,
            Nanos(200_000),
        )),
    ];
    fabric.run(sources, DrainMode::Batched)
}

enum ReplayEvent {
    Arrive(Packet),
    Pause,
    Resume,
}

#[test]
fn sim_pause_log_replays_onto_the_hw_block() {
    let run = lossless_run();
    assert!(run.stall.is_none(), "clean source run: {:?}", run.stall);
    assert_eq!(run.total_drops(), 0);
    let port0_pauses = run
        .pause_events
        .iter()
        .filter(|e| e.port == 0 && e.action == PauseAction::Pause)
        .count();
    assert!(port0_pauses > 0, "the hog port must have paused");

    // Timeline: every packet the sim admitted to port 0 (arrival-
    // stamped), interleaved with port 0's pause/resume transitions.
    // Control frames sort before arrivals at equal instants, exactly as
    // the fabric driver delivers them.
    let mut timeline: Vec<(Nanos, u8, ReplayEvent)> = Vec::new();
    for d in &run.run.ports[0].departures {
        timeline.push((d.packet.arrival, 1, ReplayEvent::Arrive(d.packet.clone())));
    }
    for e in run.pause_events.iter().filter(|e| e.port == 0) {
        let ev = match e.action {
            PauseAction::Pause => ReplayEvent::Pause,
            PauseAction::Resume => ReplayEvent::Resume,
        };
        timeline.push((e.time, 0, ev));
    }
    timeline.sort_by_key(|&(t, kind, _)| (t, kind));
    let total = run.run.ports[0].departures.len();

    // Replay through the hardware block: one logical PIFO for port 0,
    // rank = per-flow sequence number (monotonic within a flow, the §5.2
    // precondition — enforced by strict mode). A port-0 pause covers
    // every hog flow behind it.
    let mut block = PifoBlock::new(BlockConfig::default()).strict_monotonic(true);
    let l0 = LogicalPifoId(0);
    let mut paused: HashSet<FlowId> = HashSet::new();
    let mut popped = 0usize;
    let mut pops_attempted_while_paused = 0usize;
    let mut next_seq = vec![0u64; HOG_FLOWS as usize];

    let drain = |block: &mut PifoBlock,
                 paused: &HashSet<FlowId>,
                 popped: &mut usize,
                 attempted: &mut usize,
                 next_seq: &mut Vec<u64>| {
        // Between timeline events the egress line drains a few slots.
        for _ in 0..4 {
            if !paused.is_empty() {
                *attempted += 1;
            }
            match block.dequeue(l0) {
                Some((rank, flow, _meta)) => {
                    assert!(
                        !paused.contains(&flow),
                        "flow {flow} popped while paused (rank {rank})"
                    );
                    // Per-flow FIFO: ranks are the sequence numbers.
                    let seq = &mut next_seq[flow.0 as usize];
                    assert_eq!(rank, Rank(*seq), "flow {flow} popped out of order");
                    *seq += 1;
                    *popped += 1;
                }
                None => break,
            }
        }
    };

    for (_, _, ev) in timeline {
        match ev {
            ReplayEvent::Arrive(p) => {
                block
                    .enqueue(l0, p.flow, Rank(p.seq_in_flow), p.id.0)
                    .expect("block sized for the run");
            }
            ReplayEvent::Pause => {
                for f in 0..HOG_FLOWS {
                    paused.insert(FlowId(f));
                    block.pause_flow(FlowId(f));
                }
            }
            ReplayEvent::Resume => {
                for f in 0..HOG_FLOWS {
                    paused.remove(&FlowId(f));
                    block.resume_flow(FlowId(f));
                }
            }
        }
        drain(
            &mut block,
            &paused,
            &mut popped,
            &mut pops_attempted_while_paused,
            &mut next_seq,
        );
    }

    // The replay genuinely exercised the pause windows: dequeues were
    // attempted while flows were paused, and the scheduler hid them.
    assert!(
        pops_attempted_while_paused > 0,
        "the replay never dequeued inside a pause window"
    );

    // Every pause resolved (the sim log reconciles), so nothing is
    // hidden anymore: the block drains to empty, in per-flow FIFO order.
    assert!(paused.is_empty(), "sim log left flows paused");
    while let Some((rank, flow, _)) = block.dequeue(l0) {
        let seq = &mut next_seq[flow.0 as usize];
        assert_eq!(rank, Rank(*seq), "flow {flow} popped out of order");
        *seq += 1;
        popped += 1;
    }
    assert_eq!(popped, total, "every admitted packet pops exactly once");
    assert_eq!(block.total_len(), 0);
}

/// While the hog flows sit paused, an unpaused flow sharing the logical
/// PIFO keeps popping — pause isolates, it does not head-of-line block.
#[test]
fn paused_flows_do_not_block_unpaused_neighbors() {
    let mut block = PifoBlock::new(BlockConfig::default());
    let l0 = LogicalPifoId(0);
    // Hog flows 0..4 hold better (lower) ranks than the victim flow 9.
    for f in 0..4u32 {
        for s in 0..3u64 {
            block.enqueue(l0, FlowId(f), Rank(s), 0).unwrap();
        }
    }
    for s in 0..3u64 {
        block.enqueue(l0, FlowId(9), Rank(100 + s), 1).unwrap();
    }
    for f in 0..4u32 {
        block.pause_flow(FlowId(f));
    }
    // Only the victim's packets emerge, in order, despite worse ranks.
    for s in 0..3u64 {
        let (rank, flow, _) = block.dequeue(l0).expect("victim drains");
        assert_eq!(flow, FlowId(9));
        assert_eq!(rank, Rank(100 + s));
    }
    assert!(block.dequeue(l0).is_none(), "only paused flows remain");
    for f in 0..4u32 {
        block.resume_flow(FlowId(f));
    }
    let mut remaining = 0;
    while block.dequeue(l0).is_some() {
        remaining += 1;
    }
    assert_eq!(remaining, 12, "resume releases every hog packet");
}
