//! Behavioural experiment assertions: run the `repro` experiment drivers
//! and check the *claims*, not just that they print. These are the
//! executable counterparts of the `repro` experiment table.
//!
//! Kept at medium scale so `cargo test` stays fast; `repro` runs the
//! full-scale versions.

use pifo_bench::experiments;

fn grab(report: &str, needle: &str) -> String {
    report
        .lines()
        .find(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("report lacks '{needle}':\n{report}"))
        .to_string()
}

#[test]
fn f1_stfq_is_weight_fair() {
    let out = experiments::fairness::stfq();
    let jain_line = grab(&out, "Jain index");
    let jain: f64 = jain_line
        .split(':')
        .nth(1)
        .and_then(|s| s.trim().split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("parse jain");
    assert!(jain > 0.999, "Jain {jain} must be ~1.0");
}

#[test]
fn f3_hpfq_shares_match_hierarchy() {
    let out = experiments::fairness::hpfq();
    // Phase 2: D must reach ~90% under HPFQ; flat WFQ gives ~84.4%.
    let d_line = out
        .lines()
        .filter(|l| l.trim_start().starts_with("3 "))
        .nth(1)
        .expect("phase-2 row for D");
    let cols: Vec<f64> = d_line
        .split_whitespace()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (hpfq, flat) = (cols[1], cols[2]);
    assert!((hpfq - 90.0).abs() < 2.0, "HPFQ D share {hpfq}");
    assert!((flat - 84.4).abs() < 2.0, "flat D share {flat}");
}

#[test]
fn f4_right_capped_at_10mbps() {
    let out = experiments::fairness::shaping();
    for line in out
        .lines()
        .filter(|l| l.contains("Mb/s") && l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
    {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if let Some(i) = cols.iter().position(|c| *c == "Mb/s") {
            let right: f64 = cols[i + 1].parse().expect("right rate");
            assert!(
                (right - 10.0).abs() < 1.0,
                "Right must be ~10 Mb/s, got {right}"
            );
        }
    }
}

#[test]
fn f8_two_level_protects_and_preserves_order() {
    let out = experiments::fairness::minrate();
    let two = grab(&out, "2-level PIFO tree");
    let collapsed = grab(&out, "collapsed 1-level");
    let fifo = grab(&out, "FIFO");

    let parse_row = |row: &str| -> (f64, u64) {
        let cols: Vec<&str> = row.split_whitespace().collect();
        let n = cols.len();
        (
            cols[n - 3].parse().expect("flow1 rate"),
            cols[n - 1].parse().expect("inversions"),
        )
    };
    let (r2, inv2) = parse_row(&two);
    let (rc, invc) = parse_row(&collapsed);
    let (rf, _) = parse_row(&fifo);
    assert!(
        r2 >= 2.0,
        "2-level must deliver the 2 Mb/s guarantee, got {r2}"
    );
    assert!(rc >= 2.0, "collapsed also delivers the rate, got {rc}");
    assert!(rf < 2.0, "FIFO must fail the guarantee, got {rf}");
    assert_eq!(inv2, 0, "2-level must never reorder within a flow");
    assert!(invc > 0, "collapsed must exhibit the Sec 3.3 reordering");
}

#[test]
fn f6_lstf_beats_fifo_at_the_tail() {
    let out = experiments::latency::lstf();
    let line = grab(&out, "p99 improvement");
    let factor: f64 = line
        .split(':')
        .nth(1)
        .and_then(|s| s.trim().split('x').next())
        .and_then(|s| s.parse().ok())
        .expect("factor");
    assert!(factor > 1.5, "LSTF must cut p99 by >1.5x, got {factor}x");
}

#[test]
fn f7_stop_and_go_framing_holds() {
    let out = experiments::latency::stopgo();
    let line = grab(&out, "framing invariant");
    let frac = line
        .split(':')
        .nth(1)
        .expect("counts")
        .trim()
        .split(' ')
        .next()
        .expect("x/y");
    let (num, den) = frac.split_once('/').expect("x/y");
    assert_eq!(num, den, "every packet departs in the frame after arrival");
}

#[test]
fn fct_srpt_beats_fifo_for_small_flows() {
    let out = experiments::fct::srpt();
    let line = grab(&out, "better than FIFO");
    let factor: f64 = line
        .split("SRPT is ")
        .nth(1)
        .and_then(|s| s.split('x').next())
        .and_then(|s| s.parse().ok())
        .expect("factor");
    assert!(factor > 2.0, "SRPT small-flow gain {factor}x");
}

#[test]
fn x1_pfabric_counterexample_is_literal() {
    let out = experiments::limits::pfabric();
    assert!(out.contains("pFabric reference: p1(9), p1(8), p1(6), p0(7)"));
    // And the PIFO order must differ (it cannot reproduce it).
    let pifo_line = grab(&out, "PIFO with SRPT");
    assert!(!pifo_line.contains("p1(9), p1(8), p1(6), p0(7)"));
}

#[test]
fn x2_overclock_reduces_deferrals() {
    let out = experiments::hwdemo::conflicts();
    let base = grab(&out, "1.0 GHz");
    let oc = grab(&out, "1.25 GHz");
    let deferrals = |l: &str| -> u64 {
        l.split_whitespace()
            .last()
            .and_then(|s| s.parse().ok())
            .expect("deferral count")
    };
    assert!(
        deferrals(&oc) < deferrals(&base),
        "overclock must reduce deferrals: {} vs {}",
        deferrals(&oc),
        deferrals(&base)
    );
}

#[test]
fn fig2_order_is_the_papers() {
    let out = experiments::hwdemo::fig2();
    assert!(out.contains("dequeue order: P3, P1, P2, P4"));
}
