//! Cross-crate equivalence: the same scheduling program executed by the
//! software `ScheduleTree` (pifo-core) and by the compiled hardware mesh
//! (pifo-compiler + pifo-hw) produces the same schedule.
//!
//! Exact element-for-element equality is asserted for transactions with
//! unique ranks; for STFQ — where cross-flow rank ties are tie-broken
//! differently by the flow-scheduler decomposition (see
//! `pifo-hw/tests/equivalence.rs`) — we assert intra-flow FIFO order plus
//! tightly matching per-flow service counts.

use pifo_algos::{Stfq, WeightTable};
use pifo_compiler::{compile, instantiate, TreeSpec};
use pifo_core::prelude::*;
use pifo_core::transaction::FnTransaction;
use pifo_hw::BlockConfig;
use std::collections::HashMap;

fn fifo_tx() -> Box<dyn SchedulingTransaction> {
    Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx<'_>| {
        Rank(ctx.now.as_nanos())
    }))
}

/// Drive packets through a compiled 2-level mesh, one enqueue per cycle,
/// then drain with 3-cycle transmit spacing.
fn mesh_order(
    spec: &TreeSpec,
    sched: Vec<Box<dyn SchedulingTransaction>>,
    classify: impl Fn(&Packet) -> usize + 'static,
    packets: &[Packet],
) -> Vec<u64> {
    let layout = compile(spec).expect("compiles");
    let shape = (0..layout.placements.len()).map(|_| None).collect();
    let mut mesh = instantiate(
        &layout,
        sched,
        shape,
        Box::new(classify),
        BlockConfig::default(),
        1,
    );
    for p in packets {
        let mut q = p.clone();
        q.arrival = mesh.now();
        mesh.enqueue_packet(q).expect("ports free");
        mesh.tick();
    }
    let mut order = Vec::new();
    let mut idle = 0;
    while order.len() < packets.len() {
        mesh.tick();
        mesh.tick();
        mesh.tick();
        match mesh.transmit() {
            Ok(Some(p)) => {
                order.push(p.id.0);
                idle = 0;
            }
            _ => {
                idle += 1;
                assert!(idle < 100, "mesh wedged with {} delivered", order.len());
            }
        }
    }
    order
}

/// Drive the same packets through a ScheduleTree built with the same
/// shape and transactions.
fn tree_order(
    build: impl FnOnce(&mut TreeBuilder) -> (NodeId, NodeId, NodeId),
    classify: impl Fn(&Packet) -> NodeId + Send + 'static,
    packets: &[Packet],
) -> Vec<u64> {
    let mut b = TreeBuilder::new();
    let _ = build(&mut b);
    let mut tree = b.build(Box::new(classify)).expect("valid");
    for (i, p) in packets.iter().enumerate() {
        let mut q = p.clone();
        q.arrival = Nanos(i as u64);
        tree.enqueue(q, Nanos(i as u64)).expect("enqueue");
    }
    std::iter::from_fn(|| tree.dequeue(Nanos(1 << 40)))
        .map(|p| p.id.0)
        .collect()
}

fn hpfq_packets(n: u64) -> Vec<Packet> {
    // Deterministic pseudo-random flow choice over 4 flows.
    let mut state = 0xDEADBEEFu64;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Packet::new(i, FlowId((state % 4) as u32), 1_000, Nanos(i))
        })
        .collect()
}

/// FIFO at every node: ranks are unique (one enqueue per cycle), so the
/// tree and the mesh must agree element for element.
#[test]
fn fifo_hierarchy_tree_equals_mesh() {
    let packets = hpfq_packets(200);

    let tree = tree_order(
        |b| {
            let root = b.add_root("root", fifo_tx());
            let left = b.add_child(root, "left", fifo_tx());
            let right = b.add_child(root, "right", fifo_tx());
            (root, left, right)
        },
        |p: &Packet| {
            if p.flow.0 < 2 {
                NodeId::from_index(1)
            } else {
                NodeId::from_index(2)
            }
        },
        &packets,
    );

    let mesh = mesh_order(
        &TreeSpec::hpfq(),
        vec![fifo_tx(), fifo_tx(), fifo_tx()],
        |p: &Packet| if p.flow.0 < 2 { 1usize } else { 2 },
        &packets,
    );

    assert_eq!(tree, mesh, "FIFO hierarchy must match exactly");
}

fn stfq_nodes() -> Vec<Box<dyn SchedulingTransaction>> {
    // Node ids: root=0, left=1, right=2 in both worlds; the root's
    // child-flows are therefore FlowId(1) and FlowId(2).
    vec![
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(1), 1),
            (FlowId(2), 9),
        ]))),
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(0), 3),
            (FlowId(1), 7),
        ]))),
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(2), 4),
            (FlowId(3), 6),
        ]))),
    ]
}

/// STFQ/HPFQ: intra-flow order identical; per-flow totals identical; and
/// per-flow counts never drift more than a tie window apart at any prefix.
#[test]
fn stfq_hierarchy_tree_close_to_mesh() {
    let packets = hpfq_packets(400);

    let tree = tree_order(
        |b| {
            let mut it = stfq_nodes().into_iter();
            let root = b.add_root("WFQ_Root", it.next().expect("root"));
            let left = b.add_child(root, "WFQ_Left", it.next().expect("left"));
            let right = b.add_child(root, "WFQ_Right", it.next().expect("right"));
            (root, left, right)
        },
        |p: &Packet| {
            if p.flow.0 < 2 {
                NodeId::from_index(1)
            } else {
                NodeId::from_index(2)
            }
        },
        &packets,
    );
    let mesh = mesh_order(
        &TreeSpec::hpfq(),
        stfq_nodes(),
        |p: &Packet| if p.flow.0 < 2 { 1usize } else { 2 },
        &packets,
    );

    assert_eq!(tree.len(), mesh.len());
    let flow_of: HashMap<u64, u32> = packets.iter().map(|p| (p.id.0, p.flow.0)).collect();

    // Intra-flow subsequences identical (FIFO per flow on both sides).
    for f in 0..4u32 {
        let a: Vec<u64> = tree.iter().copied().filter(|id| flow_of[id] == f).collect();
        let b: Vec<u64> = mesh.iter().copied().filter(|id| flow_of[id] == f).collect();
        assert_eq!(a, b, "flow {f} must drain FIFO in both");
    }

    // Prefix counts stay within a small tie window.
    let mut ca = [0i64; 4];
    let mut cb = [0i64; 4];
    for (x, y) in tree.iter().zip(mesh.iter()) {
        ca[flow_of[x] as usize] += 1;
        cb[flow_of[y] as usize] += 1;
        for f in 0..4 {
            assert!(
                (ca[f] - cb[f]).abs() <= 4,
                "flow {f} service drifted: tree {} vs mesh {}",
                ca[f],
                cb[f]
            );
        }
    }
}

/// Shaped hierarchy: the tree with a fixed-delay shaper and the mesh
/// (dedicated shaping block, Fig 11) deliver the same packets with the
/// same visibility semantics.
#[test]
fn shaped_hierarchy_tree_equals_mesh() {
    struct Delay(u64);
    impl ShapingTransaction for Delay {
        fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
            Nanos(ctx.now.as_nanos() + self.0)
        }
    }

    let packets = hpfq_packets(60);

    // Tree.
    let mut b = TreeBuilder::new();
    let root = b.add_root("root", fifo_tx());
    let left = b.add_child(root, "left", fifo_tx());
    let right = b.add_child(root, "right", fifo_tx());
    b.set_shaper(right, Box::new(Delay(50)));
    let mut tree = b
        .build(Box::new(
            move |p: &Packet| if p.flow.0 < 2 { left } else { right },
        ))
        .expect("valid");
    for (i, p) in packets.iter().enumerate() {
        let mut q = p.clone();
        q.arrival = Nanos(i as u64);
        tree.enqueue(q, Nanos(i as u64)).expect("enqueue");
    }
    let tree_out: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(1 << 40)))
        .map(|p| p.id.0)
        .collect();

    // Mesh.
    let layout = compile(&TreeSpec::hierarchies_with_shaping()).expect("compiles");
    let shape: Vec<Option<Box<dyn ShapingTransaction>>> =
        vec![None, None, Some(Box::new(Delay(50)))];
    // Note: in the spec, node 2 (WFQ_Right) is the shaped one; swap the
    // classifier accordingly (flows 2,3 -> node 2).
    let mut mesh = instantiate(
        &layout,
        vec![fifo_tx(), fifo_tx(), fifo_tx()],
        shape,
        Box::new(|p: &Packet| if p.flow.0 < 2 { 1usize } else { 2 }),
        BlockConfig::default(),
        1,
    );
    for p in &packets {
        let mut q = p.clone();
        q.arrival = mesh.now();
        mesh.enqueue_packet(q).expect("ports free");
        mesh.tick();
    }
    let mut mesh_out = Vec::new();
    let mut idle = 0;
    while mesh_out.len() < packets.len() {
        mesh.tick();
        mesh.tick();
        mesh.tick();
        match mesh.transmit() {
            Ok(Some(p)) => {
                mesh_out.push(p.id.0);
                idle = 0;
            }
            _ => {
                idle += 1;
                assert!(idle < 200, "mesh wedged at {}", mesh_out.len());
            }
        }
    }

    // Both deliver everything, intra-flow FIFO, and the same packet sets.
    assert_eq!(tree_out.len(), mesh_out.len());
    let mut a = tree_out.clone();
    let mut b2 = mesh_out.clone();
    a.sort_unstable();
    b2.sort_unstable();
    assert_eq!(a, b2, "same packet sets delivered");
    let flow_of: HashMap<u64, u32> = packets.iter().map(|p| (p.id.0, p.flow.0)).collect();
    for f in 0..4u32 {
        let x: Vec<u64> = tree_out
            .iter()
            .copied()
            .filter(|id| flow_of[id] == f)
            .collect();
        let y: Vec<u64> = mesh_out
            .iter()
            .copied()
            .filter(|id| flow_of[id] == f)
            .collect();
        assert_eq!(x, y, "flow {f} intra-flow order");
    }
}
