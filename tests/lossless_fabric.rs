//! The §5.1 incast-storm scenario rerun **lossless**: the same 16-port
//! fabric and the same hog-plus-victims traffic as `shared_pool_incast`,
//! but with the port×flow admission policy wired into PFC-style
//! backpressure instead of tail drops.
//!
//! What must hold (and is asserted here):
//!
//! * **zero drops anywhere** — the storm that drops thousands of packets
//!   under every drop-based policy loses nothing once the fabric pauses
//!   the senders;
//! * every pause resolves: pause/resume counts reconcile switch-side and
//!   source-side, and each individual pause stays under the watchdog
//!   bound (the run completes, it does not stall);
//! * the pool never exceeds the `ports × (xoff + headroom)` sizing rule;
//! * with a non-zero pause-wire delay, the in-flight packets land in the
//!   headroom skid buffer — exercised, bounded, and still lossless;
//! * departure traces **and the pause-event log** are bit-identical
//!   across every exact PIFO backend and all three drain modes.

use pifo::prelude::*;

const PORTS: usize = 16;
const RATE_BPS: u64 = 10_000_000_000;
/// 64 synchronized senders × 16 packets, every 20 µs: the same 1 024-
/// packet incast wave as `shared_pool_incast`, 8× the port drain rate.
const HOG_END: Nanos = Nanos(500_000);
const VICTIM_BURST: u64 = 64;

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        (p.flow.0 as usize - 100) % PORTS
    }
}

/// The live-source equivalent of `shared_pool_incast::arrivals()`: one
/// incast hog into port 0, one line-rate 64-packet burst per victim
/// port, staggered 30 µs apart.
fn sources() -> Vec<Box<dyn TrafficSource>> {
    let mut out: Vec<Box<dyn TrafficSource>> = vec![Box::new(IncastSource::new(
        FlowId(0),
        64,
        1_000,
        16,
        RATE_BPS,
        Nanos(20_000),
        HOG_END,
    ))];
    for port in 1..PORTS as u64 {
        let start = Nanos(50_000 + 30_000 * (port - 1));
        let gap = tx_time(1_000, RATE_BPS);
        out.push(Box::new(CbrSource::new(
            FlowId(100 + port as u32),
            1_000,
            RATE_BPS,
            start,
            start + Nanos(VICTIM_BURST * gap.as_nanos()),
        )));
    }
    out
}

fn build_fabric(
    backend: PifoBackend,
    port_threshold: usize,
    pool_capacity: usize,
    cfg: LosslessConfig,
) -> LosslessFabric {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_shared_pool(
        pool_capacity,
        AdmissionPolicy::PortFlow {
            port: Threshold::Static(port_threshold),
            flow: Threshold::Unlimited,
        },
    );
    for _ in 0..PORTS {
        sb.add_shared_port(|h| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), h).expect("tree")
        });
    }
    LosslessFabric::new(sb.build(Box::new(classify)), cfg)
}

/// The on-die configuration: pause frames propagate instantly, so the
/// port threshold (xoff + headroom) gates direct admission and the skid
/// buffer stays in reserve.
fn run_on_die(backend: PifoBackend, mode: DrainMode) -> LosslessRun {
    let cfg = LosslessConfig::new(32, 8).with_headroom(32);
    let mut fabric = build_fabric(backend, 64, PORTS * 64, cfg);
    fabric.run(sources(), mode)
}

fn assert_lossless(run: &LosslessRun, label: &str) {
    assert!(run.stall.is_none(), "[{label}] stalled: {:?}", run.stall);
    assert_eq!(run.total_drops(), 0, "[{label}] lossless contract");
    assert_eq!(run.skid_overflow, 0, "[{label}] headroom never overflows");
    assert_eq!(run.run.misrouted, 0, "[{label}] classifier total");
    assert_eq!(
        run.count_events(PauseAction::Pause),
        run.count_events(PauseAction::Resume),
        "[{label}] every switch-side pause resolves"
    );
    for (i, s) in run.sources.iter().enumerate() {
        assert_eq!(
            s.pauses, s.resumes,
            "[{label}] source {i} pause/resume counts reconcile"
        );
    }
}

#[test]
fn incast_storm_under_backpressure_drops_nothing() {
    let run = run_on_die(PifoBackend::Bucket, DrainMode::Batched);
    assert_lossless(&run, "on-die");

    // The storm is real: the hog was paused, repeatedly, and the victim
    // sources never were.
    assert!(
        run.count_events(PauseAction::Pause) > 10,
        "an 8x incast overload must keep tripping xoff (got {})",
        run.count_events(PauseAction::Pause)
    );
    assert!(run.sources[0].pauses > 0, "the hog source gets paused");
    assert!(run.port_paused[0] > Nanos::ZERO, "port 0 asserts pause");
    for (i, s) in run.sources.iter().enumerate().skip(1) {
        assert_eq!(s.pauses, 0, "victim source {i} is never paused");
    }
    for port in 1..PORTS {
        assert_eq!(run.port_paused[port], Nanos::ZERO, "victim port {port}");
        assert_eq!(
            run.run.ports[port].departures.len() as u64,
            VICTIM_BURST,
            "victim port {port} delivers its whole burst"
        );
    }

    // Bounded pause: the watchdog never fired, so every single pause sat
    // under `max_pause`; the accounting agrees.
    let cfg = LosslessConfig::new(32, 8).with_headroom(32);
    assert!(
        run.sources[0].max_pause < cfg.max_pause,
        "longest source pause {} must stay under the watchdog bound {}",
        run.sources[0].max_pause,
        cfg.max_pause
    );
    assert!(run.sources[0].total_paused >= run.sources[0].max_pause);

    // Pool sizing rule: ports x (xoff + headroom) is never exceeded (the
    // per-port Static threshold enforces exactly that partition).
    assert!(
        run.max_pool_live <= cfg.min_pool_capacity(PORTS),
        "pool peak {} exceeds the sizing bound {}",
        run.max_pool_live,
        cfg.min_pool_capacity(PORTS)
    );

    // Backpressure converts drops into delay, not loss: the paused hog
    // is throttled to the port's line rate, and the port runs at (or
    // near) that rate for the whole storm — 500 µs / 800 ns ≈ 625
    // packet slots, all but the ramp-up used.
    assert!(
        run.run.ports[0].departures.len() >= 600,
        "the hog must keep port 0 at line rate between pauses (got {})",
        run.run.ports[0].departures.len()
    );
}

/// With a real pause-wire delay the in-flight packets land in the skid
/// buffer: used, bounded by headroom, and still zero loss.
#[test]
fn wire_delay_fills_headroom_but_never_overflows() {
    // Port threshold == xoff: admission rejects right at the watermark,
    // so everything emitted during pause propagation is skid-buffered.
    // One 64-packet incast instant can land inside the 400 ns wire
    // window, plus the instant already in flight: headroom 160 covers it.
    let cfg = LosslessConfig::new(32, 8)
        .with_headroom(160)
        .with_wire_delay(Nanos(400));
    let mut fabric = build_fabric(PifoBackend::Bucket, 32, PORTS * 32, cfg);
    let run = fabric.run(sources(), DrainMode::Batched);

    assert_lossless(&run, "wire-delay");
    assert!(
        run.peak_skid[0] > 0,
        "pause propagation must put in-flight packets into the skid buffer"
    );
    assert!(
        run.peak_skid[0] <= cfg.headroom,
        "skid {} exceeds headroom {}",
        run.peak_skid[0],
        cfg.headroom
    );
    assert!(
        run.max_pool_live <= PORTS * 32,
        "skid packets are held outside the pool"
    );
}

/// Departure traces and the pause-event log are bit-identical across
/// every exact backend and all three drain modes — backpressure does not
/// cost the fabric its determinism.
#[test]
fn lossless_traces_identical_across_backends_and_drain_modes() {
    let reference = run_on_die(PifoBackend::SortedArray, DrainMode::PerPacket);
    assert_lossless(&reference, "reference");
    assert!(reference.count_events(PauseAction::Pause) > 0);

    for backend in PifoBackend::EXACT {
        for mode in [
            DrainMode::PerPacket,
            DrainMode::Batched,
            DrainMode::Parallel { workers: 4 },
        ] {
            let run = run_on_die(backend, mode);
            let label = format!("{backend}/{}", mode.label());
            assert_lossless(&run, &label);
            assert_eq!(
                reference.pause_events, run.pause_events,
                "[{label}] pause-event log diverges"
            );
            assert_eq!(
                reference.rounds, run.rounds,
                "[{label}] round count diverges"
            );
            for (port, (a, b)) in reference.run.ports.iter().zip(&run.run.ports).enumerate() {
                assert_eq!(
                    a.departures.len(),
                    b.departures.len(),
                    "[{label}] port {port} departure count diverges"
                );
                for (x, y) in a.departures.iter().zip(&b.departures) {
                    assert_eq!(x, y, "[{label}] port {port} trace diverges");
                }
            }
        }
    }
}
