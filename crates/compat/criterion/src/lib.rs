//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmark surface the `pifo-bench` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally lightweight — a short calibrated loop
//! reporting ns/iter (and elements/sec when a throughput is set) — so
//! bench binaries stay fast enough to run in CI as smoke checks. Swap
//! the real criterion back in when the registry is reachable; call
//! sites need no changes.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, operations) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("heap", 1024)` → `heap/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record mean wall-clock time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up, then a small fixed batch: the stub favours
        // fast CI smoke runs over statistical rigour.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Criterion { iters }
    }
}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored by the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let iters = self.iters;
        run_one("", &id.into(), None, iters, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in derived reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Target measurement time (accepted and ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up time (accepted and ignored by the stub).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.throughput,
            self.criterion.iters,
            f,
        );
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id,
            self.throughput,
            self.criterion.iters,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    iters: u64,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter_ns * 1e9)
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter_ns * 1e9)
        }
        _ => String::new(),
    };
    println!("bench {label:<40} {per_iter_ns:>14.0} ns/iter{rate}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
