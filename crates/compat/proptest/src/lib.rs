//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest's surface that the test suite uses:
//! [`Strategy`] with `prop_map`, [`Just`], `any::<T>()`, integer-range
//! strategies, tuple strategies, `proptest::collection::vec`, the
//! [`proptest!`] / [`prop_oneof!`] macros and the `prop_assert*` family.
//!
//! Semantics: every `proptest!` test runs `PROPTEST_CASES` (default 64)
//! deterministic cases from a fixed-seed SplitMix64 generator, so runs
//! are reproducible bit-for-bit. There is no shrinking — a failing case
//! panics with the usual `assert!` message plus the case index embedded
//! by [`test_runner::run_cases`].

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner and RNG.

    /// SplitMix64: tiny, fast, and plenty random for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded for the given test case index.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Number of cases per property (override with `PROPTEST_CASES`).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `body` for each case with a per-case deterministic RNG.
    pub fn run_cases(mut body: impl FnMut(&mut TestRng)) {
        for case in 0..cases() {
            let mut rng = TestRng::from_seed(case);
            // A panic inside the body carries the std assert message; we
            // re-raise with the case index so failures are reproducible.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(payload) = result {
                eprintln!("proptest (stub): failing case index = {case} (seed is deterministic; rerun reproduces it)");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Width computed in u64 two's-complement space; exact
                    // for every integer type up to 64 bits.
                    let width = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(width);
                    ((self.start as i128) + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let width = (e as i128 - s as i128) as u64;
                    let off = if width == u64::MAX { rng.next_u64() } else { rng.below(width + 1) };
                    ((s as i128) + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the tests use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(elem, min..max)`: a vector of `elem`-generated values.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(|__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Weighted alternative strategies: `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, Box::new($strat) as $crate::strategy::BoxedStrategy<_>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, Box::new($strat) as $crate::strategy::BoxedStrategy<_>)),+
        ])
    };
}

/// Property-test assertion (stub: panics like `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
