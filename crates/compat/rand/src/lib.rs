//! An offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice `pifo-sim` uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! and `f64` ranges.
//!
//! `StdRng` here is SplitMix64 — deterministic and seeded, which is all
//! the simulator requires (every experiment fixes its seed). Stream
//! values differ from upstream `StdRng` (ChaCha12), so recorded numbers
//! are stable *within* this workspace, not across rand versions.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + (rng.next_u64() % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let width = (e as i128 - s as i128) as u64;
                let off = if width == u64::MAX { rng.next_u64() } else { rng.next_u64() % (width + 1) };
                ((s as i128) + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
