//! # pifo-compiler
//!
//! Compiles a scheduling tree — nodes with scheduling (and optionally
//! shaping) transactions — onto a PIFO mesh (§4.3):
//!
//! 1. every tree *level* is assigned to its own PIFO block (each packet
//!    needs at most one enqueue and one dequeue per level per cycle, and
//!    a block provides exactly one of each);
//! 2. every *shaping PIFO* gets a dedicated block: its releases fire at
//!    arbitrary wall-clock times and would otherwise conflict with the
//!    level's scheduling traffic (the Fig 11 `TBF_Right` block);
//! 3. next-hop lookup tables are emitted per block (Fig 9): transmit,
//!    dequeue-child, or enqueue-into-parent;
//! 4. the full-mesh wiring is priced in bits (§5.4).
//!
//! [`compile`] is purely structural (drives the golden tests against
//! Figs 10b/11b); [`instantiate`] binds transactions and returns a
//! runnable [`pifo_hw::Mesh`].

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

use pifo_core::prelude::*;
use pifo_hw::{BlockConfig, BlockId, LogicalPifoId, Mesh, NodePlacement};
use std::fmt::Write as _;

/// One node of the abstract tree handed to the compiler.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display name (e.g. `WFQ_Root`).
    pub name: String,
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Whether a shaping transaction is attached.
    pub shaped: bool,
}

/// The abstract tree.
#[derive(Debug, Clone)]
pub struct TreeSpec {
    /// Nodes in any order; exactly one must be parentless.
    pub nodes: Vec<NodeSpec>,
}

impl TreeSpec {
    /// Build from `(name, parent, shaped)` tuples.
    pub fn new(nodes: Vec<(&str, Option<usize>, bool)>) -> Self {
        TreeSpec {
            nodes: nodes
                .into_iter()
                .map(|(n, p, s)| NodeSpec {
                    name: n.to_string(),
                    parent: p,
                    shaped: s,
                })
                .collect(),
        }
    }

    /// The Fig 3 HPFQ tree.
    pub fn hpfq() -> Self {
        TreeSpec::new(vec![
            ("WFQ_Root", None, false),
            ("WFQ_Left", Some(0), false),
            ("WFQ_Right", Some(0), false),
        ])
    }

    /// The Fig 4 Hierarchies-with-Shaping tree (TBF on Right).
    pub fn hierarchies_with_shaping() -> Self {
        TreeSpec::new(vec![
            ("WFQ_Root", None, false),
            ("WFQ_Left", Some(0), false),
            ("WFQ_Right", Some(0), true),
        ])
    }

    /// A linear hierarchy of `depth` levels, WFQ at each — the paper's
    /// headline 5-level configuration when `depth = 5` (§1).
    pub fn linear(depth: usize) -> Self {
        assert!(depth >= 1, "need at least one level");
        let mut nodes = Vec::with_capacity(depth);
        for i in 0..depth {
            nodes.push(NodeSpec {
                name: format!("WFQ_L{}", i + 1),
                parent: if i == 0 { None } else { Some(i - 1) },
                shaped: false,
            });
        }
        TreeSpec { nodes }
    }
}

/// Where the compiler placed things, plus the derived tables.
#[derive(Debug, Clone)]
pub struct MeshLayout {
    /// Per-node placements (indexes match the input spec).
    pub placements: Vec<NodePlacement>,
    /// Total blocks allocated.
    pub n_blocks: usize,
    /// Blocks occupied by scheduling levels (the rest serve shaping).
    pub n_level_blocks: usize,
    /// Human-readable next-hop lookup table entries, per block.
    pub lookup_tables: Vec<Vec<String>>,
}

/// Errors the compiler reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// No root / several roots / bad parent index.
    MalformedTree(String),
    /// A shaping transaction on the root has no parent to release to.
    ShaperOnRoot,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::MalformedTree(m) => write!(f, "malformed tree: {m}"),
            CompileError::ShaperOnRoot => write!(f, "shaping transaction on the root"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a tree spec to a mesh layout (§4.3).
pub fn compile(spec: &TreeSpec) -> Result<MeshLayout, CompileError> {
    if spec.nodes.is_empty() {
        return Err(CompileError::MalformedTree("no nodes".into()));
    }
    let n = spec.nodes.len();
    let mut root = None;
    for (i, node) in spec.nodes.iter().enumerate() {
        match node.parent {
            None => {
                if root.replace(i).is_some() {
                    return Err(CompileError::MalformedTree("multiple roots".into()));
                }
                if node.shaped {
                    return Err(CompileError::ShaperOnRoot);
                }
            }
            Some(p) if p >= n => {
                return Err(CompileError::MalformedTree(format!(
                    "node {} has out-of-range parent {p}",
                    node.name
                )))
            }
            _ => {}
        }
    }
    let root = root.ok_or_else(|| CompileError::MalformedTree("no root".into()))?;

    // Levels (with cycle detection).
    let mut level = vec![usize::MAX; n];
    #[allow(clippy::needless_range_loop)] // `i` doubles as the walk start and the `level` index
    for i in 0..n {
        let mut cur = i;
        let mut depth = 0usize;
        while let Some(p) = spec.nodes[cur].parent {
            depth += 1;
            cur = p;
            if depth > n {
                return Err(CompileError::MalformedTree("parent cycle".into()));
            }
        }
        if cur != root {
            return Err(CompileError::MalformedTree(format!(
                "node {} not connected to the root",
                spec.nodes[i].name
            )));
        }
        level[i] = depth;
    }
    let n_levels = level.iter().copied().max().expect("non-empty") + 1;

    // Level -> block; sequential lpifo ids within each block.
    let mut next_lpifo = vec![0u16; n_levels];
    let mut placements: Vec<NodePlacement> = Vec::with_capacity(n);
    for (i, node) in spec.nodes.iter().enumerate() {
        let b = BlockId(level[i] as u8);
        let l = LogicalPifoId(next_lpifo[level[i]]);
        next_lpifo[level[i]] += 1;
        placements.push(NodePlacement {
            name: node.name.clone(),
            parent: node.parent,
            block: b,
            lpifo: l,
            shaping: None, // filled below
        });
    }
    // Dedicated block per shaping PIFO (Fig 11).
    let mut n_blocks = n_levels;
    for (i, node) in spec.nodes.iter().enumerate() {
        if node.shaped {
            placements[i].shaping = Some((BlockId(n_blocks as u8), LogicalPifoId(0)));
            n_blocks += 1;
        }
    }

    // Lookup tables (Fig 9): what happens after a dequeue at each block.
    let mut lookup_tables: Vec<Vec<String>> = vec![Vec::new(); n_blocks];
    for (i, p) in placements.iter().enumerate() {
        let children: Vec<usize> = placements
            .iter()
            .enumerate()
            .filter(|(_, c)| c.parent == Some(i))
            .map(|(j, _)| j)
            .collect();
        let b = p.block.0 as usize;
        if children.is_empty() {
            lookup_tables[b].push(format!("deq {}: packet -> Transmit", p.name));
        } else {
            for c in children {
                let cp = &placements[c];
                lookup_tables[b].push(format!(
                    "deq {}: ref({}) -> Dequeue {} {}",
                    p.name, cp.name, cp.block, cp.lpifo
                ));
            }
        }
        if let Some((sb, _)) = p.shaping {
            let parent = p.parent.expect("no shaper on root");
            let pp = &placements[parent];
            lookup_tables[sb.0 as usize].push(format!(
                "deq shaping({}): release -> Enqueue {} {} ({})",
                p.name, pp.block, pp.lpifo, pp.name
            ));
        }
    }

    Ok(MeshLayout {
        placements,
        n_blocks,
        n_level_blocks: n_levels,
        lookup_tables,
    })
}

impl MeshLayout {
    /// Render the configuration like Figs 10b/11b (for golden tests and
    /// the `repro compile` experiment).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "mesh: {} blocks ({} level, {} shaping)",
            self.n_blocks,
            self.n_level_blocks,
            self.n_blocks - self.n_level_blocks
        );
        for b in 0..self.n_blocks {
            let residents: Vec<String> = self
                .placements
                .iter()
                .filter(|p| p.block.0 as usize == b)
                .map(|p| format!("{}@{}", p.name, p.lpifo))
                .chain(
                    self.placements
                        .iter()
                        .filter(|p| p.shaping.map(|(sb, _)| sb.0 as usize) == Some(b))
                        .map(|p| format!("shaping({})@q0", p.name)),
                )
                .collect();
            let _ = writeln!(s, "B{b}: [{}]", residents.join(", "));
            for e in &self.lookup_tables[b] {
                let _ = writeln!(s, "  {e}");
            }
        }
        s
    }

    /// §5.4: bits per enqueue+dequeue wire set for a given block config.
    /// Baseline: 8 (lpifo) + 16 (rank) + 32 (meta) + 10 (flow) for the
    /// enqueue, plus 8 (lpifo) + 32 (element) for the dequeue = 106.
    pub fn wire_set_bits(cfg: &BlockConfig) -> u32 {
        let enq = cfg.lpifo_id_bits() + cfg.rank_bits + cfg.meta_bits + cfg.flow_id_bits();
        let deq = cfg.lpifo_id_bits() + cfg.meta_bits;
        enq + deq
    }

    /// §5.4: total wire bits for the full mesh (`blocks · (blocks-1)`
    /// directed sets).
    pub fn total_wiring_bits(&self, cfg: &BlockConfig) -> u64 {
        let sets = (self.n_blocks * self.n_blocks.saturating_sub(1)) as u64;
        sets * Self::wire_set_bits(cfg) as u64
    }
}

/// Bind transactions to a compiled layout and build a runnable mesh.
///
/// `sched[i]`/`shape[i]` correspond to `spec.nodes[i]`; `classifier` maps
/// packets to leaf node indices; each block gets `block_cfg`.
///
/// # Panics
///
/// Panics if a shaped node lacks a shaping transaction (or vice versa) —
/// the 1-to-1 relationship of §3.5 is structural.
pub fn instantiate(
    layout: &MeshLayout,
    sched: Vec<Box<dyn SchedulingTransaction>>,
    shape: Vec<Option<Box<dyn ShapingTransaction>>>,
    classifier: Box<dyn Fn(&Packet) -> usize>,
    block_cfg: BlockConfig,
    cycle_ns: u64,
) -> Mesh {
    assert_eq!(
        layout.placements.len(),
        sched.len(),
        "one sched tx per node"
    );
    assert_eq!(
        layout.placements.len(),
        shape.len(),
        "one shape slot per node"
    );
    for (i, p) in layout.placements.iter().enumerate() {
        assert_eq!(
            p.shaping.is_some(),
            shape[i].is_some(),
            "shaping placement/transaction mismatch at {}",
            p.name
        );
    }
    let cfgs = (0..layout.n_blocks).map(|_| block_cfg.clone()).collect();
    Mesh::new(
        cfgs,
        layout.placements.clone(),
        sched,
        shape,
        classifier,
        cycle_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig 10b: HPFQ compiles to two blocks — WFQ_Root alone, WFQ_Left
    /// and WFQ_Right sharing the second.
    #[test]
    fn hpfq_matches_fig_10b() {
        let layout = compile(&TreeSpec::hpfq()).unwrap();
        assert_eq!(layout.n_blocks, 2);
        assert_eq!(layout.n_level_blocks, 2);
        assert_eq!(layout.placements[0].block, BlockId(0));
        assert_eq!(layout.placements[1].block, BlockId(1));
        assert_eq!(layout.placements[2].block, BlockId(1));
        assert_ne!(layout.placements[1].lpifo, layout.placements[2].lpifo);
        let rendered = layout.render();
        assert!(rendered.contains("WFQ_Root@q0"));
        assert!(rendered.contains("deq WFQ_Left: packet -> Transmit"));
        assert!(rendered.contains("deq WFQ_Root: ref(WFQ_Left) -> Dequeue B1 q0"));
    }

    /// Fig 11b: shaping adds a dedicated third block for TBF_Right.
    #[test]
    fn shaping_matches_fig_11b() {
        let layout = compile(&TreeSpec::hierarchies_with_shaping()).unwrap();
        assert_eq!(layout.n_blocks, 3);
        assert_eq!(layout.n_level_blocks, 2);
        let right = &layout.placements[2];
        assert_eq!(right.shaping, Some((BlockId(2), LogicalPifoId(0))));
        let rendered = layout.render();
        assert!(
            rendered.contains("deq shaping(WFQ_Right): release -> Enqueue B0 q0 (WFQ_Root)"),
            "{rendered}"
        );
    }

    /// The headline 5-level hierarchy fits 5 blocks (§4.2: "we expect a
    /// small number of PIFO blocks in a typical switch, e.g. less than
    /// five").
    #[test]
    fn five_level_tree_uses_five_blocks() {
        let layout = compile(&TreeSpec::linear(5)).unwrap();
        assert_eq!(layout.n_blocks, 5);
        for (i, p) in layout.placements.iter().enumerate() {
            assert_eq!(p.block, BlockId(i as u8), "level i -> block i");
        }
    }

    #[test]
    fn wire_bits_match_section_5_4() {
        let cfg = BlockConfig::default();
        assert_eq!(MeshLayout::wire_set_bits(&cfg), 106);
        let layout = compile(&TreeSpec::linear(5)).unwrap();
        assert_eq!(layout.total_wiring_bits(&cfg), 20 * 106); // = 2120
    }

    #[test]
    fn malformed_trees_rejected() {
        assert!(matches!(
            compile(&TreeSpec { nodes: vec![] }),
            Err(CompileError::MalformedTree(_))
        ));
        // Two roots.
        assert!(compile(&TreeSpec::new(vec![("a", None, false), ("b", None, false)])).is_err());
        // Parent out of range.
        assert!(compile(&TreeSpec::new(vec![
            ("a", None, false),
            ("b", Some(9), false)
        ]))
        .is_err());
        // Shaper on root.
        assert!(matches!(
            compile(&TreeSpec::new(vec![("a", None, true)])),
            Err(CompileError::ShaperOnRoot)
        ));
    }

    #[test]
    fn cycle_detected() {
        // 1 -> 2 -> 1 cycle plus a proper root.
        let spec = TreeSpec::new(vec![
            ("root", None, false),
            ("a", Some(2), false),
            ("b", Some(1), false),
        ]);
        assert!(matches!(
            compile(&spec),
            Err(CompileError::MalformedTree(_))
        ));
    }

    #[test]
    fn siblings_share_block_distinct_lpifos() {
        let spec = TreeSpec::new(vec![
            ("root", None, false),
            ("a", Some(0), false),
            ("b", Some(0), false),
            ("c", Some(0), false),
        ]);
        let layout = compile(&spec).unwrap();
        assert_eq!(layout.n_blocks, 2);
        let lpifos: Vec<u16> = layout.placements[1..].iter().map(|p| p.lpifo.0).collect();
        assert_eq!(lpifos, vec![0, 1, 2]);
    }
}
