//! Rank-inversion metrics — turning "approximately right" into a number.
//!
//! The [`approx`](crate::approx) engines deliberately relax the PIFO
//! contract's sorted-pop invariant; this module quantifies *by how much*.
//! Three layers:
//!
//! * [`InversionTracker`] — a streaming scorer a
//!   [`ScheduleTree`](crate::tree::ScheduleTree) (and through it a
//!   switch port) carries when tracking is enabled. It observes every
//!   rank *pushed* into the root PIFO and every rank *popped* from it,
//!   and charges a pop that overtakes a smaller rank still waiting: if
//!   rank `r` departs while some rank `m < r` is queued, that dequeue is
//!   an **inversion**, its shortfall `r − m` (against the smallest
//!   waiting rank) adds to **unpifoness** (Σ rank displacement, the
//!   SP-PIFO paper's quality metric), and the largest single shortfall
//!   is the **max rank regression**. An exact PIFO always pops the
//!   minimum waiting rank, so every exact backend scores all-zeros on
//!   *every* schedule — including interleaved push/pop churn — by
//!   construction.
//! * Offline trace scoring — replay the *same* push/pop schedule
//!   ([`TraceOp`]) through the exact sorted oracle
//!   ([`oracle_pop_ranks`]) or any backend ([`replay_backend`],
//!   [`replay_with_stats`]) and diff the pop sequences positionally
//!   ([`score_against_oracle`]). An exact backend scores all-zeros by
//!   construction; an approximate one gets a measured,
//!   regression-gateable distance from ideal.
//! * [`count_pairwise_inversions`] — the classic inversion count (pairs
//!   popped out of rank order) in O(n log n) merge-sort time,
//!   cross-checked against an O(n²) brute force by the property suite.
//!
//! The tracker metrics and the pairwise count answer different
//! questions: the tracker charges each *pop* once (how far did this
//! departure overtake the queue's smallest waiting rank?), the pairwise
//! count charges each *pair* of a drain sequence (how shuffled is the
//! whole sequence?). On a fill-then-drain schedule both are zero exactly
//! when the pop trace is non-decreasing.

use crate::pifo::{PifoBackend, PifoQueue};
use crate::rank::Rank;
use std::collections::BTreeMap;

/// Counters accumulated by an [`InversionTracker`] (or computed offline
/// by [`inversion_stats_of`] / [`replay_with_stats`]). All-zero for any
/// exact backend on any schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InversionStats {
    /// Ranks scored (dequeues observed).
    pub dequeues: u64,
    /// Dequeues that overtook a strictly smaller rank still waiting in
    /// the queue.
    pub inversions: u64,
    /// Σ over inverted dequeues of (popped rank − smallest waiting
    /// rank): total rank displacement, the SP-PIFO paper's "unpifoness".
    pub unpifoness: u128,
    /// Largest single (popped rank − smallest waiting rank) shortfall.
    pub max_regression: u64,
}

impl InversionStats {
    /// Mean rank displacement per dequeue (0.0 when nothing was scored).
    pub fn mean_displacement(&self) -> f64 {
        if self.dequeues == 0 {
            0.0
        } else {
            self.unpifoness as f64 / self.dequeues as f64
        }
    }

    /// Fold another port's / tree's counters into this one (fabric-level
    /// totals; `max_regression` takes the max).
    pub fn merge(&mut self, other: &InversionStats) {
        self.dequeues += other.dequeues;
        self.inversions += other.inversions;
        self.unpifoness += other.unpifoness;
        self.max_regression = self.max_regression.max(other.max_regression);
    }
}

/// Streaming inversion scorer. Feed it every rank entering the queue
/// ([`record_push`](Self::record_push)) and every rank leaving it
/// ([`record_pop`](Self::record_pop)); it keeps a multiset of the ranks
/// currently waiting and charges each pop that overtakes a smaller one.
/// O(log n) per recorded rank (a `BTreeMap` keyed by distinct rank
/// value), memory bounded by the queue's live occupancy.
///
/// Ranks popped without a matching recorded push (tracking switched on
/// over a non-empty queue) are counted as dequeues but not scored — the
/// tracker has no ground truth for them.
///
/// ```
/// use pifo_core::metrics::InversionTracker;
/// use pifo_core::rank::Rank;
///
/// let mut t = InversionTracker::new();
/// for r in [3u64, 7, 5] {
///     t.record_push(Rank(r));
/// }
/// t.record_pop(Rank(7)); // overtakes 3 and 5: shortfall 7 − 3
/// t.record_pop(Rank(3)); // the smallest waiting rank: exact
/// let s = t.stats();
/// assert_eq!(s.dequeues, 2);
/// assert_eq!(s.inversions, 1);
/// assert_eq!(s.unpifoness, (7 - 3) as u128);
/// assert_eq!(s.max_regression, 7 - 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InversionTracker {
    /// Multiset of ranks currently waiting: rank value → live count.
    present: BTreeMap<u64, u64>,
    stats: InversionStats,
}

impl InversionTracker {
    /// A fresh tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a rank entering the queue.
    #[inline]
    pub fn record_push(&mut self, rank: Rank) {
        *self.present.entry(rank.value()).or_insert(0) += 1;
    }

    /// Observe a rank leaving the queue and score it against the
    /// smallest rank still waiting.
    #[inline]
    pub fn record_pop(&mut self, rank: Rank) {
        self.stats.dequeues += 1;
        let r = rank.value();
        if !self.present.contains_key(&r) {
            return; // untracked push (tracking enabled mid-stream)
        }
        let (&min, _) = self.present.first_key_value().expect("just found r");
        if r > min {
            let shortfall = r - min;
            self.stats.inversions += 1;
            self.stats.unpifoness += shortfall as u128;
            self.stats.max_regression = self.stats.max_regression.max(shortfall);
        }
        match self.present.get_mut(&r) {
            Some(c) if *c > 1 => *c -= 1,
            _ => {
                self.present.remove(&r);
            }
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> InversionStats {
        self.stats
    }

    /// Zero every counter. The multiset of waiting ranks is kept — the
    /// queue's contents did not change, only the scoring window resets.
    pub fn reset(&mut self) {
        self.stats = InversionStats::default();
    }
}

/// Score a complete *drain* in one call: as if every rank in `ranks`
/// were pushed first and then popped in the given order. Equal to what
/// an [`InversionTracker`] reports for a fill-then-drain schedule; for
/// interleaved schedules use [`replay_with_stats`] instead.
pub fn inversion_stats_of(ranks: &[Rank]) -> InversionStats {
    let mut t = InversionTracker::new();
    for &r in ranks {
        t.record_push(r);
    }
    for &r in ranks {
        t.record_pop(r);
    }
    t.stats()
}

/// Count pairs `(i, j)` with `i < j` but `ranks[i] > ranks[j]` — the
/// classic inversion number — in O(n log n) by merge sort. Equal ranks
/// are *not* inversions (FIFO ties are legal PIFO behaviour).
pub fn count_pairwise_inversions(ranks: &[Rank]) -> u64 {
    fn sort_count(v: &mut [u64], scratch: &mut Vec<u64>) -> u64 {
        let n = v.len();
        if n < 2 {
            return 0;
        }
        let mid = n / 2;
        let (left, right) = v.split_at_mut(mid);
        let mut inv = sort_count(left, scratch) + sort_count(right, scratch);
        scratch.clear();
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                scratch.push(left[i]);
                i += 1;
            } else {
                // left[i..] are all > right[j]: each is an inversion.
                inv += (left.len() - i) as u64;
                scratch.push(right[j]);
                j += 1;
            }
        }
        scratch.extend_from_slice(&left[i..]);
        scratch.extend_from_slice(&right[j..]);
        v.copy_from_slice(scratch);
        inv
    }
    let mut vals: Vec<u64> = ranks.iter().map(|r| r.value()).collect();
    let mut scratch = Vec::with_capacity(vals.len());
    sort_count(&mut vals, &mut scratch)
}

/// One step of a replayable queue schedule: what was *offered* to the
/// queue and when it was drained. The same trace drives the oracle and
/// the backend under test, so their pop sequences are directly
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Offer an element with this rank (`try_push`; the queue may
    /// refuse it).
    Push(Rank),
    /// Dequeue once (a pop on an empty queue is a no-op).
    Pop,
}

/// Replay `trace` through an **unbounded exact** PIFO (the sorted
/// reference) and return the rank of every pop — the ideal schedule the
/// paper's hardware would produce for this arrival/service pattern.
pub fn oracle_pop_ranks(trace: &[TraceOp]) -> Vec<Rank> {
    replay_backend(PifoBackend::SortedArray, None, trace)
}

/// Replay `trace` through a queue of `backend` (bounded to `capacity`
/// when given) and return the rank of every pop. Offered pushes the
/// queue refuses are dropped silently — exactly what a switch does with
/// a [`PifoFull`](crate::pifo::PifoFull) reject.
pub fn replay_backend(
    backend: PifoBackend,
    capacity: Option<usize>,
    trace: &[TraceOp],
) -> Vec<Rank> {
    replay_with_stats(backend, capacity, trace).0
}

/// Replay `trace` through a queue of `backend` with an
/// [`InversionTracker`] attached: every *admitted* push and every pop is
/// recorded, so the returned [`InversionStats`] are the queue-relative
/// inversion metrics for this schedule (all-zero for exact backends).
/// Also returns the pop-rank sequence, like [`replay_backend`].
pub fn replay_with_stats(
    backend: PifoBackend,
    capacity: Option<usize>,
    trace: &[TraceOp],
) -> (Vec<Rank>, InversionStats) {
    let mut q = match capacity {
        Some(cap) => backend.make_enum_bounded::<()>(cap),
        None => backend.make_enum::<()>(),
    };
    let mut tracker = InversionTracker::new();
    let mut pops = Vec::new();
    for op in trace {
        match op {
            TraceOp::Push(rank) => {
                if q.try_push(*rank, ()).is_ok() {
                    tracker.record_push(*rank);
                }
            }
            TraceOp::Pop => {
                if let Some((r, ())) = q.pop() {
                    tracker.record_pop(r);
                    pops.push(r);
                }
            }
        }
    }
    (pops, tracker.stats())
}

/// Positional diff of a backend's pop trace against the oracle's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleScore {
    /// Positions compared (min of the two trace lengths).
    pub compared: u64,
    /// Positions where the backend popped a different rank than the
    /// oracle.
    pub displaced: u64,
    /// Σ |backend rank − oracle rank| over compared positions.
    pub total_displacement: u128,
    /// Largest single |backend rank − oracle rank|.
    pub max_displacement: u64,
    /// Pops one trace has beyond the other (admission-gate drops make
    /// an approximate trace shorter than the oracle's).
    pub missing: u64,
}

impl OracleScore {
    /// True when the backend reproduced the oracle schedule exactly.
    pub fn is_exact(&self) -> bool {
        self.displaced == 0 && self.missing == 0
    }
}

/// Compare a backend's pop ranks against the oracle's, position by
/// position. Zero everywhere iff the backend reproduced the ideal
/// schedule (exact backends on a never-rejecting trace always do).
pub fn score_against_oracle(actual: &[Rank], oracle: &[Rank]) -> OracleScore {
    let compared = actual.len().min(oracle.len());
    let mut score = OracleScore {
        compared: compared as u64,
        missing: actual.len().abs_diff(oracle.len()) as u64,
        ..OracleScore::default()
    };
    for (a, o) in actual.iter().zip(oracle) {
        let d = a.value().abs_diff(o.value());
        if a != o {
            score.displaced += 1;
        }
        score.total_displacement += d as u128;
        score.max_displacement = score.max_displacement.max(d);
    }
    score
}

/// Replay `trace` through `backend` and diff it against the unbounded
/// sorted oracle in one call; returns the backend's pop ranks alongside
/// the score so callers can also run tracker metrics on them.
pub fn score_backend_on_trace(
    backend: PifoBackend,
    capacity: Option<usize>,
    trace: &[TraceOp],
) -> (Vec<Rank>, OracleScore) {
    let actual = replay_backend(backend, capacity, trace);
    let oracle = oracle_pop_ranks(trace);
    let score = score_against_oracle(&actual, &oracle);
    (actual, score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_scores_drain_against_waiting_min() {
        // Drain order 1,5,3,5,0 with 0 waiting throughout: every pop
        // before the 0 overtakes it.
        let s = inversion_stats_of(&[Rank(1), Rank(5), Rank(3), Rank(5), Rank(0)]);
        assert_eq!(s.dequeues, 5);
        assert_eq!(s.inversions, 4, "only the final 0 pops exactly");
        assert_eq!(s.unpifoness, 1 + 5 + 3 + 5);
        assert_eq!(s.max_regression, 5);
        assert!((s.mean_displacement() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn exact_backends_score_zero_even_under_churn() {
        // Interleaved push/pop: the pop trace is *not* globally sorted
        // (10 departs before the later-arriving 5), yet an exact PIFO
        // commits no inversion — nothing smaller was waiting.
        use TraceOp::{Pop, Push};
        let trace = [Push(Rank(10)), Pop, Push(Rank(5)), Pop];
        for backend in PifoBackend::EXACT {
            let (pops, stats) = replay_with_stats(backend, None, &trace);
            assert_eq!(pops, vec![Rank(10), Rank(5)]);
            assert_eq!(stats.dequeues, 2, "{backend}");
            assert_eq!(stats.inversions, 0, "{backend}");
            assert_eq!(stats.unpifoness, 0, "{backend}");
        }
        // A FIFO on the reverse interleaving *does* invert: 9 departs
        // while 1 waits.
        let trace = [Push(Rank(9)), Push(Rank(1)), Pop, Pop];
        let (_, stats) = replay_with_stats(PifoBackend::Rifo, None, &trace);
        assert_eq!(stats.inversions, 1);
        assert_eq!(stats.unpifoness, 8);
        assert_eq!(stats.max_regression, 8);
    }

    #[test]
    fn sorted_trace_scores_zero() {
        let s = inversion_stats_of(&[Rank(1), Rank(1), Rank(2), Rank(9)]);
        assert_eq!(
            s,
            InversionStats {
                dequeues: 4,
                ..InversionStats::default()
            }
        );
        assert_eq!(
            count_pairwise_inversions(&[Rank(1), Rank(1), Rank(2), Rank(9)]),
            0
        );
    }

    #[test]
    fn pairwise_matches_hand_count() {
        // 3>1, 3>2, 4>2 — and the equal pair (3,3) is not an inversion.
        let ranks = [Rank(3), Rank(1), Rank(3), Rank(4), Rank(2)];
        assert_eq!(count_pairwise_inversions(&ranks), 4);
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = inversion_stats_of(&[Rank(5), Rank(1)]);
        let b = inversion_stats_of(&[Rank(9), Rank(0), Rank(10)]);
        a.merge(&b);
        assert_eq!(a.dequeues, 5);
        assert_eq!(a.inversions, 2);
        assert_eq!(a.unpifoness, 4 + 9);
        assert_eq!(a.max_regression, 9);
    }

    #[test]
    fn oracle_replay_sorts_within_occupancy() {
        use TraceOp::{Pop, Push};
        let trace = [
            Push(Rank(5)),
            Push(Rank(2)),
            Pop,
            Push(Rank(1)),
            Pop,
            Pop,
            Pop, // empty-queue pop is a no-op
        ];
        assert_eq!(oracle_pop_ranks(&trace), vec![Rank(2), Rank(1), Rank(5)]);
    }

    #[test]
    fn exact_backend_scores_exact_on_trace() {
        use TraceOp::{Pop, Push};
        let trace: Vec<TraceOp> = (0..50u64)
            .flat_map(|i| [Push(Rank(997 * i % 131)), Pop])
            .collect();
        for backend in PifoBackend::EXACT {
            let (_, score) = score_backend_on_trace(backend, None, &trace);
            assert!(score.is_exact(), "{backend} diverged from oracle");
        }
    }

    #[test]
    fn fifo_scores_nonzero_on_reversed_ranks() {
        use TraceOp::{Pop, Push};
        let mut trace: Vec<TraceOp> = (0..10u64).rev().map(|r| Push(Rank(r))).collect();
        trace.extend([Pop; 10]);
        let (pops, score) = score_backend_on_trace(PifoBackend::SpPifo { queues: 1 }, None, &trace);
        assert_eq!(pops.len(), 10);
        assert!(score.displaced > 0);
        let s = inversion_stats_of(&pops);
        assert_eq!(s.inversions, 9, "strictly decreasing FIFO trace");
        assert_eq!(count_pairwise_inversions(&pops), 45);
    }
}
