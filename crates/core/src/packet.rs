//! The packet model.
//!
//! Scheduling transactions read packet fields (`p.length`, `p.slack`, ...)
//! to compute ranks. We model a packet as a small plain struct carrying the
//! fields used by every algorithm in the paper (§2–§3). Payload bytes are
//! never materialised — the scheduler only ever sees headers/metadata,
//! exactly like the switch scheduler sits behind the parser.

use crate::time::Nanos;
use core::fmt;

/// Globally unique packet identifier (assigned by the traffic source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

/// A flow identifier.
///
/// The paper uses "flow" generically: "a set of packets with a common
/// attribute" (§2.1, footnote 2). At interior tree nodes the "flow" is a
/// child class rather than a 5-tuple; see [`crate::tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A packet as seen by the scheduler: identity plus the header fields that
/// the paper's scheduling transactions consume.
///
/// Fields not used by a given algorithm are simply ignored by its
/// transaction; they default to zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (for tracing and tests).
    pub id: PacketId,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Packet length in bytes, headers included.
    pub length: u32,
    /// Wall-clock arrival time at the current switch.
    pub arrival: Nanos,
    /// Class-of-service / IP TOS style priority class (strict priority, CBQ).
    pub class: u8,
    /// LSTF slack in nanoseconds: time remaining until the deadline,
    /// initialised at the end host and decremented by queueing wait at each
    /// switch (§3.1). Stored as `i64` because slack can be driven negative
    /// by congestion.
    pub slack: i64,
    /// Absolute deadline (EDF).
    pub deadline: Nanos,
    /// Total flow size in bytes (Shortest Job First).
    pub flow_size: u64,
    /// Remaining flow bytes including this packet (SRPT).
    pub remaining: u64,
    /// Attained service: bytes of this flow already served (LAS).
    pub attained: u64,
    /// Sequence number of this packet within its flow (0-based); used to
    /// check in-flow ordering invariants.
    pub seq_in_flow: u64,
}

impl Packet {
    /// Create a packet with the required fields; everything else zeroed.
    pub fn new(id: u64, flow: FlowId, length: u32, arrival: Nanos) -> Packet {
        Packet {
            id: PacketId(id),
            flow,
            length,
            arrival,
            class: 0,
            slack: 0,
            deadline: Nanos::ZERO,
            flow_size: 0,
            remaining: 0,
            attained: 0,
            seq_in_flow: 0,
        }
    }

    /// Builder-style: set the priority class.
    pub fn with_class(mut self, class: u8) -> Packet {
        self.class = class;
        self
    }

    /// Builder-style: set the LSTF slack.
    pub fn with_slack(mut self, slack: i64) -> Packet {
        self.slack = slack;
        self
    }

    /// Builder-style: set the EDF deadline.
    pub fn with_deadline(mut self, deadline: Nanos) -> Packet {
        self.deadline = deadline;
        self
    }

    /// Builder-style: set total flow size (SJF).
    pub fn with_flow_size(mut self, flow_size: u64) -> Packet {
        self.flow_size = flow_size;
        self
    }

    /// Builder-style: set remaining flow bytes (SRPT).
    pub fn with_remaining(mut self, remaining: u64) -> Packet {
        self.remaining = remaining;
        self
    }

    /// Builder-style: set attained service (LAS).
    pub fn with_attained(mut self, attained: u64) -> Packet {
        self.attained = attained;
        self
    }

    /// Builder-style: set the in-flow sequence number.
    pub fn with_seq_in_flow(mut self, seq: u64) -> Packet {
        self.seq_in_flow = seq;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_optional_fields() {
        let p = Packet::new(1, FlowId(7), 1500, Nanos(10));
        assert_eq!(p.id, PacketId(1));
        assert_eq!(p.flow, FlowId(7));
        assert_eq!(p.length, 1500);
        assert_eq!(p.arrival, Nanos(10));
        assert_eq!(p.class, 0);
        assert_eq!(p.slack, 0);
        assert_eq!(p.deadline, Nanos::ZERO);
        assert_eq!(p.flow_size, 0);
        assert_eq!(p.remaining, 0);
        assert_eq!(p.attained, 0);
        assert_eq!(p.seq_in_flow, 0);
    }

    #[test]
    fn builder_chain_sets_fields() {
        let p = Packet::new(2, FlowId(1), 64, Nanos::ZERO)
            .with_class(3)
            .with_slack(-25)
            .with_deadline(Nanos(99))
            .with_flow_size(10_000)
            .with_remaining(4_000)
            .with_attained(6_000)
            .with_seq_in_flow(42);
        assert_eq!(p.class, 3);
        assert_eq!(p.slack, -25);
        assert_eq!(p.deadline, Nanos(99));
        assert_eq!(p.flow_size, 10_000);
        assert_eq!(p.remaining, 4_000);
        assert_eq!(p.attained, 6_000);
        assert_eq!(p.seq_in_flow, 42);
    }

    #[test]
    fn display_ids() {
        assert_eq!(format!("{}", FlowId(3)), "f3");
        assert_eq!(format!("{}", PacketId(9)), "p9");
    }
}
