//! The shared packet-buffer slab (§4).
//!
//! The paper's hardware never moves packets through the PIFO mesh: a
//! packet is written **once** into a shared buffer, and every PIFO holds
//! only a small `(rank, pointer, metadata)` entry (§4, Fig 6). This module
//! is the software analogue: [`PacketBuffer`] owns every buffered
//! [`Packet`], and the scheduling tree circulates 4-byte [`PktHandle`]s
//! through its PIFOs instead of ~100-byte packet clones.
//!
//! Slots are reference-counted (a packet can be held by its leaf PIFO
//! element *and* by one parked shaping entry that needs its header fields
//! at release time); a slot returns to the free list when its last
//! reference is dropped, so the enqueue→dequeue round trip is
//! allocation-free once the slab has grown to the working-set size.

use crate::packet::Packet;
use core::fmt;

/// A 4-byte ticket naming one occupied slot of a [`PacketBuffer`].
///
/// Handles are only meaningful to the buffer that issued them and only
/// until the slot's last reference is released; the scheduling tree keeps
/// this discipline internally and never exposes a dangling handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PktHandle(u32);

impl PktHandle {
    /// Raw slot index (for diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Mint a handle from a raw slot index — only the slab implementations
    /// in this crate ([`PacketBuffer`] and the atomic
    /// [`SharedPacketPool`](crate::pool::SharedPacketPool)) may do this.
    pub(crate) fn from_raw(idx: u32) -> PktHandle {
        PktHandle(idx)
    }
}

impl fmt::Display for PktHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Sentinel terminating the free list.
const FREE_END: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Slot {
    Occupied { packet: Packet, refs: u32 },
    Free { next: u32 },
}

/// A bounded slab of packets with an intrusive free list: O(1) insert,
/// access, retain and release; no per-packet allocation after warm-up.
///
/// The capacity models the shared packet buffer of §5.1 (60 K packets on
/// the reference switch): [`try_insert`](Self::try_insert) hands the
/// caller's packet back — unmoved and unclonable from the outside — when
/// the buffer is exhausted.
///
/// ```
/// use pifo_core::buffer::PacketBuffer;
/// use pifo_core::packet::{FlowId, Packet};
/// use pifo_core::time::Nanos;
///
/// let mut buf = PacketBuffer::with_capacity(2);
/// let a = buf.try_insert(Packet::new(0, FlowId(1), 1500, Nanos(0))).unwrap();
/// let b = buf.try_insert(Packet::new(1, FlowId(2), 64, Nanos(1))).unwrap();
/// assert_eq!(buf.get(a).length, 1500);
///
/// // At capacity: the rejected packet comes back unchanged, by move.
/// let back = buf.try_insert(Packet::new(2, FlowId(3), 100, Nanos(2))).unwrap_err();
/// assert_eq!(back.id.0, 2);
///
/// // The last release moves the packet out of its slot — zero-copy.
/// let gone = buf.release(b).expect("sole reference");
/// assert_eq!(gone.id.0, 1);
/// assert_eq!(buf.live(), 1);
/// # buf.release(a);
/// # buf.assert_coherent();
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuffer {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
    capacity: Option<usize>,
}

impl Default for PacketBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuffer {
    /// An unbounded buffer (grows on demand, reuses freed slots first).
    pub fn new() -> Self {
        PacketBuffer {
            slots: Vec::new(),
            free_head: FREE_END,
            live: 0,
            capacity: None,
        }
    }

    /// A buffer that rejects inserts beyond `capacity` live packets.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketBuffer {
            slots: Vec::new(),
            free_head: FREE_END,
            live: 0,
            capacity: Some(capacity),
        }
    }

    /// Pre-grow the slot vector so the next `additional` inserts trigger
    /// at most one allocation. Used by the scheduling tree's batched
    /// enqueue to amortize slab growth across a whole arrival batch; a
    /// no-op once the working set has warmed up (freed slots are always
    /// reused first).
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Insert `packet` with one reference, returning its handle — or the
    /// packet itself, unchanged, when the buffer is at capacity.
    pub fn try_insert(&mut self, packet: Packet) -> Result<PktHandle, Packet> {
        if let Some(cap) = self.capacity {
            if self.live >= cap {
                return Err(packet);
            }
        }
        let handle = if self.free_head != FREE_END {
            let idx = self.free_head;
            let Slot::Free { next } = self.slots[idx as usize] else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next;
            self.slots[idx as usize] = Slot::Occupied { packet, refs: 1 };
            PktHandle(idx)
        } else {
            // Slots are indexed by u32 handles; a slab this large would
            // hold 4 G packets, far past any modelled switch buffer.
            let idx = u32::try_from(self.slots.len()).expect("packet buffer exceeds u32 slots");
            assert!(idx != FREE_END, "packet buffer exceeds u32 slots");
            self.slots.push(Slot::Occupied { packet, refs: 1 });
            PktHandle(idx)
        };
        self.live += 1;
        Ok(handle)
    }

    /// Borrow the packet in `handle`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free (a stale handle — a bug in the caller's
    /// reference discipline, not recoverable).
    pub fn get(&self, handle: PktHandle) -> &Packet {
        match &self.slots[handle.index()] {
            Slot::Occupied { packet, .. } => packet,
            Slot::Free { .. } => panic!("stale packet handle {handle}"),
        }
    }

    /// Add one reference to `handle`'s slot (e.g. a shaping entry parking
    /// alongside the leaf PIFO element).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn retain(&mut self, handle: PktHandle) {
        match &mut self.slots[handle.index()] {
            Slot::Occupied { refs, .. } => *refs += 1,
            Slot::Free { .. } => panic!("retain of stale packet handle {handle}"),
        }
    }

    /// Drop one reference to `handle`'s slot. When it was the last, the
    /// slot is freed and the packet is **moved out** (zero-copy) and
    /// returned; otherwise `None` (the packet stays for the remaining
    /// holder).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn release(&mut self, handle: PktHandle) -> Option<Packet> {
        let idx = handle.index();
        match &mut self.slots[idx] {
            Slot::Occupied { refs, .. } if *refs > 1 => {
                *refs -= 1;
                None
            }
            Slot::Occupied { .. } => {
                let old = std::mem::replace(
                    &mut self.slots[idx],
                    Slot::Free {
                        next: self.free_head,
                    },
                );
                self.free_head = handle.0;
                self.live -= 1;
                let Slot::Occupied { packet, .. } = old else {
                    unreachable!("matched occupied above");
                };
                Some(packet)
            }
            Slot::Free { .. } => panic!("release of stale packet handle {handle}"),
        }
    }

    /// Number of references currently held on `handle`'s slot (0 for a
    /// free slot). For tests and diagnostics.
    pub fn ref_count(&self, handle: PktHandle) -> usize {
        match &self.slots[handle.index()] {
            Slot::Occupied { refs, .. } => *refs as usize,
            Slot::Free { .. } => 0,
        }
    }

    /// Packets currently resident (occupied slots).
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when no packet is resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live-packet limit, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Total slots ever allocated (high-water mark of the working set).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Check internal coherence: the free list visits exactly the free
    /// slots, every slot is reachable exactly once, and `live` matches the
    /// occupied count. Used by the leak-check property tests; O(slots).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found.
    pub fn assert_coherent(&self) {
        let occupied = self
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Occupied { .. }))
            .count();
        assert_eq!(self.live, occupied, "live counter diverged from slots");
        let mut seen = vec![false; self.slots.len()];
        let mut cursor = self.free_head;
        let mut free_len = 0usize;
        while cursor != FREE_END {
            let idx = cursor as usize;
            assert!(idx < self.slots.len(), "free list points out of range");
            assert!(!seen[idx], "free list cycles through slot {idx}");
            seen[idx] = true;
            free_len += 1;
            match &self.slots[idx] {
                Slot::Free { next } => cursor = *next,
                Slot::Occupied { .. } => panic!("free list visits occupied slot {idx}"),
            }
        }
        assert_eq!(
            free_len + occupied,
            self.slots.len(),
            "free list misses some free slots"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::time::Nanos;

    fn pkt(id: u64) -> Packet {
        Packet::new(id, FlowId(0), 100, Nanos(id))
    }

    #[test]
    fn insert_get_release_round_trip() {
        let mut b = PacketBuffer::new();
        let h = b.try_insert(pkt(7)).unwrap();
        assert_eq!(b.get(h).id.0, 7);
        assert_eq!(b.live(), 1);
        let p = b.release(h).expect("last reference moves the packet out");
        assert_eq!(p.id.0, 7);
        assert!(b.is_empty());
        b.assert_coherent();
    }

    #[test]
    fn slots_are_reused_after_release() {
        let mut b = PacketBuffer::new();
        let h0 = b.try_insert(pkt(0)).unwrap();
        let _h1 = b.try_insert(pkt(1)).unwrap();
        b.release(h0);
        let h2 = b.try_insert(pkt(2)).unwrap();
        assert_eq!(h2.index(), h0.index(), "freed slot is reused first");
        assert_eq!(b.slot_count(), 2, "no growth while free slots exist");
        b.assert_coherent();
    }

    #[test]
    fn capacity_rejects_returning_packet_unchanged() {
        let mut b = PacketBuffer::with_capacity(1);
        b.try_insert(pkt(0)).unwrap();
        let back = b.try_insert(pkt(1).with_class(3)).unwrap_err();
        assert_eq!(back.id.0, 1);
        assert_eq!(back.class, 3, "rejected packet comes back unchanged");
        assert_eq!(b.live(), 1);
    }

    #[test]
    fn retain_keeps_packet_until_last_release() {
        let mut b = PacketBuffer::new();
        let h = b.try_insert(pkt(9)).unwrap();
        b.retain(h);
        assert_eq!(b.ref_count(h), 2);
        assert!(b.release(h).is_none(), "one holder remains");
        assert_eq!(b.get(h).id.0, 9, "packet still readable");
        assert_eq!(b.live(), 1);
        let p = b.release(h).expect("now the last reference");
        assert_eq!(p.id.0, 9);
        assert_eq!(b.ref_count(h), 0);
        b.assert_coherent();
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_panics() {
        let mut b = PacketBuffer::new();
        let h = b.try_insert(pkt(0)).unwrap();
        b.release(h);
        let _ = b.get(h);
    }

    #[test]
    fn free_list_restored_after_churn() {
        let mut b = PacketBuffer::with_capacity(8);
        let mut handles = Vec::new();
        for round in 0..10u64 {
            for i in 0..8 {
                handles.push(b.try_insert(pkt(round * 8 + i)).unwrap());
            }
            assert!(b.try_insert(pkt(999)).is_err(), "at capacity");
            for h in handles.drain(..) {
                b.release(h);
            }
            assert!(b.is_empty());
            b.assert_coherent();
        }
        assert_eq!(b.slot_count(), 8, "working set never exceeds capacity");
    }
}
