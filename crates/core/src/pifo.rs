//! The push-in first-out queue (PIFO).
//!
//! A PIFO is a priority queue that allows elements to be *pushed into an
//! arbitrary location* based on the element's rank, but always *dequeues
//! from the head* (§1, §2 of the paper). Ties between equal ranks are
//! broken in enqueue order — a property the paper relies on, e.g. for
//! Stop-and-Go Queueing where all packets of a frame share one rank (§3.2).
//!
//! Two software implementations are provided behind one trait:
//!
//! * [`SortedArrayPifo`] — a flat sorted array, the direct analogue of the
//!   "naive" hardware design of §5.2 and the reference semantics for every
//!   other implementation in this workspace (including the hardware model
//!   in `pifo-hw`, which is checked against it property-wise).
//! * [`HeapPifo`] — a binary heap with explicit enqueue sequence numbers to
//!   preserve FIFO tie-breaking; the fast choice for software simulation.

use crate::rank::Rank;
use core::fmt;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Error returned by [`PifoQueue::try_push`] when the queue is at capacity.
/// Carries the rejected element back to the caller (so a switch model can
/// count and drop it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PifoFull<T> {
    /// The rank the rejected element would have had.
    pub rank: Rank,
    /// The rejected element.
    pub item: T,
}

impl<T> fmt::Display for PifoFull<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PIFO full: rejected element with rank {}", self.rank)
    }
}

/// The PIFO contract shared by every implementation.
///
/// Invariants every implementation must uphold (checked by the shared
/// property tests in this module and by `tests/` integration suites):
///
/// 1. `pop` returns elements in non-decreasing rank order **among the
///    elements present at the time of each pop** (push-in, first-out).
/// 2. Elements with equal rank pop in the order they were pushed.
/// 3. `len` is the number of pushes minus the number of successful pops.
pub trait PifoQueue<T> {
    /// Push `item` with `rank`, failing if the queue is at capacity.
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>>;

    /// Pop the head (lowest rank, earliest enqueued among ties).
    fn pop(&mut self) -> Option<(Rank, T)>;

    /// Inspect the head without removing it.
    fn peek(&self) -> Option<(Rank, &T)>;

    /// Number of buffered elements.
    fn len(&self) -> usize;

    /// Capacity limit, if any.
    fn capacity(&self) -> Option<usize>;

    /// True when no element is buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push, panicking if the queue is full. Use in contexts where the
    /// caller has already checked admission (e.g. the scheduling tree after
    /// its buffer-accounting gate).
    fn push(&mut self, rank: Rank, item: T) {
        if self.try_push(rank, item).is_err() {
            panic!("push into full PIFO (capacity {:?})", self.capacity());
        }
    }
}

// ---------------------------------------------------------------------------
// SortedArrayPifo
// ---------------------------------------------------------------------------

/// Reference PIFO: a flat array kept sorted by `(rank, enqueue sequence)`.
///
/// `push` binary-searches for the insertion point *after* all equal ranks
/// (FIFO tie-break) and shifts; `pop` takes from the front. This mirrors
/// the naive hardware organisation of §5.2 ("an incoming element is
/// compared against all elements in parallel … then inserted by shifting
/// the array") and is the semantic reference for all other PIFOs.
#[derive(Debug, Clone)]
pub struct SortedArrayPifo<T> {
    items: VecDeque<(Rank, u64, T)>,
    seq: u64,
    capacity: Option<usize>,
}

impl<T> Default for SortedArrayPifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SortedArrayPifo<T> {
    /// An unbounded PIFO.
    pub fn new() -> Self {
        SortedArrayPifo {
            items: VecDeque::new(),
            seq: 0,
            capacity: None,
        }
    }

    /// A PIFO that rejects pushes beyond `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        SortedArrayPifo {
            items: VecDeque::with_capacity(capacity),
            seq: 0,
            capacity: Some(capacity),
        }
    }

    /// Iterate over `(rank, item)` in dequeue order without removing.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &T)> {
        self.items.iter().map(|(r, _, t)| (*r, t))
    }

    /// Remove and return the first element matching `pred` (head-most).
    ///
    /// This is not a PIFO primitive — it exists for the hardware model's
    /// logical-PIFO sharing, where a pop targets "the first element with a
    /// given logical PIFO ID" (§5.2), and for PFC masking (§6.2).
    pub fn pop_first_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<(Rank, T)> {
        let idx = self.items.iter().position(|(_, _, t)| pred(t))?;
        self.items.remove(idx).map(|(r, _, t)| (r, t))
    }

    /// Peek the first element matching `pred` (head-most).
    pub fn peek_first_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.items
            .iter()
            .find(|(_, _, t)| pred(t))
            .map(|(r, _, t)| (*r, t))
    }
}

impl<T> PifoQueue<T> for SortedArrayPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                return Err(PifoFull { rank, item });
            }
        }
        // First index whose rank exceeds the new rank: equal ranks stay
        // ahead of us (FIFO tie-break).
        let idx = self.items.partition_point(|(r, _, _)| *r <= rank);
        self.items.insert(idx, (rank, self.seq, item));
        self.seq += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.items.pop_front().map(|(r, _, t)| (r, t))
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.items.front().map(|(r, _, t)| (*r, t))
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

// ---------------------------------------------------------------------------
// HeapPifo
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HeapEntry<T> {
    rank: Rank,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (rank, seq) is
        // at the top. seq breaks ties FIFO.
        (other.rank, other.seq).cmp(&(self.rank, self.seq))
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Binary-heap PIFO with stable FIFO tie-breaking: `O(log n)` push/pop.
///
/// Functionally identical to [`SortedArrayPifo`]; preferred for software
/// simulation at Trident scale (60 K elements).
#[derive(Debug, Clone)]
pub struct HeapPifo<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
    capacity: Option<usize>,
}

impl<T> Default for HeapPifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapPifo<T> {
    /// An unbounded PIFO.
    pub fn new() -> Self {
        HeapPifo {
            heap: BinaryHeap::new(),
            seq: 0,
            capacity: None,
        }
    }

    /// A PIFO that rejects pushes beyond `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapPifo {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            capacity: Some(capacity),
        }
    }
}

impl<T> PifoQueue<T> for HeapPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.heap.len() >= cap {
                return Err(PifoFull { rank, item });
            }
        }
        self.heap.push(HeapEntry {
            rank,
            seq: self.seq,
            item,
        });
        self.seq += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.heap.pop().map(|e| (e.rank, e.item))
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.heap.peek().map(|e| (e.rank, &e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T, Q: PifoQueue<T>>(q: &mut Q) -> Vec<(Rank, T)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    fn basic_order<Q: PifoQueue<&'static str>>(mut q: Q) {
        q.push(Rank(30), "c");
        q.push(Rank(10), "a");
        q.push(Rank(20), "b");
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn sorted_array_orders_by_rank() {
        basic_order(SortedArrayPifo::new());
    }

    #[test]
    fn heap_orders_by_rank() {
        basic_order(HeapPifo::new());
    }

    fn fifo_tie_break<Q: PifoQueue<u32>>(mut q: Q) {
        q.push(Rank(5), 1);
        q.push(Rank(5), 2);
        q.push(Rank(1), 0);
        q.push(Rank(5), 3);
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sorted_array_fifo_ties() {
        fifo_tie_break(SortedArrayPifo::new());
    }

    #[test]
    fn heap_fifo_ties() {
        fifo_tie_break(HeapPifo::new());
    }

    #[test]
    fn push_in_reorders_pending() {
        // The defining PIFO behaviour: a later push with a smaller rank
        // overtakes earlier pushes still in the queue.
        let mut q = SortedArrayPifo::new();
        q.push(Rank(100), "slow");
        q.push(Rank(1), "urgent");
        assert_eq!(q.pop().unwrap().1, "urgent");
        assert_eq!(q.pop().unwrap().1, "slow");
    }

    #[test]
    fn capacity_rejects_and_returns_item() {
        let mut q = SortedArrayPifo::with_capacity(2);
        assert!(q.try_push(Rank(1), 'a').is_ok());
        assert!(q.try_push(Rank(2), 'b').is_ok());
        let err = q.try_push(Rank(0), 'c').unwrap_err();
        assert_eq!(err.item, 'c');
        assert_eq!(err.rank, Rank(0));
        assert_eq!(q.len(), 2);
        // After a pop there is room again.
        q.pop();
        assert!(q.try_push(Rank(0), 'c').is_ok());
    }

    #[test]
    fn heap_capacity_rejects() {
        let mut q = HeapPifo::with_capacity(1);
        assert!(q.try_push(Rank(1), 1).is_ok());
        assert!(q.try_push(Rank(1), 2).is_err());
        assert_eq!(q.capacity(), Some(1));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = HeapPifo::new();
        q.push(Rank(2), "x");
        q.push(Rank(1), "y");
        assert_eq!(q.peek(), Some((Rank(1), &"y")));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Rank(1), "y")));
    }

    #[test]
    fn empty_pops_none() {
        let mut q: SortedArrayPifo<u8> = SortedArrayPifo::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn pop_first_matching_respects_head_order() {
        let mut q = SortedArrayPifo::new();
        q.push(Rank(1), ("a", 1));
        q.push(Rank(2), ("b", 2));
        q.push(Rank(3), ("a", 3));
        // First "a" by dequeue order is the rank-1 one.
        let (r, (tag, v)) = q.pop_first_matching(|(t, _)| *t == "a").unwrap();
        assert_eq!((r, tag, v), (Rank(1), "a", 1));
        // Remaining order intact.
        assert_eq!(q.pop().unwrap().1, ("b", 2));
        assert_eq!(q.pop().unwrap().1, ("a", 3));
    }

    #[test]
    fn peek_first_matching_finds_headmost() {
        let mut q = SortedArrayPifo::new();
        q.push(Rank(4), 40u32);
        q.push(Rank(2), 21u32);
        q.push(Rank(3), 31u32);
        let (r, v) = q.peek_first_matching(|v| *v % 2 == 1).unwrap();
        assert_eq!((r, *v), (Rank(2), 21));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = HeapPifo::new();
        q.push(Rank(10), 10);
        q.push(Rank(5), 5);
        assert_eq!(q.pop().unwrap().0, Rank(5));
        q.push(Rank(1), 1);
        q.push(Rank(7), 7);
        assert_eq!(q.pop().unwrap().0, Rank(1));
        assert_eq!(q.pop().unwrap().0, Rank(7));
        assert_eq!(q.pop().unwrap().0, Rank(10));
        assert!(q.pop().is_none());
    }
}
