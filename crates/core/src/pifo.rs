//! The push-in first-out queue (PIFO).
//!
//! A PIFO is a priority queue that allows elements to be *pushed into an
//! arbitrary location* based on the element's rank, but always *dequeues
//! from the head* (§1, §2 of the paper). Ties between equal ranks are
//! broken in enqueue order — a property the paper relies on, e.g. for
//! Stop-and-Go Queueing where all packets of a frame share one rank (§3.2).
//!
//! # The backend contract
//!
//! The PIFO abstraction is deliberately separated from its implementation:
//! the paper's whole point is that *one* queueing discipline supports many
//! scheduling algorithms, and symmetrically this crate lets *many* queue
//! engines implement one discipline. Two traits capture the contract:
//!
//! * [`PifoQueue`] — the core operations every scheduler needs in the hot
//!   path (`try_push`/`pop`/`peek`/`len`/`capacity`), plus the batched
//!   variants [`PifoQueue::push_batch`]/[`PifoQueue::pop_batch`] —
//!   byte-identical to their sequential expansion, with amortized
//!   implementations where an engine can exploit the batch shape (the
//!   bucket calendar drains whole buckets per bitmap step, the sorted
//!   array bulk-moves its prefix).
//! * [`PifoInspect`] — ordered inspection and targeted removal
//!   (`iter_in_order`, `peek_first_matching`, `pop_first_matching`), used
//!   by the scheduling tree's introspection, the hardware model's
//!   logical-PIFO sharing (§5.2) and PFC masking (§6.2). These may be
//!   slower than the core ops; they are not on the per-packet path.
//!
//! [`PifoEngine`] is the combination of both, and what
//! [`PifoBackend::make`] hands out as a trait object so that consumers —
//! the scheduling tree, the simulator, the benches — never name a concrete
//! queue type.
//!
//! # Choosing a backend
//!
//! | Backend | `push` | `pop` | Notes |
//! |---|---|---|---|
//! | [`SortedArrayPifo`] | O(n) | O(1) | Reference semantics; direct analogue of the naive hardware of §5.2. Best below ~1 K elements and for debugging. |
//! | [`HeapPifo`] | O(log n) | O(log n) | Binary heap with explicit sequence numbers for FIFO ties. Solid general-purpose software choice. |
//! | [`BucketPifo`] | O(1)* | O(1)* | Eiffel-style FFS bucket calendar (integer-rank buckets, two-level find-first-set bitmap, overflow heap). Fastest at Trident-scale occupancies when ranks spread across the bucket window; *amortised, degrades gracefully toward the heap when they do not. |
//! | [`SpPifo`](crate::approx::SpPifo) | O(k) | O(k) | **Approximate.** k strict-priority FIFOs with SP-PIFO push-up/push-down bound adaptation; exact between rank bands, FIFO within one. |
//! | [`Rifo`](crate::approx::Rifo) | O(1) | O(1) | **Approximate.** Single FIFO; rank-awareness only at admission (windowed min/max relative-rank gate when bounded). |
//! | [`Aifo`](crate::approx::Aifo) | O(W) | O(1) | **Approximate.** Single FIFO with windowed-quantile admission against a small sliding rank sample. |
//!
//! The first three — [`PifoBackend::EXACT`] — are **exactly** equivalent
//! observationally: same dequeue order, same FIFO tie-breaks, same
//! admission decisions, which the cross-backend differential property
//! suite in `tests/proptests.rs` enforces. `BucketPifo` is exact (not
//! approximate like Eiffel's gradient buckets) because ranks are
//! integers and each bucket keeps its few residents sorted. The last
//! three — [`PifoBackend::APPROX`] — deliberately relax the sorted-pop
//! invariant for cheaper operations; how far a run strayed from the
//! ideal schedule is measured, not guessed (see the
//! [`approx`](crate::approx) and [`metrics`](crate::metrics) modules).

use crate::rank::Rank;
use core::fmt;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::str::FromStr;

/// Error returned by [`PifoQueue::try_push`] when the queue is at capacity.
/// Carries the rejected element back to the caller (so a switch model can
/// count and drop it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PifoFull<T> {
    /// The rank the rejected element would have had.
    pub rank: Rank,
    /// The rejected element.
    pub item: T,
    /// The capacity of the queue that rejected it.
    pub capacity: usize,
}

impl<T> fmt::Display for PifoFull<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PIFO full (capacity {}): rejected element with rank {}",
            self.capacity, self.rank
        )
    }
}

/// The core PIFO contract shared by every implementation.
///
/// Invariants every implementation must uphold (checked by the shared
/// property tests in this module and by the cross-backend differential
/// suite in `tests/proptests.rs`):
///
/// 1. `pop` returns elements in non-decreasing rank order **among the
///    elements present at the time of each pop** (push-in, first-out).
/// 2. Elements with equal rank pop in the order they were pushed.
/// 3. `len` is the number of pushes minus the number of successful pops.
pub trait PifoQueue<T> {
    /// Push `item` with `rank`, failing if the queue is at capacity.
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>>;

    /// Pop the head (lowest rank, earliest enqueued among ties).
    fn pop(&mut self) -> Option<(Rank, T)>;

    /// Inspect the head without removing it.
    fn peek(&self) -> Option<(Rank, &T)>;

    /// Number of buffered elements.
    fn len(&self) -> usize;

    /// Capacity limit, if any.
    fn capacity(&self) -> Option<usize>;

    /// True when no element is buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push, panicking if the queue is full. Use in contexts where the
    /// caller has already checked admission (e.g. the scheduling tree after
    /// its buffer-accounting gate).
    fn push(&mut self, rank: Rank, item: T) {
        if self.try_push(rank, item).is_err() {
            panic!("push into full PIFO (capacity {:?})", self.capacity());
        }
    }

    /// Push a batch of `(rank, item)` pairs, returning the rejected
    /// elements (in input order) when a capacity bound is hit.
    ///
    /// **Semantics are exactly sequential**: the batch behaves as one
    /// [`try_push`](Self::try_push) per element, in input order — FIFO
    /// tie-breaks, admission decisions and the rejected elements' fields
    /// are byte-identical to the per-element path (enforced by the
    /// cross-backend differential suite). Backends may amortize internal
    /// work across the batch: [`BucketPifo`] resolves the capacity gate
    /// once for the whole batch instead of once per element.
    ///
    /// An empty batch is a no-op and returns no rejects.
    ///
    /// ```
    /// use pifo_core::prelude::*;
    ///
    /// let mut q = PifoBackend::Bucket.make_enum_bounded::<u32>(2);
    /// let rejected = q.push_batch(vec![(Rank(3), 30), (Rank(1), 10), (Rank(2), 20)]);
    /// // The first two fit; the third bounces back field-for-field.
    /// assert_eq!(rejected.len(), 1);
    /// assert_eq!((rejected[0].rank, rejected[0].item), (Rank(2), 20));
    /// assert_eq!(q.pop(), Some((Rank(1), 10)));
    /// ```
    fn push_batch(&mut self, items: Vec<(Rank, T)>) -> Vec<PifoFull<T>> {
        let mut rejected = Vec::new();
        for (rank, item) in items {
            if let Err(full) = self.try_push(rank, item) {
                rejected.push(full);
            }
        }
        rejected
    }

    /// Pop up to `max` head elements into `out` (appended in dequeue
    /// order), returning how many were popped. Stops early when the queue
    /// empties.
    ///
    /// Equivalent to `max` sequential [`pop`](Self::pop) calls; backends
    /// may amortize — [`BucketPifo`] drains whole calendar buckets with
    /// one find-first-set bitmap step per *bucket* instead of per
    /// element, [`SortedArrayPifo`] drains its sorted prefix in one
    /// `memmove`, and [`HeapPifo`] replaces sift-downs with one sort (or
    /// a select + prefix sort + heap rebuild) when the batch takes a
    /// large enough bite of the heap.
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Rank, T)>) -> usize {
        let before = out.len();
        while out.len() - before < max {
            match self.pop() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out.len() - before
    }
}

/// Ordered inspection and targeted removal, on top of [`PifoQueue`].
///
/// These operations exist for the scheduling tree's introspection
/// (`debug_pifo`), the hardware model's logical-PIFO sharing — a pop
/// targets "the first element with a given logical PIFO ID" (§5.2) — and
/// PFC masking (§6.2). They are **not** on the per-packet hot path, so
/// backends may implement them in O(n log n); the trait is object-safe so
/// the whole contract fits behind one `dyn` pointer (see [`PifoEngine`]).
pub trait PifoInspect<T>: PifoQueue<T> {
    /// Iterate over `(rank, item)` in dequeue order without removing.
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_>;

    /// Peek the first element matching `pred` (head-most in dequeue order).
    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)>;

    /// Remove and return the first element matching `pred` (head-most in
    /// dequeue order). All other elements keep their relative order.
    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)>;
}

/// The complete backend contract: core queue operations plus inspection.
///
/// Everything `ScheduleTree` and the hardware model need fits behind
/// `Box<dyn PifoEngine<T>>`; blanket-implemented for any type providing
/// both sub-traits.
pub trait PifoEngine<T>: PifoInspect<T> {}

impl<T, Q: PifoInspect<T> + ?Sized> PifoEngine<T> for Q {}

/// A heap-allocated, backend-erased PIFO — what [`PifoBackend::make`]
/// returns and what every `ScheduleTree` node stores.
pub type BoxedPifo<T> = Box<dyn PifoEngine<T>>;

// ---------------------------------------------------------------------------
// Backend selector
// ---------------------------------------------------------------------------

/// Selects which queue engine backs a PIFO (see the module docs for the
/// comparison table). Parsed from `sorted` / `heap` / `bucket` /
/// `sp-pifo[:k]` / `rifo` / `aifo` on CLIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PifoBackend {
    /// [`SortedArrayPifo`] — the O(n)-insert reference.
    #[default]
    SortedArray,
    /// [`HeapPifo`] — O(log n) binary heap.
    Heap,
    /// [`BucketPifo`] — FFS bucket calendar, O(1) amortised.
    Bucket,
    /// [`SpPifo`](crate::approx::SpPifo) — **approximate**: k
    /// strict-priority FIFOs with adaptive bounds.
    SpPifo {
        /// Number of strict-priority queues (the `k` in `sp-pifo:k`).
        queues: u8,
    },
    /// [`Rifo`](crate::approx::Rifo) — **approximate**: single FIFO with
    /// windowed min/max rank admission.
    Rifo,
    /// [`Aifo`](crate::approx::Aifo) — **approximate**: single FIFO with
    /// windowed-quantile rank admission.
    Aifo,
}

impl PifoBackend {
    /// The exact backends, in reference-first order — observationally
    /// equivalent to each other, so differential suites that compare
    /// dequeue traces *across* backends sweep this set.
    pub const EXACT: [PifoBackend; 3] = [
        PifoBackend::SortedArray,
        PifoBackend::Heap,
        PifoBackend::Bucket,
    ];

    /// The approximate backends (default parameterisations) — each
    /// relaxes the sorted-pop invariant; see [`crate::approx`].
    pub const APPROX: [PifoBackend; 3] = [
        PifoBackend::SpPifo {
            queues: crate::approx::DEFAULT_SP_PIFO_QUEUES,
        },
        PifoBackend::Rifo,
        PifoBackend::Aifo,
    ];

    /// Every backend, exact trio first (useful for bench sweeps and for
    /// properties that hold per-backend, like batch-equals-sequential).
    /// Cross-backend trace comparisons should use [`EXACT`](Self::EXACT).
    pub const ALL: [PifoBackend; 6] = [
        PifoBackend::SortedArray,
        PifoBackend::Heap,
        PifoBackend::Bucket,
        PifoBackend::SpPifo {
            queues: crate::approx::DEFAULT_SP_PIFO_QUEUES,
        },
        PifoBackend::Rifo,
        PifoBackend::Aifo,
    ];

    /// True for backends that honour the full PIFO contract (sorted
    /// pops); false for the deliberately inexact family.
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            PifoBackend::SortedArray | PifoBackend::Heap | PifoBackend::Bucket
        )
    }

    /// Short stable family name (`sorted` / `heap` / `bucket` /
    /// `sp-pifo` / `rifo` / `aifo`). Unlike [`Display`](std::fmt::Display),
    /// the label drops parameters (`SpPifo { queues: 4 }` and
    /// `{ queues: 8 }` share the `sp-pifo` label); `to_string()` is the
    /// lossless inverse of [`FromStr`].
    pub fn label(self) -> &'static str {
        match self {
            PifoBackend::SortedArray => "sorted",
            PifoBackend::Heap => "heap",
            PifoBackend::Bucket => "bucket",
            PifoBackend::SpPifo { .. } => "sp-pifo",
            PifoBackend::Rifo => "rifo",
            PifoBackend::Aifo => "aifo",
        }
    }

    /// Construct an unbounded queue of this backend.
    pub fn make<T: 'static>(self) -> BoxedPifo<T> {
        match self {
            PifoBackend::SortedArray => Box::new(SortedArrayPifo::new()),
            PifoBackend::Heap => Box::new(HeapPifo::new()),
            PifoBackend::Bucket => Box::new(BucketPifo::new()),
            PifoBackend::SpPifo { queues } => Box::new(crate::approx::SpPifo::new(queues as usize)),
            PifoBackend::Rifo => Box::new(crate::approx::Rifo::new()),
            PifoBackend::Aifo => Box::new(crate::approx::Aifo::new()),
        }
    }

    /// Construct a queue of this backend that rejects pushes beyond
    /// `capacity` elements.
    pub fn make_bounded<T: 'static>(self, capacity: usize) -> BoxedPifo<T> {
        match self {
            PifoBackend::SortedArray => Box::new(SortedArrayPifo::with_capacity(capacity)),
            PifoBackend::Heap => Box::new(HeapPifo::with_capacity(capacity)),
            PifoBackend::Bucket => Box::new(BucketPifo::with_capacity(capacity)),
            PifoBackend::SpPifo { queues } => Box::new(crate::approx::SpPifo::with_capacity(
                queues as usize,
                capacity,
            )),
            PifoBackend::Rifo => Box::new(crate::approx::Rifo::with_capacity(capacity)),
            PifoBackend::Aifo => Box::new(crate::approx::Aifo::with_capacity(capacity)),
        }
    }

    /// Construct an unbounded queue of this backend with **static**
    /// dispatch: an [`EnumPifo`] instead of a boxed trait object. Hot
    /// paths that own their queues (the scheduling tree's per-node PIFOs)
    /// use this so push/pop monomorphize; [`make`](Self::make) remains the
    /// object-safe choice for heterogeneous collections behind one
    /// pointer type.
    ///
    /// ```
    /// use pifo_core::prelude::*;
    ///
    /// let mut q = PifoBackend::Bucket.make_enum::<&str>();
    /// assert_eq!(q.backend(), PifoBackend::Bucket);
    /// q.push(Rank(20), "late");
    /// q.push(Rank(10), "early");
    /// // Batch pops reach the engine's amortized implementation.
    /// let mut out = Vec::new();
    /// assert_eq!(q.pop_batch(8, &mut out), 2);
    /// assert_eq!(out, vec![(Rank(10), "early"), (Rank(20), "late")]);
    /// ```
    pub fn make_enum<T>(self) -> EnumPifo<T> {
        match self {
            PifoBackend::SortedArray => EnumPifo::SortedArray(SortedArrayPifo::new()),
            PifoBackend::Heap => EnumPifo::Heap(HeapPifo::new()),
            PifoBackend::Bucket => EnumPifo::Bucket(BucketPifo::new()),
            PifoBackend::SpPifo { queues } => {
                EnumPifo::SpPifo(crate::approx::SpPifo::new(queues as usize))
            }
            PifoBackend::Rifo => EnumPifo::Rifo(crate::approx::Rifo::new()),
            PifoBackend::Aifo => EnumPifo::Aifo(crate::approx::Aifo::new()),
        }
    }

    /// [`make_enum`](Self::make_enum) with a capacity bound.
    pub fn make_enum_bounded<T>(self, capacity: usize) -> EnumPifo<T> {
        match self {
            PifoBackend::SortedArray => {
                EnumPifo::SortedArray(SortedArrayPifo::with_capacity(capacity))
            }
            PifoBackend::Heap => EnumPifo::Heap(HeapPifo::with_capacity(capacity)),
            PifoBackend::Bucket => EnumPifo::Bucket(BucketPifo::with_capacity(capacity)),
            PifoBackend::SpPifo { queues } => EnumPifo::SpPifo(
                crate::approx::SpPifo::with_capacity(queues as usize, capacity),
            ),
            PifoBackend::Rifo => EnumPifo::Rifo(crate::approx::Rifo::with_capacity(capacity)),
            PifoBackend::Aifo => EnumPifo::Aifo(crate::approx::Aifo::with_capacity(capacity)),
        }
    }
}

// ---------------------------------------------------------------------------
// EnumPifo — static dispatch over the three engines
// ---------------------------------------------------------------------------

/// A closed sum of the three queue engines with `match` dispatch.
///
/// Semantically identical to the corresponding [`BoxedPifo`] (both
/// delegate to the same implementations), but the compiler sees concrete
/// types through one `match`, so hot-path `push`/`pop`/`peek` inline and
/// monomorphize instead of going through a vtable. The scheduling tree
/// stores one of these per node; public APIs that need an open set of
/// engines keep using [`BoxedPifo`].
#[derive(Debug, Clone)]
pub enum EnumPifo<T> {
    /// [`SortedArrayPifo`] — the O(n)-insert reference.
    SortedArray(SortedArrayPifo<T>),
    /// [`HeapPifo`] — O(log n) binary heap.
    Heap(HeapPifo<T>),
    /// [`BucketPifo`] — FFS bucket calendar, O(1) amortised.
    Bucket(BucketPifo<T>),
    /// [`SpPifo`](crate::approx::SpPifo) — approximate k-queue SP-PIFO.
    SpPifo(crate::approx::SpPifo<T>),
    /// [`Rifo`](crate::approx::Rifo) — approximate windowed-admission FIFO.
    Rifo(crate::approx::Rifo<T>),
    /// [`Aifo`](crate::approx::Aifo) — approximate quantile-admission FIFO.
    Aifo(crate::approx::Aifo<T>),
}

/// Delegate one method to whichever engine is inhabited.
macro_rules! enum_pifo_delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            EnumPifo::SortedArray($q) => $body,
            EnumPifo::Heap($q) => $body,
            EnumPifo::Bucket($q) => $body,
            EnumPifo::SpPifo($q) => $body,
            EnumPifo::Rifo($q) => $body,
            EnumPifo::Aifo($q) => $body,
        }
    };
}

impl<T> EnumPifo<T> {
    /// The backend selector this queue was built from.
    pub fn backend(&self) -> PifoBackend {
        match self {
            EnumPifo::SortedArray(_) => PifoBackend::SortedArray,
            EnumPifo::Heap(_) => PifoBackend::Heap,
            EnumPifo::Bucket(_) => PifoBackend::Bucket,
            EnumPifo::SpPifo(q) => PifoBackend::SpPifo {
                queues: u8::try_from(q.num_queues()).unwrap_or(u8::MAX),
            },
            EnumPifo::Rifo(_) => PifoBackend::Rifo,
            EnumPifo::Aifo(_) => PifoBackend::Aifo,
        }
    }
}

impl<T> PifoQueue<T> for EnumPifo<T> {
    #[inline]
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        enum_pifo_delegate!(self, q => q.try_push(rank, item))
    }

    #[inline]
    fn pop(&mut self) -> Option<(Rank, T)> {
        enum_pifo_delegate!(self, q => q.pop())
    }

    #[inline]
    fn peek(&self) -> Option<(Rank, &T)> {
        enum_pifo_delegate!(self, q => q.peek())
    }

    #[inline]
    fn len(&self) -> usize {
        enum_pifo_delegate!(self, q => q.len())
    }

    fn capacity(&self) -> Option<usize> {
        enum_pifo_delegate!(self, q => q.capacity())
    }

    // Explicit delegation (instead of the trait defaults) so the engines'
    // amortized batch specializations are reached through the enum too.
    #[inline]
    fn push_batch(&mut self, items: Vec<(Rank, T)>) -> Vec<PifoFull<T>> {
        enum_pifo_delegate!(self, q => q.push_batch(items))
    }

    #[inline]
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Rank, T)>) -> usize {
        enum_pifo_delegate!(self, q => q.pop_batch(max, out))
    }
}

impl<T> PifoInspect<T> for EnumPifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        enum_pifo_delegate!(self, q => q.iter_in_order())
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        enum_pifo_delegate!(self, q => q.peek_first_matching(pred))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        enum_pifo_delegate!(self, q => q.pop_first_matching(pred))
    }
}

impl fmt::Display for PifoBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The parameter rides along so Display/FromStr round-trip
            // losslessly: `sp-pifo:4` parses back to 4 queues.
            PifoBackend::SpPifo { queues } => write!(f, "sp-pifo:{queues}"),
            other => f.write_str(other.label()),
        }
    }
}

/// The selector names [`FromStr`] accepts, for CLI usage strings and
/// parse errors. `sp-pifo` takes an optional `:k` queue count
/// (1–255, default 8).
pub const BACKEND_NAMES: &str = "sorted | heap | bucket | sp-pifo[:k] | rifo | aifo";

impl FromStr for PifoBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(k) = ["sp-pifo", "sp_pifo", "sppifo"].iter().find_map(|fam| {
            lower
                .strip_prefix(fam)
                .and_then(|rest| rest.strip_prefix(':').or(rest.is_empty().then_some("")))
        }) {
            let queues = if k.is_empty() {
                crate::approx::DEFAULT_SP_PIFO_QUEUES
            } else {
                k.parse::<u8>()
                    .ok()
                    .filter(|&q| q >= 1)
                    .ok_or_else(|| format!("invalid sp-pifo queue count '{k}' (expected 1-255)"))?
            };
            return Ok(PifoBackend::SpPifo { queues });
        }
        match lower.as_str() {
            "sorted" | "sorted-array" | "sorted_array" | "array" => Ok(PifoBackend::SortedArray),
            "heap" => Ok(PifoBackend::Heap),
            "bucket" | "calendar" | "ffs" => Ok(PifoBackend::Bucket),
            "rifo" => Ok(PifoBackend::Rifo),
            "aifo" => Ok(PifoBackend::Aifo),
            other => Err(format!(
                "unknown PIFO backend '{other}' (expected {BACKEND_NAMES})"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// SortedArrayPifo
// ---------------------------------------------------------------------------

/// Reference PIFO: a flat array kept sorted by `(rank, enqueue sequence)`.
///
/// `push` binary-searches for the insertion point *after* all equal ranks
/// (FIFO tie-break) and shifts; `pop` takes from the front. This mirrors
/// the naive hardware organisation of §5.2 ("an incoming element is
/// compared against all elements in parallel … then inserted by shifting
/// the array") and is the semantic reference for all other PIFOs.
#[derive(Debug, Clone)]
pub struct SortedArrayPifo<T> {
    items: VecDeque<(Rank, u64, T)>,
    seq: u64,
    capacity: Option<usize>,
}

impl<T> Default for SortedArrayPifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SortedArrayPifo<T> {
    /// An unbounded PIFO.
    pub fn new() -> Self {
        SortedArrayPifo {
            items: VecDeque::new(),
            seq: 0,
            capacity: None,
        }
    }

    /// A PIFO that rejects pushes beyond `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        SortedArrayPifo {
            items: VecDeque::with_capacity(capacity),
            seq: 0,
            capacity: Some(capacity),
        }
    }

    /// Iterate over `(rank, item)` in dequeue order without removing.
    /// (Also available backend-agnostically as
    /// [`PifoInspect::iter_in_order`].)
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &T)> {
        self.items.iter().map(|(r, _, t)| (*r, t))
    }
}

impl<T> PifoQueue<T> for SortedArrayPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        // First index whose rank exceeds the new rank: equal ranks stay
        // ahead of us (FIFO tie-break).
        let idx = self.items.partition_point(|(r, _, _)| *r <= rank);
        self.items.insert(idx, (rank, self.seq, item));
        self.seq += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.items.pop_front().map(|(r, _, t)| (r, t))
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.items.front().map(|(r, _, t)| (*r, t))
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The sorted prefix *is* the batch: one bulk drain from the front
    /// instead of `max` pop-front calls.
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Rank, T)>) -> usize {
        let n = max.min(self.items.len());
        out.extend(self.items.drain(..n).map(|(r, _, t)| (r, t)));
        n
    }
}

impl<T> PifoInspect<T> for SortedArrayPifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        Box::new(self.iter())
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.items
            .iter()
            .find(|(_, _, t)| pred(t))
            .map(|(r, _, t)| (*r, t))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        let idx = self.items.iter().position(|(_, _, t)| pred(t))?;
        self.items.remove(idx).map(|(r, _, t)| (r, t))
    }
}

// ---------------------------------------------------------------------------
// HeapPifo
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HeapEntry<T> {
    rank: Rank,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (rank, seq) is
        // at the top. seq breaks ties FIFO.
        (other.rank, other.seq).cmp(&(self.rank, self.seq))
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Binary-heap PIFO with stable FIFO tie-breaking: `O(log n)` push/pop.
///
/// Functionally identical to [`SortedArrayPifo`]. Inspection operations
/// materialise a sorted view, so they cost O(n log n) — fine for their
/// debug/model use, not for the hot path.
#[derive(Debug, Clone)]
pub struct HeapPifo<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
    capacity: Option<usize>,
}

impl<T> Default for HeapPifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapPifo<T> {
    /// An unbounded PIFO.
    pub fn new() -> Self {
        HeapPifo {
            heap: BinaryHeap::new(),
            seq: 0,
            capacity: None,
        }
    }

    /// A PIFO that rejects pushes beyond `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapPifo {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            capacity: Some(capacity),
        }
    }

    /// Entries as a freshly sorted vector of references (dequeue order).
    fn sorted_refs(&self) -> Vec<&HeapEntry<T>> {
        let mut v: Vec<&HeapEntry<T>> = self.heap.iter().collect();
        v.sort_by_key(|e| (e.rank, e.seq));
        v
    }
}

impl<T> PifoQueue<T> for HeapPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.heap.len() >= cap {
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        self.heap.push(HeapEntry {
            rank,
            seq: self.seq,
            item,
        });
        self.seq += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.heap.pop().map(|e| (e.rank, e.item))
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.heap.peek().map(|e| (e.rank, &e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Amortized batch pop. Sequential pops pay one cache-hostile
    /// sift-down per element; a batch that takes a large bite of the
    /// heap does better by leaving heap order entirely:
    ///
    /// * `max >= len` — **sorted drain**: move the backing vector out,
    ///   sort once by `(rank, seq)` (the exact pop order) and append —
    ///   one cache-friendly sort instead of `len` sift-downs.
    /// * `4 * max >= len` — **select + rebuild**: partition the `max`
    ///   smallest entries to the front with `select_nth_unstable`
    ///   (O(len) expected), sort only that prefix, and rebuild the heap
    ///   from the remainder (`BinaryHeap::from`, O(len)).
    /// * otherwise — per-element pops; for a small bite of a deep heap,
    ///   `max log len` sift-downs beat an O(len) restructuring.
    ///
    /// All three produce byte-identical output — `(rank, seq)` is a
    /// total order — enforced by the cross-backend differential suite.
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Rank, T)>) -> usize {
        let len = self.heap.len();
        if max == 0 || len == 0 {
            return 0;
        }
        if max >= len {
            let mut v = std::mem::take(&mut self.heap).into_vec();
            v.sort_unstable_by_key(|e| (e.rank, e.seq));
            out.extend(v.into_iter().map(|e| (e.rank, e.item)));
            return len;
        }
        if 4 * max >= len {
            let mut v = std::mem::take(&mut self.heap).into_vec();
            v.select_nth_unstable_by_key(max, |e| (e.rank, e.seq));
            let rest = v.split_off(max);
            v.sort_unstable_by_key(|e| (e.rank, e.seq));
            out.extend(v.into_iter().map(|e| (e.rank, e.item)));
            self.heap = BinaryHeap::from(rest);
            return max;
        }
        let before = out.len();
        while out.len() - before < max {
            match self.pop() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out.len() - before
    }
}

impl<T> PifoInspect<T> for HeapPifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        Box::new(self.sorted_refs().into_iter().map(|e| (e.rank, &e.item)))
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.sorted_refs()
            .into_iter()
            .find(|e| pred(&e.item))
            .map(|e| (e.rank, &e.item))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.sort_by_key(|e| (e.rank, e.seq));
        let pos = entries.iter().position(|e| pred(&e.item));
        let removed = pos.map(|p| entries.remove(p));
        self.heap = BinaryHeap::from(entries);
        removed.map(|e| (e.rank, e.item))
    }
}

// ---------------------------------------------------------------------------
// BucketPifo
// ---------------------------------------------------------------------------

/// Number of 64-bit words in the occupancy bitmap.
const BUCKET_WORDS: usize = 64;
/// Number of calendar buckets (one bit each in the two-level bitmap).
const NUM_BUCKETS: usize = BUCKET_WORDS * 64; // 4096

/// Eiffel-inspired bucketed calendar PIFO with a two-level find-first-set
/// bitmap: `O(1)` amortised push/pop for integer ranks.
///
/// Ranks are mapped to one of `NUM_BUCKETS` (4096) buckets of `2^shift`
/// consecutive rank values, starting at a moving `base`. A 64×64-bit
/// hierarchical bitmap finds the lowest non-empty bucket with two
/// `trailing_zeros` instructions (the software analogue of Eiffel's FFS
/// circular queues, NSDI'19). Ranks beyond the calendar horizon go to an
/// overflow heap and migrate into the calendar as it drains; ranks below
/// the current base trigger a (rare, amortised) downward rebase.
///
/// Unlike Eiffel's approximate gradient buckets this structure is
/// **exact**: residents of one bucket are kept sorted by
/// `(rank, sequence)`, so the dequeue trace — including FIFO tie-breaks —
/// is byte-identical to [`SortedArrayPifo`]'s (enforced by the
/// cross-backend differential property suite).
#[derive(Debug, Clone)]
pub struct BucketPifo<T> {
    buckets: Vec<VecDeque<(Rank, u64, T)>>,
    /// Bit `w` set ⇔ `words[w] != 0`.
    summary: u64,
    /// Bit `b` of `words[w]` set ⇔ bucket `w*64 + b` is non-empty.
    words: Vec<u64>,
    /// `rank >> shift` of bucket 0.
    base_bucket: u64,
    /// log2 of the rank span each bucket covers.
    shift: u32,
    /// Entries with `rank >> shift` beyond the calendar horizon.
    overflow: BinaryHeap<HeapEntry<T>>,
    len: usize,
    seq: u64,
    capacity: Option<usize>,
}

/// Default bucket granularity: 2^8 rank values per bucket, giving a
/// calendar window of 4096 × 256 ≈ 1 M rank values — wide enough that
/// virtual-time and timestamp ranks of a busy port mostly land in the
/// calendar rather than the overflow heap.
const DEFAULT_BUCKET_SHIFT: u32 = 8;

impl<T> Default for BucketPifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BucketPifo<T> {
    /// An unbounded PIFO with the default bucket granularity.
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_BUCKET_SHIFT)
    }

    /// A PIFO that rejects pushes beyond `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.capacity = Some(capacity);
        q
    }

    /// An unbounded PIFO whose buckets each cover `2^shift` rank values.
    /// Smaller shifts mean finer buckets (fewer residents each) but a
    /// narrower calendar window before ranks spill to the overflow heap.
    pub fn with_shift(shift: u32) -> Self {
        assert!(shift < 56, "bucket shift {shift} leaves no rank bits");
        BucketPifo {
            buckets: (0..NUM_BUCKETS).map(|_| VecDeque::new()).collect(),
            summary: 0,
            words: vec![0; BUCKET_WORDS],
            base_bucket: 0,
            shift,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            capacity: None,
        }
    }

    fn mark(&mut self, idx: usize) {
        self.words[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
    }

    fn unmark_if_empty(&mut self, idx: usize) {
        if self.buckets[idx].is_empty() {
            self.words[idx / 64] &= !(1 << (idx % 64));
            if self.words[idx / 64] == 0 {
                self.summary &= !(1 << (idx / 64));
            }
        }
    }

    /// Lowest non-empty bucket index, via two FFS steps.
    fn first_occupied(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        let b = self.words[w].trailing_zeros() as usize;
        Some(w * 64 + b)
    }

    fn rebuild_bitmap(&mut self) {
        self.summary = 0;
        self.words.iter_mut().for_each(|w| *w = 0);
        for idx in 0..NUM_BUCKETS {
            if !self.buckets[idx].is_empty() {
                self.mark(idx);
            }
        }
    }

    /// Shift the calendar down so that bucket 0 covers `new_base`
    /// (a virtual bucket index below the current base). Occupied buckets
    /// move up by the same delta; those pushed past the horizon spill to
    /// the overflow heap. O(NUM_BUCKETS + moved) — rare, amortised.
    fn rebase_down(&mut self, new_base: u64) {
        let delta = self.base_bucket - new_base;
        if self.summary != 0 {
            for i in (0..NUM_BUCKETS).rev() {
                if self.buckets[i].is_empty() {
                    continue;
                }
                // Saturating: a huge delta (rebasing down from a near-max
                // base) must spill to overflow, not wrap around.
                let target = (i as u64).saturating_add(delta);
                if target < NUM_BUCKETS as u64 {
                    // Descending iteration guarantees the target slot was
                    // already vacated (it moved by the same delta).
                    self.buckets.swap(i, target as usize);
                } else {
                    for (r, s, t) in self.buckets[i].drain(..) {
                        self.overflow.push(HeapEntry {
                            rank: r,
                            seq: s,
                            item: t,
                        });
                    }
                }
            }
        }
        self.base_bucket = new_base;
        self.rebuild_bitmap();
    }

    /// All buckets are empty but the overflow heap is not: re-anchor the
    /// calendar at the overflow minimum and migrate everything within the
    /// new window. Heap pops come out in `(rank, seq)` order, so plain
    /// `push_back` keeps each bucket sorted.
    fn refill_from_overflow(&mut self) {
        debug_assert_eq!(self.summary, 0);
        let min = self
            .overflow
            .peek()
            .expect("refill called with empty overflow");
        self.base_bucket = min.rank.value() >> self.shift;
        while let Some(e) = self.overflow.peek() {
            // Offset from the new base; overflow-free because the base is
            // the overflow minimum (near-u64::MAX ranks at tiny shifts
            // would overflow an absolute `base + NUM_BUCKETS` horizon).
            let off = (e.rank.value() >> self.shift) - self.base_bucket;
            if off >= NUM_BUCKETS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry vanished");
            self.buckets[off as usize].push_back((e.rank, e.seq, e.item));
            self.mark(off as usize);
        }
    }

    /// Place `(rank, seq, item)` on the correct side of the horizon.
    ///
    /// Invariant maintained throughout: every calendar rank `<` every
    /// overflow rank (bucket ranks are below the horizon, overflow ranks
    /// at or above it, and the horizon only moves when it preserves this).
    fn place(&mut self, rank: Rank, seq: u64, item: T) {
        let vb = rank.value() >> self.shift;
        if self.summary == 0 && self.overflow.is_empty() {
            self.base_bucket = vb;
        } else if vb < self.base_bucket {
            self.rebase_down(vb);
        }
        // Offset comparison, not an absolute horizon: `base + NUM_BUCKETS`
        // would overflow u64 for near-max ranks at tiny shifts.
        let off = vb - self.base_bucket;
        if off >= NUM_BUCKETS as u64 {
            self.overflow.push(HeapEntry { rank, seq, item });
        } else {
            let bucket = &mut self.buckets[off as usize];
            let pos = bucket.partition_point(|(r, s, _)| (*r, *s) <= (rank, seq));
            bucket.insert(pos, (rank, seq, item));
            self.mark(off as usize);
        }
    }

    /// Overflow entries as a freshly sorted vector of references.
    fn overflow_sorted_refs(&self) -> Vec<&HeapEntry<T>> {
        let mut v: Vec<&HeapEntry<T>> = self.overflow.iter().collect();
        v.sort_by_key(|e| (e.rank, e.seq));
        v
    }
}

impl<T> PifoQueue<T> for BucketPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.len >= cap {
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        let seq = self.seq;
        self.seq += 1;
        self.place(rank, seq, item);
        self.len += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        if self.summary == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.refill_from_overflow();
        }
        let idx = self.first_occupied().expect("non-empty after refill");
        let (r, _, t) = self.buckets[idx].pop_front().expect("bitmap said occupied");
        self.unmark_if_empty(idx);
        self.len -= 1;
        Some((r, t))
    }

    /// Amortized batch push: the capacity gate is resolved **once** for
    /// the whole batch (sequential semantics admit exactly the first
    /// `capacity - len` elements, since nothing pops mid-batch), so the
    /// per-element path is just seq-stamp + calendar placement.
    fn push_batch(&mut self, items: Vec<(Rank, T)>) -> Vec<PifoFull<T>> {
        let headroom = self
            .capacity
            .map_or(usize::MAX, |cap| cap.saturating_sub(self.len));
        let mut rejected = Vec::new();
        for (i, (rank, item)) in items.into_iter().enumerate() {
            if i >= headroom {
                rejected.push(PifoFull {
                    rank,
                    item,
                    capacity: self.capacity.expect("finite headroom implies a bound"),
                });
                continue;
            }
            let seq = self.seq;
            self.seq += 1;
            self.place(rank, seq, item);
            self.len += 1;
        }
        rejected
    }

    /// Amortized batch pop: whole calendar buckets are drained with one
    /// bulk `VecDeque::drain` each, consulting the two-level bitmap once
    /// per *bucket* (and clearing its bit once, when it empties) instead
    /// of running find-first-set + unmark for every element. Length
    /// bookkeeping is settled once per batch.
    fn pop_batch(&mut self, max: usize, out: &mut Vec<(Rank, T)>) -> usize {
        let target = max.min(self.len);
        out.reserve(target);
        let mut taken = 0usize;
        while taken < target {
            if self.summary == 0 {
                self.refill_from_overflow();
            }
            let idx = self.first_occupied().expect("taken < target <= len");
            let bucket = &mut self.buckets[idx];
            let take = bucket.len().min(target - taken);
            out.extend(bucket.drain(..take).map(|(r, _, t)| (r, t)));
            taken += take;
            self.unmark_if_empty(idx);
        }
        self.len -= taken;
        taken
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        match self.first_occupied() {
            Some(idx) => self.buckets[idx].front().map(|(r, _, t)| (*r, t)),
            // Calendar empty: the overflow minimum is the global minimum.
            None => self.overflow.peek().map(|e| (e.rank, &e.item)),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl<T> PifoInspect<T> for BucketPifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        // Calendar ranks all precede overflow ranks (horizon invariant),
        // so dequeue order is: buckets by index, then overflow sorted.
        let over = self.overflow_sorted_refs();
        Box::new(
            self.buckets
                .iter()
                .flat_map(|b| b.iter().map(|(r, _, t)| (*r, t)))
                .chain(over.into_iter().map(|e| (e.rank, &e.item))),
        )
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.iter_in_order().find(|(_, t)| pred(t))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        // Scan the calendar in dequeue order first.
        for idx in 0..NUM_BUCKETS {
            if self.buckets[idx].is_empty() {
                continue;
            }
            if let Some(pos) = self.buckets[idx].iter().position(|(_, _, t)| pred(t)) {
                let (r, _, t) = self.buckets[idx].remove(pos).expect("position exists");
                self.unmark_if_empty(idx);
                self.len -= 1;
                return Some((r, t));
            }
        }
        // Then the overflow heap, in dequeue order.
        let mut entries = std::mem::take(&mut self.overflow).into_vec();
        entries.sort_by_key(|e| (e.rank, e.seq));
        let pos = entries.iter().position(|e| pred(&e.item));
        let removed = pos.map(|p| entries.remove(p));
        self.overflow = BinaryHeap::from(entries);
        removed.map(|e| {
            self.len -= 1;
            (e.rank, e.item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T, Q: PifoQueue<T> + ?Sized>(q: &mut Q) -> Vec<(Rank, T)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    fn basic_order<Q: PifoQueue<&'static str>>(mut q: Q) {
        q.push(Rank(30), "c");
        q.push(Rank(10), "a");
        q.push(Rank(20), "b");
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn sorted_array_orders_by_rank() {
        basic_order(SortedArrayPifo::new());
    }

    #[test]
    fn heap_orders_by_rank() {
        basic_order(HeapPifo::new());
    }

    #[test]
    fn bucket_orders_by_rank() {
        basic_order(BucketPifo::new());
    }

    fn fifo_tie_break<Q: PifoQueue<u32>>(mut q: Q) {
        q.push(Rank(5), 1);
        q.push(Rank(5), 2);
        q.push(Rank(1), 0);
        q.push(Rank(5), 3);
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sorted_array_fifo_ties() {
        fifo_tie_break(SortedArrayPifo::new());
    }

    #[test]
    fn heap_fifo_ties() {
        fifo_tie_break(HeapPifo::new());
    }

    #[test]
    fn bucket_fifo_ties() {
        fifo_tie_break(BucketPifo::new());
    }

    #[test]
    fn push_in_reorders_pending() {
        // The defining PIFO behaviour: a later push with a smaller rank
        // overtakes earlier pushes still in the queue.
        let mut q = SortedArrayPifo::new();
        q.push(Rank(100), "slow");
        q.push(Rank(1), "urgent");
        assert_eq!(q.pop().unwrap().1, "urgent");
        assert_eq!(q.pop().unwrap().1, "slow");
    }

    #[test]
    fn capacity_rejects_and_returns_item() {
        let mut q = SortedArrayPifo::with_capacity(2);
        assert!(q.try_push(Rank(1), 'a').is_ok());
        assert!(q.try_push(Rank(2), 'b').is_ok());
        let err = q.try_push(Rank(0), 'c').unwrap_err();
        assert_eq!(err.item, 'c');
        assert_eq!(err.rank, Rank(0));
        assert_eq!(err.capacity, 2);
        assert_eq!(q.len(), 2);
        // After a pop there is room again.
        q.pop();
        assert!(q.try_push(Rank(0), 'c').is_ok());
    }

    #[test]
    fn heap_capacity_rejects() {
        let mut q = HeapPifo::with_capacity(1);
        assert!(q.try_push(Rank(1), 1).is_ok());
        assert!(q.try_push(Rank(1), 2).is_err());
        assert_eq!(q.capacity(), Some(1));
    }

    #[test]
    fn pifo_full_display_names_capacity_and_rank() {
        let mut q = BucketPifo::with_capacity(3);
        for i in 0..3 {
            q.push(Rank(i), i);
        }
        let err = q.try_push(Rank(42), 99).unwrap_err();
        let msg = err.to_string();
        assert_eq!(msg, "PIFO full (capacity 3): rejected element with rank 42");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = HeapPifo::new();
        q.push(Rank(2), "x");
        q.push(Rank(1), "y");
        assert_eq!(q.peek(), Some((Rank(1), &"y")));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Rank(1), "y")));
    }

    #[test]
    fn empty_pops_none() {
        let mut q: SortedArrayPifo<u8> = SortedArrayPifo::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn pop_first_matching_respects_head_order() {
        // Exercised through the backend-erased engine, as the hw model
        // uses it.
        for backend in PifoBackend::ALL {
            let mut q: BoxedPifo<(&str, u32)> = backend.make();
            q.push(Rank(1), ("a", 1));
            q.push(Rank(2), ("b", 2));
            q.push(Rank(3), ("a", 3));
            // First "a" by dequeue order is the rank-1 one.
            let (r, (tag, v)) = q.pop_first_matching(&mut |(t, _)| *t == "a").unwrap();
            assert_eq!((r, tag, v), (Rank(1), "a", 1), "{backend}");
            // Remaining order intact.
            assert_eq!(q.pop().unwrap().1, ("b", 2), "{backend}");
            assert_eq!(q.pop().unwrap().1, ("a", 3), "{backend}");
            assert!(q.is_empty(), "{backend}");
        }
    }

    #[test]
    fn peek_first_matching_finds_headmost() {
        for backend in PifoBackend::ALL {
            let mut q: BoxedPifo<u32> = backend.make();
            q.push(Rank(4), 40u32);
            q.push(Rank(2), 21u32);
            q.push(Rank(3), 31u32);
            let (r, v) = q.peek_first_matching(&mut |v| *v % 2 == 1).unwrap();
            assert_eq!((r, *v), (Rank(2), 21), "{backend}");
            assert_eq!(q.len(), 3, "{backend}");
        }
    }

    #[test]
    fn iter_in_order_matches_drain_order() {
        for backend in PifoBackend::ALL {
            let mut q: BoxedPifo<u64> = backend.make();
            // Spread ranks across buckets, within one bucket, and into the
            // bucket backend's overflow region.
            for (i, r) in [5u64, 5, 1 << 30, 3, 700, 5, 1 << 40, 0].iter().enumerate() {
                q.push(Rank(*r), i as u64);
            }
            let via_iter: Vec<(Rank, u64)> = q.iter_in_order().map(|(r, v)| (r, *v)).collect();
            let via_drain: Vec<(Rank, u64)> = drain(&mut *q);
            assert_eq!(via_iter, via_drain, "{backend}");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = HeapPifo::new();
        q.push(Rank(10), 10);
        q.push(Rank(5), 5);
        assert_eq!(q.pop().unwrap().0, Rank(5));
        q.push(Rank(1), 1);
        q.push(Rank(7), 7);
        assert_eq!(q.pop().unwrap().0, Rank(1));
        assert_eq!(q.pop().unwrap().0, Rank(7));
        assert_eq!(q.pop().unwrap().0, Rank(10));
        assert!(q.pop().is_none());
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in PifoBackend::ALL {
            // Display is the lossless inverse of FromStr; the label drops
            // parameters but still parses to the default parameterisation.
            assert_eq!(backend.to_string().parse::<PifoBackend>().unwrap(), backend);
            assert_eq!(backend.label().parse::<PifoBackend>().unwrap(), backend);
        }
        for backend in PifoBackend::EXACT {
            assert_eq!(backend.to_string(), backend.label());
        }
        assert_eq!(
            "sorted-array".parse::<PifoBackend>(),
            Ok(PifoBackend::SortedArray)
        );
        assert_eq!(
            "sp-pifo:4".parse::<PifoBackend>(),
            Ok(PifoBackend::SpPifo { queues: 4 })
        );
        assert_eq!(PifoBackend::SpPifo { queues: 4 }.to_string(), "sp-pifo:4");
        assert!("sp-pifo:0".parse::<PifoBackend>().is_err());
        assert!("sp-pifo:999".parse::<PifoBackend>().is_err());
        let err = "mystery".parse::<PifoBackend>().unwrap_err();
        for name in ["sorted", "heap", "bucket", "sp-pifo", "rifo", "aifo"] {
            assert!(err.contains(name), "parse error must list '{name}': {err}");
        }
    }

    /// The statically-dispatched enum and the boxed trait object are the
    /// same engines: identical traces, inspection views and admission.
    #[test]
    fn enum_pifo_matches_boxed_engine() {
        for backend in PifoBackend::ALL {
            let mut e = backend.make_enum::<u32>();
            let mut b: BoxedPifo<u32> = backend.make();
            assert_eq!(e.backend(), backend);
            for (i, r) in [5u64, 1, 1 << 40, 5, 0, 700].iter().enumerate() {
                e.push(Rank(*r), i as u32);
                b.push(Rank(*r), i as u32);
            }
            let ve: Vec<_> = e.iter_in_order().map(|(r, v)| (r, *v)).collect();
            let vb: Vec<_> = b.iter_in_order().map(|(r, v)| (r, *v)).collect();
            assert_eq!(ve, vb, "{backend} inspection diverges");
            loop {
                let (x, y) = (e.pop(), b.pop());
                assert_eq!(x, y, "{backend} pop diverges");
                if x.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn enum_pifo_bounded_rejects_like_boxed() {
        for backend in PifoBackend::ALL {
            let mut e = backend.make_enum_bounded::<u8>(2);
            let mut b: BoxedPifo<u8> = backend.make_bounded(2);
            assert_eq!(e.capacity(), Some(2));
            for r in 0..3u64 {
                assert_eq!(
                    e.try_push(Rank(r), r as u8),
                    b.try_push(Rank(r), r as u8),
                    "{backend} admission diverges"
                );
            }
            assert_eq!(e.len(), b.len(), "{backend}");
            if backend.is_exact() {
                // Exact backends admit first-come: exactly the capacity.
                // Approximate gates may refuse earlier; only the
                // enum-matches-boxed property is universal.
                assert_eq!(e.len(), 2, "{backend}");
            }
        }
    }

    // ---- Batch-API edge cases --------------------------------------------

    /// An empty batch is a no-op on every backend: no rejects, no pops,
    /// no state change.
    #[test]
    fn empty_batches_are_noops() {
        for backend in PifoBackend::ALL {
            let mut q: BoxedPifo<u32> = backend.make_bounded(4);
            q.push(Rank(1), 10);
            assert!(q.push_batch(Vec::new()).is_empty(), "{backend}");
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(0, &mut out), 0, "{backend}");
            assert!(out.is_empty(), "{backend}");
            assert_eq!(q.len(), 1, "{backend}");
        }
    }

    /// A batch that straddles the capacity bound admits exactly the
    /// prefix that fits and reports every rejected element —
    /// field-for-field unchanged, in input order — on every exact
    /// backend. (Approximate gates legally refuse different elements;
    /// their PifoFull round-trip is pinned by the approx property suite.)
    #[test]
    fn push_batch_straddling_capacity_reports_exact_rejects() {
        for backend in PifoBackend::EXACT {
            let mut q: BoxedPifo<(u64, &str)> = backend.make_bounded(3);
            q.push(Rank(5), (5, "resident"));
            // 4 more into 2 remaining slots: the last two must bounce,
            // even though rank 0 would sit at the head.
            let batch = vec![
                (Rank(9), (9, "fits-a")),
                (Rank(1), (1, "fits-b")),
                (Rank(0), (0, "rejected-a")),
                (Rank(7), (7, "rejected-b")),
            ];
            let rejected = q.push_batch(batch);
            assert_eq!(
                rejected,
                vec![
                    PifoFull {
                        rank: Rank(0),
                        item: (0, "rejected-a"),
                        capacity: 3
                    },
                    PifoFull {
                        rank: Rank(7),
                        item: (7, "rejected-b"),
                        capacity: 3
                    },
                ],
                "{backend}"
            );
            assert_eq!(q.len(), 3, "{backend}");
            let drained: Vec<&str> = std::iter::from_fn(|| q.pop())
                .map(|(_, (_, s))| s)
                .collect();
            assert_eq!(drained, vec!["fits-b", "resident", "fits-a"], "{backend}");
        }
    }

    /// `pop_batch` crosses bucket, calendar-window and overflow-heap
    /// boundaries in one call, and stopping mid-bucket leaves the
    /// remainder intact.
    #[test]
    fn pop_batch_crosses_structures_and_stops_mid_bucket() {
        // Shift 0 → 4096-wide window; rank far beyond it goes to overflow.
        let far = (NUM_BUCKETS as u64) * 7;
        let mut q: BucketPifo<u32> = BucketPifo::with_shift(0);
        for (i, r) in [3u64, 3, 3, 10, far, far + 1].iter().enumerate() {
            q.push(Rank(*r), i as u32);
        }
        // Stop mid-bucket: two of the three rank-3 residents.
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(2, &mut out), 2);
        assert_eq!(out, vec![(Rank(3), 0), (Rank(3), 1)]);
        assert_eq!(q.len(), 4);
        // One call drains the rest: tail of the bucket, the next bucket,
        // then both overflow residents via a refill.
        let mut rest = Vec::new();
        assert_eq!(q.pop_batch(100, &mut rest), 4);
        assert_eq!(
            rest,
            vec![
                (Rank(3), 2),
                (Rank(10), 3),
                (Rank(far), 4),
                (Rank(far + 1), 5)
            ]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Mixing batched and per-element calls keeps one coherent FIFO
    /// sequence: a batch pushed after singles ties behind them. The
    /// expected trace is rank-sorted, so this sweeps the exact trio.
    #[test]
    fn batch_and_single_ops_interleave_coherently() {
        for backend in PifoBackend::EXACT {
            let mut q: BoxedPifo<u32> = backend.make();
            q.push(Rank(5), 0);
            assert!(q.push_batch(vec![(Rank(5), 1), (Rank(2), 2)]).is_empty());
            q.push(Rank(5), 3);
            let mut out = Vec::new();
            q.pop_batch(2, &mut out);
            assert_eq!(out, vec![(Rank(2), 2), (Rank(5), 0)], "{backend}");
            assert_eq!(q.pop(), Some((Rank(5), 1)), "{backend}");
            assert_eq!(q.pop(), Some((Rank(5), 3)), "{backend}");
        }
    }

    /// `HeapPifo::pop_batch` crosses all three regimes — sorted drain
    /// (`max >= len`), select + rebuild (`4*max >= len`), per-element
    /// fallback — and each one matches the sequential-pop oracle,
    /// including FIFO ties and the state left behind for later pops.
    #[test]
    fn heap_pop_batch_regimes_match_sequential_pops() {
        let ranks: Vec<u64> = (0..64u64).map(|i| (i * 37) % 16).collect();
        // (max, len-at-call) pairs chosen to land in each regime.
        for max in [1usize, 3, 9, 20, 63, 64, 100] {
            let mut batched: HeapPifo<u64> = HeapPifo::new();
            let mut reference: HeapPifo<u64> = HeapPifo::new();
            for (i, r) in ranks.iter().enumerate() {
                batched.push(Rank(*r), i as u64);
                reference.push(Rank(*r), i as u64);
            }
            let mut via_batch = Vec::new();
            let n = batched.pop_batch(max, &mut via_batch);
            assert_eq!(n, max.min(ranks.len()), "max={max}");
            let via_pops: Vec<(Rank, u64)> = (0..n).map(|_| reference.pop().unwrap()).collect();
            assert_eq!(via_batch, via_pops, "max={max}: batch diverges");
            // The remainders agree element for element too.
            loop {
                let (a, b) = (batched.pop(), reference.pop());
                assert_eq!(a, b, "max={max}: remainder diverges");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Interleaving batch pops with fresh pushes keeps one coherent
    /// FIFO-tie sequence across the heap's internal rebuilds.
    #[test]
    fn heap_pop_batch_then_push_keeps_tie_order() {
        let mut q: HeapPifo<u32> = HeapPifo::new();
        for i in 0..10u32 {
            q.push(Rank(5), i);
        }
        let mut out = Vec::new();
        q.pop_batch(4, &mut out); // select + rebuild regime
        assert_eq!(
            out.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        q.push(Rank(5), 100); // ties behind the survivors
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(rest, [4, 5, 6, 7, 8, 9, 100]);
    }

    // ---- BucketPifo-specific structure tests -----------------------------

    #[test]
    fn bucket_far_future_ranks_go_through_overflow() {
        let mut q: BucketPifo<u32> = BucketPifo::with_shift(0);
        // Window is NUM_BUCKETS ranks wide at shift 0.
        q.push(Rank(0), 0);
        q.push(Rank((NUM_BUCKETS as u64) * 10), 1); // far beyond horizon
        q.push(Rank(5), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Rank(0), 0)));
        assert_eq!(q.pop(), Some((Rank(5), 2)));
        // Calendar drained: refill pulls the far element in.
        assert_eq!(q.pop(), Some((Rank((NUM_BUCKETS as u64) * 10), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_rebase_down_accepts_lower_ranks() {
        let mut q: BucketPifo<u32> = BucketPifo::with_shift(0);
        q.push(Rank(1_000_000), 0); // anchors the calendar high
        q.push(Rank(3), 1); // forces a rebase far downward
        q.push(Rank(1_000_001), 2); // now beyond the horizon → overflow
        assert_eq!(q.pop(), Some((Rank(3), 1)));
        assert_eq!(q.pop(), Some((Rank(1_000_000), 0)));
        assert_eq!(q.pop(), Some((Rank(1_000_001), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_ties_survive_overflow_migration() {
        let mut q: BucketPifo<u32> = BucketPifo::with_shift(0);
        let far = (NUM_BUCKETS as u64) * 3;
        q.push(Rank(0), 0);
        q.push(Rank(far), 10); // overflow
        q.push(Rank(far), 11); // overflow, same rank: FIFO later
        assert_eq!(q.pop(), Some((Rank(0), 0)));
        // Refill migrates both; FIFO order must hold.
        assert_eq!(q.pop(), Some((Rank(far), 10)));
        // A fresh equal-rank push lands in the calendar *behind* the
        // migrated one (larger seq).
        q.push(Rank(far), 12);
        assert_eq!(q.pop(), Some((Rank(far), 11)));
        assert_eq!(q.pop(), Some((Rank(far), 12)));
    }

    #[test]
    fn bucket_peek_sees_overflow_only_minimum() {
        let mut q: BucketPifo<u32> = BucketPifo::with_shift(0);
        let far = (NUM_BUCKETS as u64) * 5;
        q.push(Rank(far + 7), 1);
        q.push(Rank(far), 0);
        // Everything may sit in overflow (calendar anchored at first push).
        assert_eq!(q.peek().map(|(r, v)| (r, *v)), Some((Rank(far), 0)));
        assert_eq!(q.pop(), Some((Rank(far), 0)));
        assert_eq!(q.pop(), Some((Rank(far + 7), 1)));
    }

    #[test]
    fn bucket_handles_max_rank() {
        let mut q: BucketPifo<u64> = BucketPifo::new();
        q.push(Rank(u64::MAX), 1);
        q.push(Rank(0), 0);
        q.push(Rank(u64::MAX - 1), 2);
        assert_eq!(q.pop(), Some((Rank(0), 0)));
        assert_eq!(q.pop(), Some((Rank(u64::MAX - 1), 2)));
        assert_eq!(q.pop(), Some((Rank(u64::MAX), 1)));
    }

    /// Regression: at shift 0 a near-max rank anchors the calendar where
    /// an absolute `base + NUM_BUCKETS` horizon would overflow u64. The
    /// offset-based window checks must keep push/refill/pop exact.
    #[test]
    fn bucket_near_max_rank_at_shift_zero() {
        let mut q: BucketPifo<u64> = BucketPifo::with_shift(0);
        q.push(Rank(u64::MAX), 1);
        q.push(Rank(0), 2);
        assert_eq!(q.pop(), Some((Rank(0), 2)));
        assert_eq!(q.pop(), Some((Rank(u64::MAX), 1)));
        assert_eq!(q.pop(), None);

        // Anchor directly at the top: pushes within and below the
        // truncated window, plus a huge rebase back down.
        let mut q: BucketPifo<u64> = BucketPifo::with_shift(0);
        q.push(Rank(u64::MAX - 10), 0);
        q.push(Rank(u64::MAX), 1); // offset 10, inside the window
        q.push(Rank(5), 2); // rebase down by ~u64::MAX
        assert_eq!(q.pop(), Some((Rank(5), 2)));
        assert_eq!(q.pop(), Some((Rank(u64::MAX - 10), 0)));
        assert_eq!(q.pop(), Some((Rank(u64::MAX), 1)));
        assert!(q.is_empty());
    }
}
