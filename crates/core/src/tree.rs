//! Trees of scheduling and shaping transactions (§2.2–§2.3).
//!
//! A PIFO tree encodes the *instantaneous scheduling order* of a
//! hierarchical algorithm (Fig 2): each node owns a scheduling PIFO whose
//! elements are packets (at leaves) or references to child PIFOs (at
//! interior nodes). Dequeueing walks from the root, popping one element at
//! each level, until a packet is reached.
//!
//! Enqueueing a packet executes the scheduling transaction at every node on
//! the leaf→root path, pushing the packet at the leaf and a reference to
//! each child at its parent. A node with a *shaping transaction* suspends
//! this walk (Fig 5): the reference destined for the parent is parked in
//! the node's shaping PIFO, ranked by wall-clock release time, and the walk
//! resumes at the parent only when that time arrives.
//!
//! # Zero-copy hot path
//!
//! Packets live **once** in a shared
//! [`SharedPacketPool`] slab, exactly as
//! in the paper's hardware (§4): the PIFOs circulate 8-byte [`Element`]s
//! — a [`PktHandle`] at leaves, a [`NodeId`] reference at interior nodes
//! — instead of full packet clones, and `dequeue` returns the packet by
//! moving it out of its slot. Suspended shaping entries hold a
//! reference-counted handle to the same slot (the hardware equivalently
//! carries element metadata, §4.2), so the whole enqueue→dequeue walk is
//! allocation-free and copies each packet exactly once, on admission.
//! Packet-field reads go straight to the slab's generation-checked slots
//! (lock-free — no interior-mutability borrow per access), and whole
//! trees are `Send`: a fabric can drain its ports on worker threads.
//!
//! Shaping releases are driven by a single tree-wide min-ordered *agenda*
//! (`(release_time, node, seq)` heap): work-conserving trees pay an O(1)
//! `shaped == 0` check per operation — zero shaping inspections, see
//! [`ScheduleTree::shaping_inspections`] — and shaped trees pay O(log s)
//! per parked entry instead of an O(nodes) scan per call.
//!
//! # Batched entry points
//!
//! Switch-style callers that handle whole arrival/departure bursts use
//! [`ScheduleTree::enqueue_batch`] and [`ScheduleTree::dequeue_upto`]:
//! byte-identical to per-packet `enqueue`/`dequeue` loops (differentially
//! tested on every backend), but amortizing slab growth, the
//! shaping-release pass, and — for single-node trees — the entire pop
//! sequence through one [`PifoQueue::pop_batch`].
//!
//! # Invariants
//!
//! * Work-conserving subtrees: a node's scheduling-PIFO length equals the
//!   number of packets buffered in its subtree minus references currently
//!   held back by shapers strictly below it.
//! * Dequeue never pops a reference to an empty child (checked; a failure
//!   is a bug in this module, not in user code).
//! * All shaped elements whose release time has passed are released before
//!   any enqueue/dequeue at a later wall-clock time is processed.
//! * Slab accounting: `packet_buffer().live() == len() +
//!   shaped_refs_holding_packets()`, and the slab's free list is whole
//!   again once the tree fully drains (no leaked slots).

use crate::buffer::PktHandle;
use crate::metrics::{InversionStats, InversionTracker};
use crate::packet::{FlowId, Packet};
use crate::pifo::{EnumPifo, PifoBackend, PifoInspect, PifoQueue};
use crate::pool::{PoolHandle, SharedPacketPool};
use crate::rank::Rank;
use crate::telemetry::{
    drop_reason, EventKind, FlightRecorder, PathRecord, PathRecorder, TraceEvent,
};
use crate::time::Nanos;
use crate::transaction::{DeqCtx, EnqCtx, SchedulingTransaction, ShapingTransaction};
use core::fmt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a node within one [`ScheduleTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The flow identifier this node presents to its parent's transaction.
    ///
    /// At an interior node, elements are grouped per *child* — e.g.
    /// WFQ_Root in Fig 3 treats `Left` and `Right` as its two flows — so
    /// the child's node id doubles as the flow id at the parent.
    pub fn as_flow(self) -> FlowId {
        FlowId(self.0)
    }

    /// Raw index (stable for the lifetime of the tree).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A sentinel id that never names a real node.
    ///
    /// Classifiers return this for packets that belong to no leaf (e.g. an
    /// unknown flow); `enqueue` reports it as [`TreeError::UnknownNode`]
    /// instead of silently misrouting the packet.
    pub const INVALID: NodeId = NodeId(u32::MAX);

    /// Construct a `NodeId` from a raw index.
    ///
    /// Node ids are assigned densely in the order of
    /// [`TreeBuilder::add_root`]/[`TreeBuilder::add_child`] calls (root
    /// first). Builder helpers (e.g. `pifo-algos`' tree constructors) use
    /// this to wire classifiers before the tree exists; an id that does not
    /// name a real node of the final tree is caught at `enqueue` as
    /// [`TreeError::UnknownNode`].
    ///
    /// # Panics
    ///
    /// Panics if `index` cannot name a real node (it exceeds
    /// `u32::MAX - 1`), so a construction mistake surfaces at the call
    /// site rather than as a confusing `UnknownNode` much later. Use
    /// [`NodeId::try_from_index`] for a non-panicking variant and
    /// [`NodeId::INVALID`] for an explicit "no such node" sentinel.
    pub fn from_index(index: usize) -> NodeId {
        NodeId::try_from_index(index).unwrap_or_else(|| {
            panic!(
                "NodeId::from_index({index}): index out of range (node ids are dense u32s \
                 below {}; use NodeId::INVALID for a deliberate sentinel)",
                u32::MAX
            )
        })
    }

    /// Construct a `NodeId` from a raw index, returning `None` when the
    /// index is out of the representable node-id range.
    pub fn try_from_index(index: usize) -> Option<NodeId> {
        u32::try_from(index)
            .ok()
            .filter(|&v| v != u32::MAX)
            .map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An element stored in a scheduling PIFO: a packet at a leaf, a reference
/// to a child PIFO at an interior node (Fig 2).
///
/// Mirrors the hardware's small PIFO entries (§4, Fig 6): the packet
/// itself lives in the tree's shared [`SharedPacketPool`], so this is a
/// `Copy` type two words wide and PIFO pushes never move packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Element {
    /// A handle to a buffered packet (leaf PIFOs only).
    Packet(PktHandle),
    /// A reference to a child node's scheduling PIFO.
    Ref(NodeId),
}

/// A walk parked at a shaping transaction, waiting on the tree-wide
/// agenda for its release time.
///
/// The entry holds a reference-counted handle into the shared packet
/// buffer so the parent's scheduling transaction can read the triggering
/// packet's fields when the walk resumes — the hardware equivalently
/// carries element metadata (§4.2). Ordering is the derived lexicographic
/// `(release, node, seq, ..)`: release time first, ties broken by node
/// index, then FIFO within a node via the globally monotone `seq` (which
/// also makes the trailing `handle` irrelevant to the order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct AgendaEntry {
    release: u64,
    node: u32,
    seq: u64,
    handle: PktHandle,
}

/// Errors surfaced by tree construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// More than one root was defined.
    MultipleRoots,
    /// A shaper was attached to the root (there is no parent to release to).
    ShaperOnRoot,
    /// The classifier returned a non-leaf node for a packet.
    NotALeaf(NodeId),
    /// The shared packet buffer is exhausted; the packet was dropped.
    BufferFull(Packet),
    /// A node id from a different tree (or out of range) was used.
    UnknownNode(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::MultipleRoots => write!(f, "tree has multiple roots"),
            TreeError::ShaperOnRoot => write!(f, "shaping transaction attached to the root"),
            TreeError::NotALeaf(n) => write!(f, "classifier routed a packet to non-leaf {n}"),
            TreeError::BufferFull(p) => write!(f, "buffer full, dropped {}", p.id),
            TreeError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A function mapping a packet to the flow it belongs to at a leaf node.
/// Defaults to `packet.flow` when not overridden. `Send` so trees can
/// migrate to worker threads (see `pifo-sim`'s parallel fabric drain).
pub type FlowFn = Box<dyn Fn(&Packet) -> FlowId + Send>;

/// A function mapping a packet to the leaf node that should buffer it —
/// the composition of all packet predicates down one root-to-leaf path
/// (Fig 3b's `p.class == Left` etc.). `Send` like [`FlowFn`].
pub type Classifier = Box<dyn Fn(&Packet) -> NodeId + Send>;

/// A node as accumulated by the builder: no queues yet — the backend
/// choice is resolved when [`TreeBuilder::build`] instantiates them.
struct BuilderNode {
    name: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    sched: Box<dyn SchedulingTransaction>,
    shaper: Option<Box<dyn ShapingTransaction>>,
    flow_fn: Option<FlowFn>,
    /// Per-node backend override; `None` inherits the tree-wide choice.
    backend: Option<PifoBackend>,
}

struct Node {
    name: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    sched: Box<dyn SchedulingTransaction>,
    shaper: Option<Box<dyn ShapingTransaction>>,
    flow_fn: Option<FlowFn>,
    backend: PifoBackend,
    /// Statically dispatched so hot-path push/pop monomorphize.
    sched_pifo: EnumPifo<Element>,
    /// Entries parked for this node on the tree-wide shaping agenda.
    shaping_len: usize,
}

/// Builder for [`ScheduleTree`].
///
/// ```
/// use pifo_core::prelude::*;
///
/// // Single-node tree = one PIFO with one scheduling transaction (§2.1).
/// let mut b = TreeBuilder::new();
/// b.with_backend(PifoBackend::Bucket); // any engine; semantics identical
/// let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
///     Rank(ctx.now.as_nanos())
/// })));
/// let mut tree = b.build(Box::new(move |_p| root)).unwrap();
/// tree.enqueue(Packet::new(0, FlowId(1), 100, Nanos(5)), Nanos(5)).unwrap();
/// assert_eq!(tree.len(), 1);
/// assert_eq!(tree.node_backend(root), PifoBackend::Bucket);
/// ```
pub struct TreeBuilder {
    nodes: Vec<BuilderNode>,
    root: Option<NodeId>,
    buffer_limit: Option<usize>,
    backend: PifoBackend,
    track_inversions: bool,
    ring_capacity: Option<usize>,
    path_records: bool,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// An empty builder using the default (reference) PIFO backend.
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            root: None,
            buffer_limit: None,
            backend: PifoBackend::default(),
            track_inversions: false,
            ring_capacity: None,
            path_records: false,
        }
    }

    /// Score every root-level dequeue against the smallest rank still
    /// waiting in the root PIFO (inversions, unpifoness, max regression
    /// — see [`InversionTracker`]). Off by default; when off the hot
    /// path carries no tracking cost at all.
    pub fn track_inversions(&mut self, enabled: bool) -> &mut Self {
        self.track_inversions = enabled;
        self
    }

    /// Attach a [`FlightRecorder`] retaining the most recent `capacity`
    /// trace events (enqueue/dequeue/drop/shaping/pool — see
    /// [`EventKind`]) to the built tree. Off by default; when off every
    /// hook site costs one `Option` null check and nothing else.
    pub fn with_flight_recorder(&mut self, capacity: usize) -> &mut Self {
        self.ring_capacity = Some(capacity);
        self
    }

    /// Collect an INT-style [`PathRecord`] per packet: the hops of its
    /// enqueue walk (node, rank, queue depth seen) plus enqueue and
    /// departure instants. The most expensive telemetry mode; off by
    /// default.
    pub fn with_path_records(&mut self, enabled: bool) -> &mut Self {
        self.path_records = enabled;
        self
    }

    /// Select the queue engine backing every node's scheduling and shaping
    /// PIFO. May be called before or after nodes are added — the choice is
    /// applied when [`build`](Self::build) instantiates the queues. Nodes
    /// with a [`set_node_backend`](Self::set_node_backend) override keep
    /// their own engine.
    pub fn with_backend(&mut self, backend: PifoBackend) -> &mut Self {
        self.backend = backend;
        self
    }

    /// Override the queue engine for one node (e.g. a bucket calendar at a
    /// 60 K-deep leaf while small interior nodes keep the reference array).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this builder.
    pub fn set_node_backend(&mut self, node: NodeId, backend: PifoBackend) -> &mut Self {
        self.nodes[node.index()].backend = Some(backend);
        self
    }

    /// Limit the number of packets resident in the tree's shared
    /// [`SharedPacketPool`] slab — the model of §5.1's shared packet buffer
    /// (60 K packets); beyond it, [`ScheduleTree::enqueue`] returns
    /// [`TreeError::BufferFull`].
    ///
    /// Residency is what the buffer physically holds, which is normally
    /// exactly [`ScheduleTree::len`]. The one exception: a shaped
    /// reference whose packet already departed through an earlier
    /// reference keeps its slot until the shaper releases it (see
    /// [`ScheduleTree::shaped_refs_holding_packets`]), and such slots
    /// count against the limit — a genuinely full buffer rejects, like
    /// the hardware's.
    pub fn buffer_limit(&mut self, packets: usize) -> &mut Self {
        self.buffer_limit = Some(packets);
        self
    }

    /// Add the root node with its scheduling transaction.
    ///
    /// # Panics
    ///
    /// Panics if a root already exists (programming error in tree setup).
    pub fn add_root(&mut self, name: &str, sched: Box<dyn SchedulingTransaction>) -> NodeId {
        assert!(self.root.is_none(), "tree already has a root");
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(BuilderNode {
            name: name.to_string(),
            parent: None,
            children: Vec::new(),
            sched,
            shaper: None,
            flow_fn: None,
            backend: None,
        });
        self.root = Some(id);
        id
    }

    /// Add a child of `parent` with its scheduling transaction.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this builder.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        name: &str,
        sched: Box<dyn SchedulingTransaction>,
    ) -> NodeId {
        assert!(
            (parent.index()) < self.nodes.len(),
            "unknown parent {parent}"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(BuilderNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            sched,
            shaper: None,
            flow_fn: None,
            backend: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attach a shaping transaction to `node` (§2.3). One shaper per node —
    /// the paper's 1-to-1 scheduling/shaping relationship (§3.5).
    pub fn set_shaper(&mut self, node: NodeId, shaper: Box<dyn ShapingTransaction>) {
        self.nodes[node.index()].shaper = Some(shaper);
    }

    /// Override how packets map to flows at leaf `node` (e.g. HPFQ's leaf
    /// `Left` distinguishing flows A and B).
    pub fn set_flow_fn(&mut self, node: NodeId, f: FlowFn) {
        self.nodes[node.index()].flow_fn = Some(f);
    }

    /// Finish construction. `classifier` maps each packet to its leaf.
    /// The selected PIFO backend(s) are instantiated here, so the
    /// resulting tree never names a concrete queue type.
    ///
    /// The tree gets a **sole-owner** packet pool: a fresh single-port
    /// [`SharedPacketPool`] whose only
    /// admission gate is the builder's [`buffer_limit`](
    /// Self::buffer_limit) — exactly the private per-tree slab semantics
    /// this constructor has always had. Use
    /// [`build_in_pool`](Self::build_in_pool) to share one pool (and its
    /// §6.1 admission thresholds) across many trees.
    pub fn build(self, classifier: Classifier) -> Result<ScheduleTree, TreeError> {
        let pool = PoolHandle::sole_owner(self.buffer_limit);
        self.finish(classifier, pool)
    }

    /// Finish construction against a port handle of a shared packet pool
    /// (§5.1's one-buffer-for-all-ports memory system): the tree buffers
    /// every packet in the pool's slab, and the pool's
    /// [`AdmissionPolicy`](crate::pool::AdmissionPolicy) — not a private
    /// capacity — decides [`TreeError::BufferFull`] rejects.
    ///
    /// # Panics
    ///
    /// Panics if [`buffer_limit`](Self::buffer_limit) was also set: a
    /// pooled tree's admission belongs to the pool, and silently ignoring
    /// the limit would mask a configuration bug.
    ///
    /// ```
    /// use pifo_core::pool::{AdmissionPolicy, SharedPacketPool};
    /// use pifo_core::prelude::*;
    ///
    /// let pool = SharedPacketPool::new(4, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
    ///     .into_shared();
    /// let mut trees: Vec<ScheduleTree> = (0..2)
    ///     .map(|_| {
    ///         let mut b = TreeBuilder::new();
    ///         let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
    ///             Rank(ctx.now.as_nanos())
    ///         })));
    ///         b.build_in_pool(Box::new(move |_| root), pool.register_port()).unwrap()
    ///     })
    ///     .collect();
    ///
    /// trees[0].enqueue(Packet::new(0, FlowId(1), 100, Nanos(0)), Nanos(0)).unwrap();
    /// trees[1].enqueue(Packet::new(1, FlowId(2), 100, Nanos(0)), Nanos(0)).unwrap();
    /// assert_eq!(pool.stats().live, 2, "both trees buffer in one slab");
    /// ```
    pub fn build_in_pool(
        self,
        classifier: Classifier,
        pool: PoolHandle,
    ) -> Result<ScheduleTree, TreeError> {
        assert!(
            self.buffer_limit.is_none(),
            "buffer_limit is a sole-owner setting; a pooled tree's admission \
             is governed by the shared pool's capacity and policy"
        );
        self.finish(classifier, pool)
    }

    fn finish(self, classifier: Classifier, pool: PoolHandle) -> Result<ScheduleTree, TreeError> {
        let root = self.root.ok_or(TreeError::Empty)?;
        if self.nodes[root.index()].shaper.is_some() {
            return Err(TreeError::ShaperOnRoot);
        }
        let default_backend = self.backend;
        let nodes: Vec<Node> = self
            .nodes
            .into_iter()
            .map(|n| {
                let backend = n.backend.unwrap_or(default_backend);
                Node {
                    name: n.name,
                    parent: n.parent,
                    children: n.children,
                    sched: n.sched,
                    shaper: n.shaper,
                    flow_fn: n.flow_fn,
                    backend,
                    sched_pifo: backend.make_enum(),
                    shaping_len: 0,
                }
            })
            .collect();
        let has_shapers = nodes.iter().any(|n: &Node| n.shaper.is_some());
        Ok(ScheduleTree {
            nodes,
            root,
            classifier,
            pool,
            agenda: BinaryHeap::new(),
            agenda_seq: 0,
            buffered: 0,
            shaped: 0,
            dangling_shaped: 0,
            shaping_inspections: 0,
            has_shapers,
            scratch: Vec::new(),
            run_scratch: Vec::new(),
            tracker: self.track_inversions.then(InversionTracker::new),
            recorder: self
                .ring_capacity
                .map(|cap| Box::new(FlightRecorder::new(cap))),
            paths: self.path_records.then(|| Box::new(PathRecorder::new())),
        })
    }
}

/// A runnable tree of scheduling and shaping transactions — the complete
/// programming model of §2 in one object.
pub struct ScheduleTree {
    nodes: Vec<Node>,
    root: NodeId,
    classifier: Classifier,
    /// This tree's port into its packet pool — a sole-owner pool for
    /// trees built with [`TreeBuilder::build`] (whose capacity is the
    /// builder's `buffer_limit`), or one port of a fabric-wide shared
    /// pool for [`TreeBuilder::build_in_pool`].
    pool: PoolHandle,
    /// Tree-wide shaping agenda: every parked walk, globally min-ordered
    /// by `(release, node, seq)`.
    agenda: BinaryHeap<Reverse<AgendaEntry>>,
    agenda_seq: u64,
    buffered: usize,
    shaped: usize,
    /// Parked entries that are the *sole* owner of their buffer slot —
    /// their packet already departed through an earlier reference.
    dangling_shaped: usize,
    shaping_inspections: u64,
    /// True when any node carries a shaping transaction — fixed at build,
    /// lets the batch paths document/skip release work for
    /// work-conserving trees.
    has_shapers: bool,
    /// Reusable buffer for [`ScheduleTree::dequeue_upto`]'s single-node
    /// fast path, so steady-state batch drains allocate nothing.
    scratch: Vec<(Rank, Element)>,
    /// Reusable buffer for [`ScheduleTree::enqueue_batch`]'s same-leaf
    /// run accumulation.
    run_scratch: Vec<(Rank, PktHandle)>,
    /// When enabled, every root-level dequeue rank is scored for
    /// inversions/unpifoness (O(1) per dequeue). `None` keeps the hot
    /// path tracker-free.
    tracker: Option<InversionTracker>,
    /// Flight recorder for this tree's trace events; `None` keeps every
    /// hook site at a single null check.
    recorder: Option<Box<FlightRecorder>>,
    /// Per-packet path records keyed by pool slot; `None` keeps the hot
    /// path digest-free.
    paths: Option<Box<PathRecorder>>,
}

impl fmt::Debug for ScheduleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleTree")
            .field("nodes", &self.nodes.len())
            .field("root", &self.root)
            .field("buffered", &self.buffered)
            .field("shaped", &self.shaped)
            .finish()
    }
}

/// Resolve the flow an element belongs to at a node: the node's override
/// when set, the packet's own flow otherwise. A free function (not a
/// `&self` method) so callers can hold `&mut` node borrows alongside the
/// slab borrow feeding `packet`.
fn flow_of(flow_fn: &Option<FlowFn>, packet: &Packet) -> FlowId {
    match flow_fn {
        Some(f) => f(packet),
        None => packet.flow,
    }
}

impl ScheduleTree {
    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of packets currently buffered (across all leaves).
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// True when no packet is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Number of elements currently held back by shaping transactions.
    pub fn shaped_len(&self) -> usize {
        self.shaped
    }

    /// Name given to `node` at construction.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Children of `node`, in insertion order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids, root first (construction order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The queue engine backing `node`'s PIFOs.
    pub fn node_backend(&self, node: NodeId) -> PifoBackend {
        self.nodes[node.index()].backend
    }

    /// Scheduling-PIFO occupancy of `node` (for tests and introspection).
    pub fn sched_pifo_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].sched_pifo.len()
    }

    /// Shaping occupancy of `node`: entries parked on the tree-wide
    /// agenda waiting on this node's shaping transaction.
    pub fn shaping_pifo_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].shaping_len
    }

    /// Read-only view of the packet-pool slab this tree buffers into
    /// (occupancy, capacity, coherence checks — see [`SharedPacketPool`]).
    ///
    /// For a pooled tree this is the **shared** slab, so `live()` counts
    /// every port's packets; use [`pool_handle`](Self::pool_handle) for
    /// this tree's own occupancy.
    pub fn packet_buffer(&self) -> &SharedPacketPool {
        self.pool.pool()
    }

    /// This tree's port handle into its packet pool (port index,
    /// per-port occupancy and reject counters, the shared pool itself).
    pub fn pool_handle(&self) -> &PoolHandle {
        &self.pool
    }

    /// Parked shaping entries that are the sole owner of their buffer
    /// slot: their packet already departed through an earlier reference
    /// to the same leaf, but its header fields are still needed by
    /// ancestor transactions at release time. Together with [`len`](
    /// Self::len) this accounts for every live slab slot:
    /// `packet_buffer().live() == len() + shaped_refs_holding_packets()`.
    pub fn shaped_refs_holding_packets(&self) -> usize {
        self.dangling_shaped
    }

    /// Number of times [`release_due`](Self::release_due) actually
    /// examined the shaping agenda. Work-conserving trees (no shaper ever
    /// parks an element) stay at 0 forever — the dequeue hot path
    /// performs zero shaping inspections.
    pub fn shaping_inspections(&self) -> u64 {
        self.shaping_inspections
    }

    /// Enqueue `packet` at wall-clock time `now`.
    ///
    /// Executes one scheduling transaction per node on the leaf→root path,
    /// suspending at shaping nodes per Fig 5. Any shaped elements whose
    /// release time is ≤ `now` are released first, so external callers can
    /// drive the tree with only `enqueue`/`dequeue` and
    /// [`next_shaping_event`](Self::next_shaping_event).
    ///
    /// **Time contract:** successive calls into one tree must use
    /// non-decreasing `now` values (a switch experiences time forward).
    /// Going backwards does not corrupt the structure, but shaped
    /// elements already released by a later-timed call stay released.
    pub fn enqueue(&mut self, packet: Packet, now: Nanos) -> Result<(), TreeError> {
        self.release_due(now);
        let leaf = (self.classifier)(&packet);
        if leaf.index() >= self.nodes.len() {
            self.emit(
                EventKind::Drop,
                now,
                leaf.0,
                packet.flow,
                packet.id.0,
                drop_reason::UNKNOWN_NODE,
            );
            return Err(TreeError::UnknownNode(leaf));
        }
        if !self.nodes[leaf.index()].children.is_empty() {
            self.emit(
                EventKind::Drop,
                now,
                leaf.0,
                packet.flow,
                packet.id.0,
                drop_reason::NOT_A_LEAF,
            );
            return Err(TreeError::NotALeaf(leaf));
        }
        // Admission is the pool insert itself, before any other state
        // changes: a policy or capacity reject hands the caller's packet
        // back unchanged (moved, never cloned).
        let handle = match self.pool.try_insert(packet) {
            Ok(h) => h,
            Err(packet) => {
                self.emit(
                    EventKind::Drop,
                    now,
                    leaf.0,
                    packet.flow,
                    packet.id.0,
                    drop_reason::BUFFER_FULL,
                );
                return Err(TreeError::BufferFull(packet));
            }
        };

        // Leaf: the element is a handle to the buffered packet.
        let (leaf_rank, leaf_flow, leaf_depth) = {
            let node = &mut self.nodes[leaf.index()];
            let p = self.pool.get(handle);
            let flow = flow_of(&node.flow_fn, p);
            let ctx = EnqCtx {
                packet: p,
                now,
                flow,
            };
            let rank = node.sched.rank(&ctx);
            let depth = node.sched_pifo.len();
            node.sched_pifo.push(rank, Element::Packet(handle));
            (rank, flow, depth)
        };
        if self.recorder.is_some() || self.paths.is_some() {
            self.note_admission(handle, leaf, leaf_rank, leaf_flow, leaf_depth, now);
        }
        if leaf == self.root {
            // Single-node tree: the leaf PIFO *is* the departure
            // schedule, so its pushes feed the inversion tracker.
            if let Some(t) = &mut self.tracker {
                t.record_push(leaf_rank);
            }
        }
        self.buffered += 1;

        self.after_insert(leaf, handle, now, false);
        Ok(())
    }

    /// Continue the upward walk after an element entered `node`'s
    /// scheduling PIFO: either suspend at `node`'s shaper or push a
    /// reference into the parent (and recurse).
    ///
    /// `owns_ref` is true when this walk is a shaping *resumption* and
    /// therefore carries the popped agenda entry's buffer reference; a
    /// fresh enqueue walk does not (the leaf element holds the packet).
    fn after_insert(&mut self, node: NodeId, handle: PktHandle, now: Nanos, owns_ref: bool) {
        if self.nodes[node.index()].shaper.is_some() {
            let release;
            {
                let n = &mut self.nodes[node.index()];
                let p = self.pool.get(handle);
                let flow = flow_of(&n.flow_fn, p);
                let ctx = EnqCtx {
                    packet: p,
                    now,
                    flow,
                };
                release = n.shaper.as_mut().expect("checked above").send_time(&ctx);
            }
            if !owns_ref {
                // The parked entry keeps the packet's fields alive even if
                // the packet departs through an earlier reference first.
                self.pool.retain(handle);
            }
            self.agenda.push(Reverse(AgendaEntry {
                release: release.as_nanos(),
                node: node.0,
                seq: self.agenda_seq,
                handle,
            }));
            self.agenda_seq += 1;
            self.shaped += 1;
            self.nodes[node.index()].shaping_len += 1;
            if self.recorder.is_some() {
                let flow = self.pool.get(handle).flow;
                self.emit(
                    EventKind::ShapingPark,
                    now,
                    node.0,
                    flow,
                    release.as_nanos(),
                    handle.index() as u32,
                );
            }
            return; // Suspended: the parent sees nothing until release.
        }
        self.push_ref_to_parent(node, handle, now, owns_ref);
    }

    /// Push `Ref(node)` into `node`'s parent scheduling PIFO, executing the
    /// parent's scheduling transaction, then continue upward.
    fn push_ref_to_parent(&mut self, node: NodeId, handle: PktHandle, now: Nanos, owns_ref: bool) {
        let Some(parent) = self.nodes[node.index()].parent else {
            // Reached the root: walk complete. A resumption drops the
            // agenda entry's buffer reference; if the packet already
            // departed, that frees the slot.
            if owns_ref {
                let flow = if self.recorder.is_some() {
                    self.pool.get(handle).flow
                } else {
                    FlowId(0)
                };
                if self.pool.release(handle).is_some() {
                    self.dangling_shaped -= 1;
                    self.emit(
                        EventKind::PoolFree,
                        now,
                        node.0,
                        flow,
                        handle.index() as u64,
                        0,
                    );
                }
            }
            return;
        };
        let (rank, depth) = {
            let pnode = &mut self.nodes[parent.index()];
            let p = self.pool.get(handle);
            let ctx = EnqCtx {
                packet: p,
                now,
                flow: node.as_flow(),
            };
            let rank = pnode.sched.rank(&ctx);
            let depth = pnode.sched_pifo.len();
            pnode.sched_pifo.push(rank, Element::Ref(node));
            (rank, depth)
        };
        if let Some(paths) = &mut self.paths {
            paths.hop(handle.index(), parent.0, rank.0, depth as u32, now);
        }
        if parent == self.root {
            // Root pushes feed the inversion tracker — these ranks are
            // the departure schedule the root pops score against.
            if let Some(t) = &mut self.tracker {
                t.record_push(rank);
            }
        }
        self.after_insert(parent, handle, now, owns_ref);
    }

    /// Release every shaped element whose wall-clock time has arrived,
    /// resuming the suspended walks in release-time order (ties broken by
    /// node index, then FIFO — the agenda's `(release, node, seq)` order,
    /// identical to the historical per-node-scan order). A resumed walk
    /// may suspend again at a higher shaper; if that release time has also
    /// passed it is processed in the same call.
    ///
    /// Work-conserving trees exit in O(1) on `shaped == 0` without
    /// touching the agenda; shaped trees pay O(log s) per released entry.
    pub fn release_due(&mut self, now: Nanos) {
        while self.shaped > 0 {
            self.shaping_inspections += 1;
            match self.agenda.peek() {
                Some(Reverse(e)) if e.release <= now.as_nanos() => {}
                _ => return,
            }
            let Reverse(e) = self.agenda.pop().expect("peeked entry vanished");
            self.shaped -= 1;
            self.nodes[e.node as usize].shaping_len -= 1;
            if self.recorder.is_some() {
                let flow = self.pool.get(e.handle).flow;
                self.emit(
                    EventKind::ShapingRelease,
                    now,
                    e.node,
                    flow,
                    e.release,
                    e.handle.index() as u32,
                );
            }
            self.push_ref_to_parent(NodeId(e.node), e.handle, now, true);
        }
    }

    /// The earliest pending shaping release time, if any. A simulator
    /// should call [`release_due`](Self::release_due) (or any
    /// enqueue/dequeue) at or after this instant. O(1) via the agenda.
    pub fn next_shaping_event(&self) -> Option<Nanos> {
        self.agenda.peek().map(|Reverse(e)| Nanos(e.release))
    }

    /// Dequeue the next packet at wall-clock time `now`: walk from the root
    /// popping one element per level until a packet is reached (Fig 2).
    ///
    /// Returns `None` if the root PIFO is empty — which, with shapers, can
    /// happen even while packets are buffered (non-work-conserving).
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.release_due(now);
        self.dequeue_walk(now)
    }

    /// The root-to-packet walk of [`dequeue`](Self::dequeue), without the
    /// preceding shaping-release pass. Factored out so
    /// [`dequeue_upto`](Self::dequeue_upto) can release once per batch:
    /// a walk never parks new agenda entries, so at a fixed `now` one
    /// release pass covers any number of subsequent walks.
    fn dequeue_walk(&mut self, now: Nanos) -> Option<Packet> {
        let mut node = self.root;
        loop {
            let (rank, elem) = self.nodes[node.index()].sched_pifo.pop()?;
            // The first pop of the walk is the root's scheduling
            // decision — the rank whose ordering defines the tree's
            // departure schedule, so it is what inversion tracking
            // scores.
            if node == self.root {
                if let Some(t) = &mut self.tracker {
                    t.record_pop(rank);
                }
            }
            match elem {
                Element::Packet(h) => {
                    let flow = {
                        let n = &self.nodes[node.index()];
                        flow_of(&n.flow_fn, self.pool.get(h))
                    };
                    self.nodes[node.index()]
                        .sched
                        .on_dequeue(rank, &DeqCtx { now, flow });
                    self.buffered -= 1;
                    if self.recorder.is_some() || self.paths.is_some() {
                        let remaining = self.buffered as u32;
                        self.emit(EventKind::Dequeue, now, node.0, flow, rank.0, remaining);
                        if let Some(paths) = &mut self.paths {
                            paths.finish(h.index(), now);
                        }
                    }
                    // Common case: the leaf element is the last holder and
                    // the packet moves out of its slot, zero-copy. Rare
                    // case: a parked shaping entry still needs the fields
                    // (this packet overtook its own suspended reference),
                    // so the slot stays live until that entry resumes.
                    return Some(match self.pool.release(h) {
                        Some(p) => {
                            self.emit(EventKind::PoolFree, now, node.0, flow, h.index() as u64, 0);
                            p
                        }
                        None => {
                            self.dangling_shaped += 1;
                            self.pool.get(h).clone()
                        }
                    });
                }
                Element::Ref(child) => {
                    self.nodes[node.index()].sched.on_dequeue(
                        rank,
                        &DeqCtx {
                            now,
                            flow: child.as_flow(),
                        },
                    );
                    debug_assert!(
                        !self.nodes[child.index()].sched_pifo.is_empty(),
                        "dequeued a reference to empty child {child} — tree invariant broken"
                    );
                    node = child;
                }
            }
        }
    }

    /// Enqueue a whole arrival batch at wall-clock time `now`, returning
    /// the per-packet errors (empty when every packet was admitted).
    ///
    /// **Byte-identical to the per-packet path**: the batch behaves
    /// exactly as one [`enqueue`](Self::enqueue) call per packet, in
    /// order — including the release of shaped elements that become due
    /// *mid-batch* (a shaper may park an element due at `now` itself).
    ///
    /// What the batch amortizes: slab growth (one
    /// [`SharedPacketPool::reserve`] for the whole batch), and on
    /// **work-conserving** trees the batch is additionally *run-ranked*:
    /// consecutive arrivals classified to the same leaf (exactly what
    /// incast fan-in produces) are ranked in arrival order but pushed
    /// with one [`PifoQueue::push_batch`] per tree level — one leaf
    /// batch of packet handles, then one batch of child references per
    /// ancestor — instead of one full leaf→root walk per packet. Each
    /// *node* still observes the exact per-packet rank-call sequence,
    /// and `push_batch` keeps FIFO tie order; what run-ranking changes
    /// is the interleaving of rank calls *across* nodes (all leaf ranks
    /// of a run, then each ancestor's). Byte-identity therefore
    /// requires what every transaction in this workspace already
    /// satisfies: a node's rank may depend on its own state and on
    /// `(packet, now, flow)`, but **not** on mutable state shared with
    /// another node's transaction. A tree whose transactions covertly
    /// share state (e.g. two `FnTransaction`s over one
    /// `Rc<RefCell<..>>`) must use per-packet [`enqueue`](Self::enqueue)
    /// instead. Trees with shapers always take the per-packet path (a
    /// mid-batch release must interleave exactly).
    ///
    /// ```
    /// use pifo_core::prelude::*;
    ///
    /// let mut b = TreeBuilder::new();
    /// let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
    ///     Rank(ctx.now.as_nanos())
    /// })));
    /// let mut tree = b.build(Box::new(move |_| root)).unwrap();
    ///
    /// let batch: Vec<Packet> = (0..3)
    ///     .map(|i| Packet::new(i, FlowId(0), 100, Nanos(5)))
    ///     .collect();
    /// let errors = tree.enqueue_batch(batch, Nanos(5));
    /// assert!(errors.is_empty());
    /// assert_eq!(tree.len(), 3);
    /// ```
    pub fn enqueue_batch(
        &mut self,
        packets: impl IntoIterator<Item = Packet>,
        now: Nanos,
    ) -> Vec<TreeError> {
        let packets = packets.into_iter();
        self.pool.reserve(packets.size_hint().0);
        let mut errors = Vec::new();
        if self.has_shapers {
            // Reference path: a shaped element parked by one packet can
            // become due for the next at the same `now`; the per-packet
            // loop keeps that interleaving byte-exact.
            for p in packets {
                if let Err(e) = self.enqueue(p, now) {
                    errors.push(e);
                }
            }
            return errors;
        }
        // Work-conserving fast path: rank in arrival order, but push each
        // consecutive same-leaf run with one `push_batch` per tree level.
        debug_assert_eq!(self.shaped, 0, "work-conserving trees never park");
        let mut run_leaf = NodeId::INVALID;
        for packet in packets {
            let leaf = (self.classifier)(&packet);
            if leaf.index() >= self.nodes.len() {
                // Invalid packets touch no state, so the open run — if
                // any — continues across them, exactly as sequentially.
                self.emit(
                    EventKind::Drop,
                    now,
                    leaf.0,
                    packet.flow,
                    packet.id.0,
                    drop_reason::UNKNOWN_NODE,
                );
                errors.push(TreeError::UnknownNode(leaf));
                continue;
            }
            if !self.nodes[leaf.index()].children.is_empty() {
                self.emit(
                    EventKind::Drop,
                    now,
                    leaf.0,
                    packet.flow,
                    packet.id.0,
                    drop_reason::NOT_A_LEAF,
                );
                errors.push(TreeError::NotALeaf(leaf));
                continue;
            }
            if leaf != run_leaf && !self.run_scratch.is_empty() {
                self.flush_run(run_leaf, now);
            }
            run_leaf = leaf;
            // Admission in arrival order: the pool's occupancy counters
            // see every insert at the same point the sequential path
            // would (pushes never change occupancy, so deferring them to
            // the flush cannot change an admission decision).
            let handle = match self.pool.try_insert(packet) {
                Ok(h) => h,
                Err(p) => {
                    self.emit(
                        EventKind::Drop,
                        now,
                        leaf.0,
                        p.flow,
                        p.id.0,
                        drop_reason::BUFFER_FULL,
                    );
                    errors.push(TreeError::BufferFull(p));
                    continue;
                }
            };
            // Leaf rank now — transactions are stateful, so the rank-call
            // order must be arrival order — but the push is deferred.
            let (rank, flow) = {
                let node = &mut self.nodes[leaf.index()];
                let p = self.pool.get(handle);
                let flow = flow_of(&node.flow_fn, p);
                let rank = node.sched.rank(&EnqCtx {
                    packet: p,
                    now,
                    flow,
                });
                (rank, flow)
            };
            if self.recorder.is_some() || self.paths.is_some() {
                // The leaf depth the sequential path would have seen:
                // the PIFO's current length plus this run's
                // still-deferred pushes — keeps the batched event stream
                // byte-identical to per-packet enqueues.
                let depth = self.nodes[leaf.index()].sched_pifo.len() + self.run_scratch.len();
                self.note_admission(handle, leaf, rank, flow, depth, now);
            }
            self.run_scratch.push((rank, handle));
        }
        if !self.run_scratch.is_empty() {
            self.flush_run(run_leaf, now);
        }
        errors
    }

    /// Flush an accumulated same-leaf run (see
    /// [`enqueue_batch`](Self::enqueue_batch)): one leaf `push_batch` of
    /// the pre-computed `(rank, handle)` pairs, then — walking toward the
    /// root — one per-packet rank pass and one `push_batch` of child
    /// references per ancestor. Only reachable on work-conserving trees,
    /// so no walk can suspend mid-run.
    fn flush_run(&mut self, leaf: NodeId, now: Nanos) {
        let run = std::mem::take(&mut self.run_scratch);
        self.buffered += run.len();
        if let [(rank, handle)] = run[..] {
            // A run of one (arrivals alternating between leaves): the
            // batch machinery would only add `Vec` traffic, so finish
            // with plain pushes — allocation-free, like `enqueue`.
            self.nodes[leaf.index()]
                .sched_pifo
                .push(rank, Element::Packet(handle));
            if leaf == self.root {
                if let Some(t) = &mut self.tracker {
                    t.record_push(rank);
                }
            }
            let mut node = leaf;
            while let Some(parent) = self.nodes[node.index()].parent {
                let rank = {
                    let pnode = &mut self.nodes[parent.index()];
                    pnode.sched.rank(&EnqCtx {
                        packet: self.pool.get(handle),
                        now,
                        flow: node.as_flow(),
                    })
                };
                if let Some(paths) = &mut self.paths {
                    let depth = self.nodes[parent.index()].sched_pifo.len();
                    paths.hop(handle.index(), parent.0, rank.0, depth as u32, now);
                }
                self.nodes[parent.index()]
                    .sched_pifo
                    .push(rank, Element::Ref(node));
                if parent == self.root {
                    if let Some(t) = &mut self.tracker {
                        t.record_push(rank);
                    }
                }
                node = parent;
            }
        } else {
            let elems: Vec<(Rank, Element)> = run
                .iter()
                .map(|&(rank, h)| (rank, Element::Packet(h)))
                .collect();
            if leaf == self.root {
                if let Some(t) = &mut self.tracker {
                    for &(rank, _) in &elems {
                        t.record_push(rank);
                    }
                }
            }
            let rejected = self.nodes[leaf.index()].sched_pifo.push_batch(elems);
            debug_assert!(rejected.is_empty(), "node PIFOs are unbounded");
            let mut node = leaf;
            while let Some(parent) = self.nodes[node.index()].parent {
                let mut elems: Vec<(Rank, Element)> = Vec::with_capacity(run.len());
                {
                    let pnode = &mut self.nodes[parent.index()];
                    for &(_, h) in &run {
                        let ctx = EnqCtx {
                            packet: self.pool.get(h),
                            now,
                            flow: node.as_flow(),
                        };
                        elems.push((pnode.sched.rank(&ctx), Element::Ref(node)));
                    }
                }
                if parent == self.root {
                    if let Some(t) = &mut self.tracker {
                        for &(rank, _) in &elems {
                            t.record_push(rank);
                        }
                    }
                }
                if let Some(paths) = &mut self.paths {
                    // Depth as the sequential path would have seen it:
                    // the PIFO's length before this level's batch plus
                    // the run entries conceptually pushed ahead of each.
                    let base = self.nodes[parent.index()].sched_pifo.len();
                    for (idx, (&(_, h), &(rank, _))) in run.iter().zip(elems.iter()).enumerate() {
                        paths.hop(h.index(), parent.0, rank.0, (base + idx) as u32, now);
                    }
                }
                let rejected = self.nodes[parent.index()].sched_pifo.push_batch(elems);
                debug_assert!(rejected.is_empty(), "node PIFOs are unbounded");
                node = parent;
            }
        }
        // Hand the allocation back for the next run.
        self.run_scratch = run;
        self.run_scratch.clear();
    }

    /// Dequeue up to `max` packets at wall-clock time `now`, appending
    /// them to `out` in departure order; returns how many were dequeued
    /// (fewer than `max` when the tree empties or every remaining packet
    /// is held back by a shaper).
    ///
    /// **Byte-identical to the per-packet path**: `dequeue_upto(now, n)`
    /// returns exactly what `n` successive [`dequeue`](Self::dequeue)
    /// calls at the same `now` would — shaped elements are released once
    /// up front, which is equivalent because a dequeue walk never parks
    /// new agenda entries and time does not advance inside the batch
    /// (enforced by the cross-backend differential tests).
    ///
    /// What the batch amortizes: the shaping-release pass runs once
    /// instead of once per packet, and a **single-node tree** (the common
    /// flat per-port scheduler) takes the entire batch off its root PIFO
    /// through one [`PifoQueue::pop_batch`] — on the
    /// [bucket backend](crate::pifo::BucketPifo) that means one bitmap
    /// step per calendar bucket rather than per packet.
    ///
    /// ```
    /// use pifo_core::prelude::*;
    ///
    /// let mut b = TreeBuilder::new();
    /// b.with_backend(PifoBackend::Bucket);
    /// let root = b.add_root("prio", Box::new(FnTransaction::new("prio", |ctx: &EnqCtx| {
    ///     Rank(ctx.packet.class as u64)
    /// })));
    /// let mut tree = b.build(Box::new(move |_| root)).unwrap();
    /// for i in 0..4u64 {
    ///     let p = Packet::new(i, FlowId(0), 100, Nanos(i)).with_class((3 - i as u8) % 4);
    ///     tree.enqueue(p, Nanos(i)).unwrap();
    /// }
    ///
    /// let mut out = Vec::new();
    /// assert_eq!(tree.dequeue_upto(Nanos(10), 3, &mut out), 3);
    /// let classes: Vec<u8> = out.iter().map(|p| p.class).collect();
    /// assert_eq!(classes, vec![0, 1, 2], "highest priority first");
    /// assert_eq!(tree.len(), 1);
    /// ```
    pub fn dequeue_upto(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        self.release_due(now);
        let before = out.len();
        if self.nodes.len() == 1 {
            // Fast path: the root is the only (leaf) node, so the batch
            // is exactly the PIFO's head prefix. A single-node tree can
            // hold no shaper (`ShaperOnRoot`), so every element is a
            // sole-owner packet handle.
            let Self {
                nodes,
                pool,
                buffered,
                scratch,
                tracker,
                recorder,
                paths,
                ..
            } = self;
            let mut batch = std::mem::take(scratch);
            let node = &mut nodes[0];
            node.sched_pifo.pop_batch(max, &mut batch);
            *buffered -= batch.len();
            out.reserve(batch.len());
            if let Some(t) = tracker {
                // Single-node trees pop root ranks directly: score the
                // whole batch (same ranks the per-packet walk would see).
                for (rank, _) in &batch {
                    t.record_pop(*rank);
                }
            }
            // Telemetry mirrors `dequeue_walk` per element: `remaining`
            // counts down as if each pop were its own dequeue, so the
            // batched event stream is byte-identical to per-packet.
            let telemetry_on = recorder.is_some() || paths.is_some();
            let port = pool.port() as u16;
            let mut remaining = *buffered + batch.len();
            for (rank, elem) in batch.drain(..) {
                let Element::Packet(h) = elem else {
                    unreachable!("single-node tree PIFOs hold only packets")
                };
                // Move the packet out first (sole holder — a single-node
                // tree cannot park shaping refs), then feed `on_dequeue`
                // from the moved copy: one slab access per packet instead
                // of a borrow + a release.
                let p = pool
                    .release(h)
                    .expect("single-node slots have exactly one holder");
                let flow = flow_of(&node.flow_fn, &p);
                node.sched.on_dequeue(rank, &DeqCtx { now, flow });
                if telemetry_on {
                    remaining -= 1;
                    if let Some(r) = recorder.as_deref_mut() {
                        r.record(TraceEvent {
                            time: now,
                            kind: EventKind::Dequeue,
                            port,
                            node: 0,
                            flow,
                            value: rank.0,
                            aux: remaining as u32,
                        });
                        r.record(TraceEvent {
                            time: now,
                            kind: EventKind::PoolFree,
                            port,
                            node: 0,
                            flow,
                            value: h.index() as u64,
                            aux: 0,
                        });
                    }
                    if let Some(pr) = paths.as_deref_mut() {
                        pr.finish(h.index(), now);
                    }
                }
                out.push(p);
            }
            self.scratch = batch;
            return out.len() - before;
        }
        while out.len() - before < max {
            match self.dequeue_walk(now) {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out.len() - before
    }

    /// True when any node of this tree carries a shaping transaction
    /// (fixed at build time). Work-conserving trees (`false`) never touch
    /// the shaping agenda — see
    /// [`shaping_inspections`](Self::shaping_inspections).
    pub fn has_shapers(&self) -> bool {
        self.has_shapers
    }

    /// Switch on per-dequeue rank-inversion tracking from this point
    /// (idempotent — an already-running tracker keeps its counters).
    /// Usually set at build time via [`TreeBuilder::track_inversions`].
    /// Packets already queued when tracking starts are counted as
    /// dequeues but not scored (their root ranks were never observed).
    pub fn enable_inversion_tracking(&mut self) {
        if self.tracker.is_none() {
            self.tracker = Some(InversionTracker::new());
        }
    }

    /// Inversion counters accumulated over every dequeue since tracking
    /// began; `None` when tracking is off. An exact backend always
    /// reports zero inversions here — the root PIFO pops in rank order
    /// by contract — so a non-zero count is the measured cost of an
    /// approximate backend at the root.
    pub fn inversion_stats(&self) -> Option<InversionStats> {
        self.tracker.as_ref().map(|t| t.stats())
    }

    /// Zero the inversion counters, keeping tracking enabled (the
    /// tracker's view of what is currently queued is preserved, so
    /// future dequeues keep scoring correctly). No-op when tracking is
    /// off.
    pub fn reset_inversion_stats(&mut self) {
        if let Some(t) = &mut self.tracker {
            t.reset();
        }
    }

    /// Switch on flight recording from this point with a ring retaining
    /// `capacity` events (idempotent — an existing recorder keeps its
    /// ring and counters). Usually set at build time via
    /// [`TreeBuilder::with_flight_recorder`].
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        if self.recorder.is_none() {
            self.recorder = Some(Box::new(FlightRecorder::new(capacity)));
        }
    }

    /// The flight recorder, when enabled (its events, lifetime counts
    /// and JSON dump — see [`FlightRecorder`]).
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Switch on per-packet path records from this point (idempotent).
    /// Packets already buffered get no record — only walks observed
    /// from here on are digested. Usually set at build time via
    /// [`TreeBuilder::with_path_records`].
    pub fn enable_path_records(&mut self) {
        if self.paths.is_none() {
            self.paths = Some(Box::new(PathRecorder::new()));
        }
    }

    /// True when per-packet path records are being collected.
    pub fn path_records_enabled(&self) -> bool {
        self.paths.is_some()
    }

    /// Take every completed [`PathRecord`], in departure order. Empty
    /// when path records are disabled. The `departed` stamp is the tree
    /// dequeue instant; drivers that model transmission (e.g.
    /// `pifo-sim`'s switch) overwrite it with the transmit start so the
    /// record's wait reconciles exactly with the departure trace.
    pub fn drain_path_records(&mut self) -> Vec<PathRecord> {
        self.paths
            .as_mut()
            .map(|p| p.drain_completed())
            .unwrap_or_default()
    }

    /// Record one event when the flight recorder is enabled — the single
    /// `Option`-gated funnel every tree hook goes through.
    #[inline]
    fn emit(&mut self, kind: EventKind, now: Nanos, node: u32, flow: FlowId, value: u64, aux: u32) {
        if let Some(r) = &mut self.recorder {
            r.record(TraceEvent {
                time: now,
                kind,
                port: self.pool.port() as u16,
                node,
                flow,
                value,
                aux,
            });
        }
    }

    /// Telemetry for one admitted packet, shared by the per-packet and
    /// batched enqueue paths so both produce the identical stream:
    /// `PoolAlloc` then `Enqueue`, plus the path record's leaf hop.
    fn note_admission(
        &mut self,
        handle: PktHandle,
        leaf: NodeId,
        rank: Rank,
        flow: FlowId,
        depth: usize,
        now: Nanos,
    ) {
        let slot = handle.index();
        self.emit(EventKind::PoolAlloc, now, leaf.0, flow, slot as u64, 0);
        self.emit(EventKind::Enqueue, now, leaf.0, flow, rank.0, depth as u32);
        if let Some(paths) = &mut self.paths {
            let id = self.pool.get(handle).id.0;
            let port = self.pool.port() as u16;
            paths.begin(slot, id, flow, port, now);
            paths.hop(slot, leaf.0, rank.0, depth as u32, now);
        }
    }

    /// Peek the packet that `dequeue` would return *right now*, without
    /// mutating any state. The returned reference borrows the packet in
    /// place in the pool's slab.
    ///
    /// **No time passes**: due-but-unreleased shaped elements are *not*
    /// released first, so with shapers `peek()` can disagree with
    /// [`dequeue`](Self::dequeue) at a later `now` — `dequeue(now)`
    /// releases everything due at `now` before walking. Use
    /// [`peek_at`](Self::peek_at) to preview what `dequeue(now)` would
    /// return.
    pub fn peek(&self) -> Option<&Packet> {
        let mut node = self.root;
        let handle = loop {
            let (_, elem) = self.nodes[node.index()].sched_pifo.peek()?;
            match elem {
                Element::Packet(h) => break *h,
                Element::Ref(child) => node = *child,
            }
        };
        Some(self.pool.get(handle))
    }

    /// Peek the packet that [`dequeue`](Self::dequeue)`(now)` would
    /// return: releases every shaped element due at `now` first (which is
    /// why this takes `&mut self`), then walks the root path without
    /// popping. The same non-decreasing time contract as
    /// `enqueue`/`dequeue` applies.
    pub fn peek_at(&mut self, now: Nanos) -> Option<&Packet> {
        self.release_due(now);
        self.peek()
    }

    /// Render the instantaneous scheduling order of a node's PIFO as a
    /// debug string, e.g. `"[L@3, R@5, L@7]"` — used by the Fig 2 tests.
    pub fn debug_pifo(&self, node: NodeId) -> String {
        let items: Vec<String> = self.nodes[node.index()]
            .sched_pifo
            .iter_in_order()
            .map(|(r, e)| match e {
                Element::Packet(h) => format!("{}@{}", self.pool.get(*h).id, r),
                Element::Ref(c) => format!("{}@{}", self.node_name(*c), r),
            })
            .collect();
        format!("[{}]", items.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::Rank;
    use crate::transaction::FnTransaction;

    fn fifo_tx() -> Box<dyn SchedulingTransaction> {
        Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx<'_>| {
            Rank(ctx.now.as_nanos())
        }))
    }

    fn pkt(id: u64, flow: u32, t: u64) -> Packet {
        Packet::new(id, FlowId(flow), 100, Nanos(t))
    }

    /// Single-node tree behaves as one PIFO.
    #[test]
    fn single_node_fifo() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();

        tree.enqueue(pkt(0, 1, 10), Nanos(10)).unwrap();
        tree.enqueue(pkt(1, 2, 20), Nanos(20)).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.dequeue(Nanos(30)).unwrap().id.0, 0);
        assert_eq!(tree.dequeue(Nanos(30)).unwrap().id.0, 1);
        assert!(tree.dequeue(Nanos(30)).is_none());
        assert!(tree.is_empty());
    }

    /// Fig 2 reproduced literally: a root with two leaves L and R; packets
    /// P1..P4 with the ranks drawn in the figure dequeue as P3,P1,P2,P4.
    #[test]
    fn fig2_instantaneous_order() {
        // Fixed ranks per element, injected through packet "class" maps.
        // Leaf PIFOs:  L = [P3, P4], R = [P1, P2]
        // Root PIFO :  [L, R, R, L]
        // We reproduce exactly by assigning explicit ranks.
        let leaf_rank = |ranks: &'static [(u64, u64)]| {
            Box::new(FnTransaction::new("fixed", move |ctx: &EnqCtx<'_>| {
                let id = ctx.packet.id.0;
                Rank(
                    ranks
                        .iter()
                        .find(|(pid, _)| *pid == id)
                        .map(|(_, r)| *r)
                        .expect("unknown packet"),
                )
            })) as Box<dyn SchedulingTransaction>
        };
        // Root ranks chosen so the order of refs is L, R, R, L.
        let root_rank = Box::new(FnTransaction::new("fixed", |ctx: &EnqCtx<'_>| {
            Rank(match ctx.packet.id.0 {
                3 => 0, // P3 arrives at L -> ref L first
                1 => 1,
                2 => 2,
                4 => 3,
                _ => unreachable!(),
            })
        }));

        let mut b = TreeBuilder::new();
        let root = b.add_root("Root", root_rank);
        let left = b.add_child(root, "L", leaf_rank(&[(3, 0), (4, 1)]));
        let right = b.add_child(root, "R", leaf_rank(&[(1, 0), (2, 1)]));
        let mut tree = b
            .build(Box::new(
                move |p: &Packet| {
                    if p.flow.0 == 0 {
                        left
                    } else {
                        right
                    }
                },
            ))
            .unwrap();

        // Enqueue in the order P3, P1, P2, P4 (flow 0 = L, flow 1 = R).
        tree.enqueue(pkt(3, 0, 0), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 1, 1), Nanos(1)).unwrap();
        tree.enqueue(pkt(2, 1, 2), Nanos(2)).unwrap();
        tree.enqueue(pkt(4, 0, 3), Nanos(3)).unwrap();

        assert_eq!(tree.debug_pifo(root), "[L@0, R@1, R@2, L@3]");

        let order: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(10)))
            .map(|p| p.id.0)
            .collect();
        assert_eq!(order, vec![3, 1, 2, 4], "Fig 2: P3, P1, P2, P4");
    }

    /// Later arrivals with smaller ranks overtake buffered packets at the
    /// root — the push-in property lifted to trees.
    #[test]
    fn push_in_at_root_level() {
        let by_class = Box::new(FnTransaction::new("class", |ctx: &EnqCtx<'_>| {
            Rank(ctx.packet.class as u64)
        }));
        let mut b = TreeBuilder::new();
        let root = b.add_root("prio", by_class);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        tree.enqueue(pkt(0, 0, 0).with_class(5), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 0, 1).with_class(1), Nanos(1)).unwrap();
        assert_eq!(tree.dequeue(Nanos(2)).unwrap().id.0, 1);
        assert_eq!(tree.dequeue(Nanos(2)).unwrap().id.0, 0);
    }

    /// The classifier must return a leaf.
    #[test]
    fn classifier_must_hit_leaf() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let _leaf = b.add_child(root, "leaf", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        let err = tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap_err();
        assert_eq!(err, TreeError::NotALeaf(root));
    }

    /// Root shapers are rejected at build time.
    #[test]
    fn no_shaper_on_root() {
        struct NullShaper;
        impl ShapingTransaction for NullShaper {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                ctx.now
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        b.set_shaper(root, Box::new(NullShaper));
        let err = b.build(Box::new(move |_| root)).unwrap_err();
        assert_eq!(err, TreeError::ShaperOnRoot);
    }

    /// Buffer limit drops and reports the packet.
    #[test]
    fn buffer_limit_enforced() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        b.buffer_limit(2);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 0, 1), Nanos(1)).unwrap();
        match tree.enqueue(pkt(2, 0, 2), Nanos(2)) {
            Err(TreeError::BufferFull(p)) => assert_eq!(p.id.0, 2),
            other => panic!("expected BufferFull, got {other:?}"),
        }
        // Draining makes room again.
        tree.dequeue(Nanos(3));
        tree.enqueue(pkt(3, 0, 3), Nanos(3)).unwrap();
    }

    /// A shaper delays visibility at the parent: the packet sits in the
    /// leaf PIFO but the root stays empty until the release time.
    #[test]
    fn shaping_defers_parent_visibility() {
        struct FixedDelay(u64);
        impl ShapingTransaction for FixedDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                Nanos(ctx.now.as_nanos() + self.0)
            }
            fn name(&self) -> &str {
                "fixed-delay"
            }
        }

        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(FixedDelay(100)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.shaped_len(), 1);
        assert_eq!(tree.sched_pifo_len(leaf), 1);
        assert_eq!(
            tree.sched_pifo_len(root),
            0,
            "root must not see the ref yet"
        );

        // Before the release time: nothing to dequeue.
        assert!(tree.dequeue(Nanos(50)).is_none());
        assert_eq!(tree.next_shaping_event(), Some(Nanos(100)));

        // At the release time the walk resumes and the packet drains.
        let p = tree.dequeue(Nanos(100)).expect("released at t=100");
        assert_eq!(p.id.0, 0);
        assert_eq!(tree.shaped_len(), 0);
        assert!(tree.is_empty());
    }

    /// Two stacked shapers suspend/resume twice (Fig 5's multi-suspension).
    #[test]
    fn nested_shapers_resume_in_stages() {
        struct FixedAt(u64);
        impl ShapingTransaction for FixedAt {
            fn send_time(&mut self, _ctx: &EnqCtx<'_>) -> Nanos {
                Nanos(self.0)
            }
        }

        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let mid = b.add_child(root, "mid", fifo_tx());
        let leaf = b.add_child(mid, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(FixedAt(100)));
        b.set_shaper(mid, Box::new(FixedAt(200)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        // Suspended at leaf's shaper.
        assert_eq!(tree.sched_pifo_len(mid), 0);
        assert!(tree.dequeue(Nanos(99)).is_none());

        // t=100: ref released to mid, which immediately suspends again.
        tree.release_due(Nanos(100));
        assert_eq!(tree.sched_pifo_len(mid), 1);
        assert_eq!(tree.sched_pifo_len(root), 0);
        assert!(tree.dequeue(Nanos(150)).is_none());
        assert_eq!(tree.next_shaping_event(), Some(Nanos(200)));

        // t=200: second release reaches the root; packet drains.
        let p = tree.dequeue(Nanos(200)).expect("fully released");
        assert_eq!(p.id.0, 0);
    }

    /// A shaper whose release time is already due releases within the same
    /// call (send_time in the past = work-conserving fallthrough).
    #[test]
    fn immediate_release_when_not_throttled() {
        struct Immediate;
        impl ShapingTransaction for Immediate {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                ctx.now
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(Immediate));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        tree.enqueue(pkt(0, 0, 5), Nanos(5)).unwrap();
        // The entry is parked momentarily, then released by the next call
        // at the same instant.
        let p = tree.dequeue(Nanos(5)).expect("releases at the same time");
        assert_eq!(p.id.0, 0);
    }

    /// Work-conserving invariant: each node's PIFO holds exactly the
    /// number of packets in its subtree.
    #[test]
    fn ref_counting_invariant() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let l = b.add_child(root, "L", fifo_tx());
        let r = b.add_child(root, "R", fifo_tx());
        let mut tree = b
            .build(Box::new(
                move |p: &Packet| if p.flow.0 == 0 { l } else { r },
            ))
            .unwrap();
        for i in 0..10 {
            tree.enqueue(pkt(i, (i % 2) as u32, i), Nanos(i)).unwrap();
        }
        assert_eq!(tree.sched_pifo_len(root), 10);
        assert_eq!(tree.sched_pifo_len(l), 5);
        assert_eq!(tree.sched_pifo_len(r), 5);
        for _ in 0..4 {
            tree.dequeue(Nanos(100));
        }
        assert_eq!(tree.sched_pifo_len(root), 6);
        assert_eq!(
            tree.sched_pifo_len(l) + tree.sched_pifo_len(r),
            6,
            "leaf occupancy tracks root refs"
        );
    }

    /// The same scheduling program produces the same packet trace on every
    /// backend — the tree is engine-agnostic by construction.
    #[test]
    fn backends_are_observationally_equivalent_in_trees() {
        let run = |backend: PifoBackend| -> Vec<u64> {
            let by_class = Box::new(FnTransaction::new("class", |ctx: &EnqCtx<'_>| {
                Rank(ctx.packet.class as u64)
            }));
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("prio", by_class);
            let l = b.add_child(root, "L", fifo_tx());
            let r = b.add_child(root, "R", fifo_tx());
            let mut tree = b
                .build(Box::new(
                    move |p: &Packet| if p.flow.0 % 2 == 0 { l } else { r },
                ))
                .unwrap();
            for i in 0..40u64 {
                let p = pkt(i, (i % 3) as u32, i).with_class((i % 5) as u8);
                tree.enqueue(p, Nanos(i)).unwrap();
            }
            assert_eq!(tree.node_backend(root), backend);
            std::iter::from_fn(|| tree.dequeue(Nanos(1_000)))
                .map(|p| p.id.0)
                .collect()
        };
        let reference = run(PifoBackend::SortedArray);
        for backend in [PifoBackend::Heap, PifoBackend::Bucket] {
            assert_eq!(run(backend), reference, "{backend} diverges from reference");
        }
    }

    /// Per-node overrides beat the tree-wide default.
    #[test]
    fn per_node_backend_override() {
        let mut b = TreeBuilder::new();
        b.with_backend(PifoBackend::Heap);
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_node_backend(leaf, PifoBackend::Bucket);
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        assert_eq!(tree.node_backend(root), PifoBackend::Heap);
        assert_eq!(tree.node_backend(leaf), PifoBackend::Bucket);
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        assert_eq!(tree.dequeue(Nanos(1)).unwrap().id.0, 0);
    }

    #[test]
    fn from_index_round_trips_and_try_variant_filters() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(NodeId::try_from_index(7), Some(NodeId(7)));
        assert_eq!(NodeId::try_from_index(u32::MAX as usize), None);
        assert_eq!(NodeId::try_from_index(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_panics_on_out_of_range() {
        let _ = NodeId::from_index(usize::MAX);
    }

    /// The INVALID sentinel is reported as UnknownNode at enqueue.
    #[test]
    fn invalid_sentinel_is_unknown_node() {
        let mut b = TreeBuilder::new();
        let _root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| NodeId::INVALID)).unwrap();
        let err = tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap_err();
        assert_eq!(err, TreeError::UnknownNode(NodeId::INVALID));
    }

    /// `peek()` lets no time pass, so a due-but-unreleased shaped element
    /// is invisible to it; `peek_at(now)` releases first and agrees with
    /// what `dequeue(now)` would return.
    #[test]
    fn peek_at_releases_due_elements_peek_does_not() {
        struct FixedAt(u64);
        impl ShapingTransaction for FixedAt {
            fn send_time(&mut self, _ctx: &EnqCtx<'_>) -> Nanos {
                Nanos(self.0)
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(FixedAt(100)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        tree.enqueue(pkt(3, 0, 0), Nanos(0)).unwrap();

        // The release time has arrived, but peek() does not release.
        assert!(tree.peek().is_none(), "peek must not advance time");
        // peek_at(100) releases and previews dequeue(100) without popping.
        assert_eq!(tree.peek_at(Nanos(100)).unwrap().id.0, 3);
        assert_eq!(tree.len(), 1, "peek_at must not dequeue");
        assert_eq!(tree.dequeue(Nanos(100)).unwrap().id.0, 3);
    }

    /// A work-conserving tree never inspects the shaping agenda: the
    /// `shaped == 0` early exit keeps the whole enqueue/dequeue hot path
    /// free of shaping work.
    #[test]
    fn work_conserving_path_never_inspects_shaping_agenda() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let l = b.add_child(root, "L", fifo_tx());
        let r = b.add_child(root, "R", fifo_tx());
        let mut tree = b
            .build(Box::new(
                move |p: &Packet| if p.flow.0 == 0 { l } else { r },
            ))
            .unwrap();
        for i in 0..200 {
            tree.enqueue(pkt(i, (i % 2) as u32, i), Nanos(i)).unwrap();
            if i % 3 == 0 {
                tree.dequeue(Nanos(i));
            }
        }
        while tree.dequeue(Nanos(1_000)).is_some() {}
        assert_eq!(
            tree.shaping_inspections(),
            0,
            "no shaper ever parked an element, so the agenda must never be touched"
        );
    }

    /// ...whereas a shaped tree does pay for its releases (sanity check
    /// that the counter counts).
    #[test]
    fn shaped_tree_records_agenda_inspections() {
        struct Immediate;
        impl ShapingTransaction for Immediate {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                ctx.now
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(Immediate));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        assert!(tree.dequeue(Nanos(0)).is_some());
        assert!(tree.shaping_inspections() > 0);
    }

    /// A rejected packet comes back through `BufferFull` unchanged, every
    /// field intact — admission happens before any slab insert.
    #[test]
    fn buffer_full_returns_packet_unchanged() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        b.buffer_limit(1);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        let original = pkt(1, 7, 5)
            .with_class(3)
            .with_slack(-9)
            .with_deadline(Nanos(77))
            .with_flow_size(1_000)
            .with_remaining(400)
            .with_attained(600)
            .with_seq_in_flow(42);
        match tree.enqueue(original.clone(), Nanos(5)) {
            Err(TreeError::BufferFull(p)) => assert_eq!(p, original),
            other => panic!("expected BufferFull, got {other:?}"),
        }
        assert_eq!(tree.packet_buffer().live(), 1, "no slab slot consumed");
    }

    /// A packet can overtake its own parked shaping entry: an earlier
    /// reference pops it from the leaf first. The parked entry then
    /// becomes the sole owner of the buffer slot (keeping the header
    /// fields for the ancestors' transactions), and the slot is freed
    /// when the entry finally resumes.
    #[test]
    fn overtaken_shaped_ref_keeps_slot_until_release() {
        struct Script(Vec<u64>, usize);
        impl ShapingTransaction for Script {
            fn send_time(&mut self, _ctx: &EnqCtx<'_>) -> Nanos {
                let t = self.0[self.1];
                self.1 += 1;
                Nanos(t)
            }
        }
        let by_class = Box::new(FnTransaction::new("class", |ctx: &EnqCtx<'_>| {
            Rank(ctx.packet.class as u64)
        }));
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", by_class);
        // P0 releases immediately; P1 not until t=100.
        b.set_shaper(leaf, Box::new(Script(vec![0, 100], 0)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        tree.enqueue(pkt(0, 0, 0).with_class(5), Nanos(0)).unwrap();
        // t=1: P0's ref releases to the root; P1 parks until t=100 but
        // holds the smaller leaf rank.
        tree.enqueue(pkt(1, 0, 1).with_class(1), Nanos(1)).unwrap();

        // P0's reference pops the leaf head — which is P1 (rank 1 < 5).
        let p = tree.dequeue(Nanos(2)).expect("root has one ref");
        assert_eq!(p.id.0, 1, "earlier ref retrieves the overtaking packet");
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.shaped_len(), 1);
        assert_eq!(
            tree.shaped_refs_holding_packets(),
            1,
            "P1's parked entry is now the sole owner of its slot"
        );
        assert_eq!(tree.packet_buffer().live(), 2, "P0 buffered + P1 held");

        // t=100: P1's entry resumes, frees its slot, and its reference
        // retrieves P0.
        let p = tree.dequeue(Nanos(100)).expect("released");
        assert_eq!(p.id.0, 0);
        assert!(tree.is_empty());
        assert_eq!(tree.shaped_refs_holding_packets(), 0);
        assert_eq!(tree.packet_buffer().live(), 0);
        tree.packet_buffer().assert_coherent();
    }

    /// `enqueue_batch` across the buffer limit admits the prefix that
    /// fits and hands every rejected packet back through
    /// `TreeError::BufferFull`, field-for-field unchanged, in order.
    #[test]
    fn enqueue_batch_partial_admission_returns_rejects_unchanged() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        b.buffer_limit(2);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();

        let decorated = |id: u64| {
            pkt(id, 3, 5)
                .with_class(2)
                .with_slack(-4)
                .with_deadline(Nanos(50))
                .with_flow_size(9_000)
                .with_remaining(1_000 + id)
                .with_attained(8_000 - id)
                .with_seq_in_flow(id)
        };
        let batch: Vec<Packet> = (0..4).map(decorated).collect();
        let errors = tree.enqueue_batch(batch, Nanos(5));
        assert_eq!(tree.len(), 2, "only the fitting prefix is admitted");
        let rejected: Vec<Packet> = errors
            .into_iter()
            .map(|e| match e {
                TreeError::BufferFull(p) => p,
                other => panic!("expected BufferFull, got {other:?}"),
            })
            .collect();
        assert_eq!(rejected, vec![decorated(2), decorated(3)]);
        // The admitted prefix drains normally.
        assert_eq!(tree.dequeue(Nanos(6)).unwrap().id.0, 0);
        assert_eq!(tree.dequeue(Nanos(6)).unwrap().id.0, 1);
    }

    /// Empty batches are no-ops on both batch entry points.
    #[test]
    fn empty_tree_batches_are_noops() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        assert!(tree.enqueue_batch(Vec::new(), Nanos(0)).is_empty());
        let mut out = Vec::new();
        assert_eq!(tree.dequeue_upto(Nanos(0), 0, &mut out), 0);
        assert_eq!(tree.dequeue_upto(Nanos(0), 16, &mut out), 0);
        assert!(out.is_empty());
        assert!(tree.is_empty());
    }

    /// The single-node `dequeue_upto` fast path honours a leaf flow
    /// override and feeds `on_dequeue` exactly like the per-packet path.
    #[test]
    fn dequeue_upto_fast_path_matches_per_packet_with_flow_fn() {
        use std::sync::{Arc, Mutex};

        let build = |log: Arc<Mutex<Vec<(u64, u32)>>>| {
            let mut b = TreeBuilder::new();
            struct Logging(Arc<Mutex<Vec<(u64, u32)>>>);
            impl SchedulingTransaction for Logging {
                fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
                    Rank(ctx.packet.class as u64)
                }
                fn on_dequeue(&mut self, rank: Rank, ctx: &DeqCtx) {
                    self.0.lock().unwrap().push((rank.value(), ctx.flow.0));
                }
            }
            let root = b.add_root("prio", Box::new(Logging(log)));
            // Leaf flow override: everything collapses to flow 9.
            b.set_flow_fn(root, Box::new(|_| FlowId(9)));
            b.build(Box::new(move |_| root)).unwrap()
        };

        let batch_log = Arc::new(Mutex::new(Vec::new()));
        let ref_log = Arc::new(Mutex::new(Vec::new()));
        let mut batch_tree = build(batch_log.clone());
        let mut ref_tree = build(ref_log.clone());
        for i in 0..6u64 {
            let p = pkt(i, i as u32, i).with_class((5 - i as u8) % 3);
            batch_tree.enqueue(p.clone(), Nanos(i)).unwrap();
            ref_tree.enqueue(p, Nanos(i)).unwrap();
        }

        let mut batched = Vec::new();
        assert_eq!(batch_tree.dequeue_upto(Nanos(10), 4, &mut batched), 4);
        let per_packet: Vec<Packet> = (0..4)
            .map(|_| ref_tree.dequeue(Nanos(10)).unwrap())
            .collect();
        assert_eq!(batched, per_packet);
        assert_eq!(
            batch_log.lock().unwrap().as_slice(),
            ref_log.lock().unwrap().as_slice()
        );
        assert!(batch_log.lock().unwrap().iter().all(|&(_, f)| f == 9));
        assert_eq!(batch_tree.len(), 2);
    }

    #[test]
    fn peek_matches_dequeue() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        assert!(tree.peek().is_none());
        tree.enqueue(pkt(7, 0, 1), Nanos(1)).unwrap();
        tree.enqueue(pkt(8, 0, 2), Nanos(2)).unwrap();
        assert_eq!(tree.peek().unwrap().id.0, 7);
        assert_eq!(tree.dequeue(Nanos(3)).unwrap().id.0, 7);
        assert_eq!(tree.peek().unwrap().id.0, 8);
    }
}
