//! Trees of scheduling and shaping transactions (§2.2–§2.3).
//!
//! A PIFO tree encodes the *instantaneous scheduling order* of a
//! hierarchical algorithm (Fig 2): each node owns a scheduling PIFO whose
//! elements are packets (at leaves) or references to child PIFOs (at
//! interior nodes). Dequeueing walks from the root, popping one element at
//! each level, until a packet is reached.
//!
//! Enqueueing a packet executes the scheduling transaction at every node on
//! the leaf→root path, pushing the packet at the leaf and a reference to
//! each child at its parent. A node with a *shaping transaction* suspends
//! this walk (Fig 5): the reference destined for the parent is parked in
//! the node's shaping PIFO, ranked by wall-clock release time, and the walk
//! resumes at the parent only when that time arrives.
//!
//! # Invariants
//!
//! * Work-conserving subtrees: a node's scheduling-PIFO length equals the
//!   number of packets buffered in its subtree minus references currently
//!   held back by shapers strictly below it.
//! * Dequeue never pops a reference to an empty child (checked; a failure
//!   is a bug in this module, not in user code).
//! * All shaped elements whose release time has passed are released before
//!   any enqueue/dequeue at a later wall-clock time is processed.

use crate::packet::{FlowId, Packet};
use crate::pifo::{BoxedPifo, PifoBackend};
use crate::rank::Rank;
use crate::time::Nanos;
use crate::transaction::{DeqCtx, EnqCtx, SchedulingTransaction, ShapingTransaction};
use core::fmt;

/// Identifies a node within one [`ScheduleTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The flow identifier this node presents to its parent's transaction.
    ///
    /// At an interior node, elements are grouped per *child* — e.g.
    /// WFQ_Root in Fig 3 treats `Left` and `Right` as its two flows — so
    /// the child's node id doubles as the flow id at the parent.
    pub fn as_flow(self) -> FlowId {
        FlowId(self.0)
    }

    /// Raw index (stable for the lifetime of the tree).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A sentinel id that never names a real node.
    ///
    /// Classifiers return this for packets that belong to no leaf (e.g. an
    /// unknown flow); `enqueue` reports it as [`TreeError::UnknownNode`]
    /// instead of silently misrouting the packet.
    pub const INVALID: NodeId = NodeId(u32::MAX);

    /// Construct a `NodeId` from a raw index.
    ///
    /// Node ids are assigned densely in the order of
    /// [`TreeBuilder::add_root`]/[`TreeBuilder::add_child`] calls (root
    /// first). Builder helpers (e.g. `pifo-algos`' tree constructors) use
    /// this to wire classifiers before the tree exists; an id that does not
    /// name a real node of the final tree is caught at `enqueue` as
    /// [`TreeError::UnknownNode`].
    ///
    /// # Panics
    ///
    /// Panics if `index` cannot name a real node (it exceeds
    /// `u32::MAX - 1`), so a construction mistake surfaces at the call
    /// site rather than as a confusing `UnknownNode` much later. Use
    /// [`NodeId::try_from_index`] for a non-panicking variant and
    /// [`NodeId::INVALID`] for an explicit "no such node" sentinel.
    pub fn from_index(index: usize) -> NodeId {
        NodeId::try_from_index(index).unwrap_or_else(|| {
            panic!(
                "NodeId::from_index({index}): index out of range (node ids are dense u32s \
                 below {}; use NodeId::INVALID for a deliberate sentinel)",
                u32::MAX
            )
        })
    }

    /// Construct a `NodeId` from a raw index, returning `None` when the
    /// index is out of the representable node-id range.
    pub fn try_from_index(index: usize) -> Option<NodeId> {
        u32::try_from(index)
            .ok()
            .filter(|&v| v != u32::MAX)
            .map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An element stored in a scheduling PIFO: a packet at a leaf, a reference
/// to a child PIFO at an interior node (Fig 2).
#[derive(Debug, Clone)]
pub enum Element {
    /// A buffered packet (leaf PIFOs only).
    Packet(Packet),
    /// A reference to a child node's scheduling PIFO.
    Ref(NodeId),
}

/// A reference parked in a shaping PIFO, waiting for its release time.
///
/// Carries a snapshot of the triggering packet so that the parent's
/// scheduling transaction can read packet fields when the walk resumes —
/// the hardware equivalently carries element metadata (§4.2).
#[derive(Debug, Clone)]
struct Suspended {
    packet: Packet,
    node: NodeId,
}

/// Errors surfaced by tree construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// More than one root was defined.
    MultipleRoots,
    /// A shaper was attached to the root (there is no parent to release to).
    ShaperOnRoot,
    /// The classifier returned a non-leaf node for a packet.
    NotALeaf(NodeId),
    /// The shared packet buffer is exhausted; the packet was dropped.
    BufferFull(Packet),
    /// A node id from a different tree (or out of range) was used.
    UnknownNode(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::MultipleRoots => write!(f, "tree has multiple roots"),
            TreeError::ShaperOnRoot => write!(f, "shaping transaction attached to the root"),
            TreeError::NotALeaf(n) => write!(f, "classifier routed a packet to non-leaf {n}"),
            TreeError::BufferFull(p) => write!(f, "buffer full, dropped {}", p.id),
            TreeError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A function mapping a packet to the flow it belongs to at a leaf node.
/// Defaults to `packet.flow` when not overridden.
pub type FlowFn = Box<dyn Fn(&Packet) -> FlowId>;

/// A function mapping a packet to the leaf node that should buffer it —
/// the composition of all packet predicates down one root-to-leaf path
/// (Fig 3b's `p.class == Left` etc.).
pub type Classifier = Box<dyn Fn(&Packet) -> NodeId>;

/// A node as accumulated by the builder: no queues yet — the backend
/// choice is resolved when [`TreeBuilder::build`] instantiates them.
struct BuilderNode {
    name: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    sched: Box<dyn SchedulingTransaction>,
    shaper: Option<Box<dyn ShapingTransaction>>,
    flow_fn: Option<FlowFn>,
    /// Per-node backend override; `None` inherits the tree-wide choice.
    backend: Option<PifoBackend>,
}

struct Node {
    name: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    sched: Box<dyn SchedulingTransaction>,
    shaper: Option<Box<dyn ShapingTransaction>>,
    flow_fn: Option<FlowFn>,
    backend: PifoBackend,
    sched_pifo: BoxedPifo<Element>,
    /// Rank = wall-clock release time in nanoseconds.
    shaping_pifo: BoxedPifo<Suspended>,
}

/// Builder for [`ScheduleTree`].
///
/// ```
/// use pifo_core::prelude::*;
///
/// // Single-node tree = one PIFO with one scheduling transaction (§2.1).
/// let mut b = TreeBuilder::new();
/// b.with_backend(PifoBackend::Bucket); // any engine; semantics identical
/// let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
///     Rank(ctx.now.as_nanos())
/// })));
/// let mut tree = b.build(Box::new(move |_p| root)).unwrap();
/// tree.enqueue(Packet::new(0, FlowId(1), 100, Nanos(5)), Nanos(5)).unwrap();
/// assert_eq!(tree.len(), 1);
/// assert_eq!(tree.node_backend(root), PifoBackend::Bucket);
/// ```
pub struct TreeBuilder {
    nodes: Vec<BuilderNode>,
    root: Option<NodeId>,
    buffer_limit: Option<usize>,
    backend: PifoBackend,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// An empty builder using the default (reference) PIFO backend.
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            root: None,
            buffer_limit: None,
            backend: PifoBackend::default(),
        }
    }

    /// Select the queue engine backing every node's scheduling and shaping
    /// PIFO. May be called before or after nodes are added — the choice is
    /// applied when [`build`](Self::build) instantiates the queues. Nodes
    /// with a [`set_node_backend`](Self::set_node_backend) override keep
    /// their own engine.
    pub fn with_backend(&mut self, backend: PifoBackend) -> &mut Self {
        self.backend = backend;
        self
    }

    /// Override the queue engine for one node (e.g. a bucket calendar at a
    /// 60 K-deep leaf while small interior nodes keep the reference array).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this builder.
    pub fn set_node_backend(&mut self, node: NodeId, backend: PifoBackend) -> &mut Self {
        self.nodes[node.index()].backend = Some(backend);
        self
    }

    /// Limit the total number of buffered packets across the tree; beyond
    /// it, [`ScheduleTree::enqueue`] returns [`TreeError::BufferFull`].
    /// Models the shared packet buffer of §5.1 (60 K packets).
    pub fn buffer_limit(&mut self, packets: usize) -> &mut Self {
        self.buffer_limit = Some(packets);
        self
    }

    /// Add the root node with its scheduling transaction.
    ///
    /// # Panics
    ///
    /// Panics if a root already exists (programming error in tree setup).
    pub fn add_root(&mut self, name: &str, sched: Box<dyn SchedulingTransaction>) -> NodeId {
        assert!(self.root.is_none(), "tree already has a root");
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(BuilderNode {
            name: name.to_string(),
            parent: None,
            children: Vec::new(),
            sched,
            shaper: None,
            flow_fn: None,
            backend: None,
        });
        self.root = Some(id);
        id
    }

    /// Add a child of `parent` with its scheduling transaction.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this builder.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        name: &str,
        sched: Box<dyn SchedulingTransaction>,
    ) -> NodeId {
        assert!(
            (parent.index()) < self.nodes.len(),
            "unknown parent {parent}"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(BuilderNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            sched,
            shaper: None,
            flow_fn: None,
            backend: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attach a shaping transaction to `node` (§2.3). One shaper per node —
    /// the paper's 1-to-1 scheduling/shaping relationship (§3.5).
    pub fn set_shaper(&mut self, node: NodeId, shaper: Box<dyn ShapingTransaction>) {
        self.nodes[node.index()].shaper = Some(shaper);
    }

    /// Override how packets map to flows at leaf `node` (e.g. HPFQ's leaf
    /// `Left` distinguishing flows A and B).
    pub fn set_flow_fn(&mut self, node: NodeId, f: FlowFn) {
        self.nodes[node.index()].flow_fn = Some(f);
    }

    /// Finish construction. `classifier` maps each packet to its leaf.
    /// The selected PIFO backend(s) are instantiated here, so the
    /// resulting tree never names a concrete queue type.
    pub fn build(self, classifier: Classifier) -> Result<ScheduleTree, TreeError> {
        let root = self.root.ok_or(TreeError::Empty)?;
        if self.nodes[root.index()].shaper.is_some() {
            return Err(TreeError::ShaperOnRoot);
        }
        let default_backend = self.backend;
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| {
                let backend = n.backend.unwrap_or(default_backend);
                Node {
                    name: n.name,
                    parent: n.parent,
                    children: n.children,
                    sched: n.sched,
                    shaper: n.shaper,
                    flow_fn: n.flow_fn,
                    backend,
                    sched_pifo: backend.make(),
                    shaping_pifo: backend.make(),
                }
            })
            .collect();
        Ok(ScheduleTree {
            nodes,
            root,
            classifier,
            buffered: 0,
            shaped: 0,
            buffer_limit: self.buffer_limit,
        })
    }
}

/// A runnable tree of scheduling and shaping transactions — the complete
/// programming model of §2 in one object.
pub struct ScheduleTree {
    nodes: Vec<Node>,
    root: NodeId,
    classifier: Classifier,
    buffered: usize,
    shaped: usize,
    buffer_limit: Option<usize>,
}

impl fmt::Debug for ScheduleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleTree")
            .field("nodes", &self.nodes.len())
            .field("root", &self.root)
            .field("buffered", &self.buffered)
            .field("shaped", &self.shaped)
            .finish()
    }
}

impl ScheduleTree {
    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of packets currently buffered (across all leaves).
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// True when no packet is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Number of elements currently held back by shaping transactions.
    pub fn shaped_len(&self) -> usize {
        self.shaped
    }

    /// Name given to `node` at construction.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Children of `node`, in insertion order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids, root first (construction order).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The queue engine backing `node`'s PIFOs.
    pub fn node_backend(&self, node: NodeId) -> PifoBackend {
        self.nodes[node.index()].backend
    }

    /// Scheduling-PIFO occupancy of `node` (for tests and introspection).
    pub fn sched_pifo_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].sched_pifo.len()
    }

    /// Shaping-PIFO occupancy of `node`.
    pub fn shaping_pifo_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].shaping_pifo.len()
    }

    fn flow_at(&self, node: NodeId, packet: &Packet) -> FlowId {
        match &self.nodes[node.index()].flow_fn {
            Some(f) => f(packet),
            None => packet.flow,
        }
    }

    /// Enqueue `packet` at wall-clock time `now`.
    ///
    /// Executes one scheduling transaction per node on the leaf→root path,
    /// suspending at shaping nodes per Fig 5. Any shaped elements whose
    /// release time is ≤ `now` are released first, so external callers can
    /// drive the tree with only `enqueue`/`dequeue` and
    /// [`next_shaping_event`](Self::next_shaping_event).
    ///
    /// **Time contract:** successive calls into one tree must use
    /// non-decreasing `now` values (a switch experiences time forward).
    /// Going backwards does not corrupt the structure, but shaped
    /// elements already released by a later-timed call stay released.
    pub fn enqueue(&mut self, packet: Packet, now: Nanos) -> Result<(), TreeError> {
        self.release_due(now);
        let leaf = (self.classifier)(&packet);
        if leaf.index() >= self.nodes.len() {
            return Err(TreeError::UnknownNode(leaf));
        }
        if !self.nodes[leaf.index()].children.is_empty() {
            return Err(TreeError::NotALeaf(leaf));
        }
        if let Some(limit) = self.buffer_limit {
            if self.buffered >= limit {
                return Err(TreeError::BufferFull(packet));
            }
        }

        // Leaf: the element is the packet itself.
        let flow = self.flow_at(leaf, &packet);
        let ctx = EnqCtx {
            packet: &packet,
            now,
            flow,
        };
        let rank = self.nodes[leaf.index()].sched.rank(&ctx);
        self.nodes[leaf.index()]
            .sched_pifo
            .push(rank, Element::Packet(packet.clone()));
        self.buffered += 1;

        self.after_insert(leaf, packet, now);
        Ok(())
    }

    /// Continue the upward walk after an element entered `node`'s
    /// scheduling PIFO: either suspend at `node`'s shaper or push a
    /// reference into the parent (and recurse).
    fn after_insert(&mut self, node: NodeId, packet: Packet, now: Nanos) {
        if self.nodes[node.index()].shaper.is_some() {
            let flow = self.flow_at(node, &packet);
            let ctx = EnqCtx {
                packet: &packet,
                now,
                flow,
            };
            let t = self.nodes[node.index()]
                .shaper
                .as_mut()
                .expect("checked above")
                .send_time(&ctx);
            self.nodes[node.index()]
                .shaping_pifo
                .push(Rank(t.as_nanos()), Suspended { packet, node });
            self.shaped += 1;
            return; // Suspended: the parent sees nothing until release.
        }
        self.push_ref_to_parent(node, packet, now);
    }

    /// Push `Ref(node)` into `node`'s parent scheduling PIFO, executing the
    /// parent's scheduling transaction, then continue upward.
    fn push_ref_to_parent(&mut self, node: NodeId, packet: Packet, now: Nanos) {
        let Some(parent) = self.nodes[node.index()].parent else {
            return; // Reached the root: walk complete.
        };
        let ctx = EnqCtx {
            packet: &packet,
            now,
            flow: node.as_flow(),
        };
        let rank = self.nodes[parent.index()].sched.rank(&ctx);
        self.nodes[parent.index()]
            .sched_pifo
            .push(rank, Element::Ref(node));
        self.after_insert(parent, packet, now);
    }

    /// Release every shaped element whose wall-clock time has arrived,
    /// resuming the suspended walks in release-time order (ties broken by
    /// node index, then FIFO). A resumed walk may suspend again at a higher
    /// shaper; if that release time has also passed it is processed in the
    /// same call.
    pub fn release_due(&mut self, now: Nanos) {
        loop {
            // Find the globally earliest due entry across all shaping PIFOs.
            let mut best: Option<(Rank, usize)> = None;
            for (i, n) in self.nodes.iter().enumerate() {
                if let Some((r, _)) = n.shaping_pifo.peek() {
                    if r.value() <= now.as_nanos() && best.map_or(true, |(br, _)| r < br) {
                        best = Some((r, i));
                    }
                }
            }
            let Some((_, idx)) = best else { break };
            let (_, susp) = self.nodes[idx]
                .shaping_pifo
                .pop()
                .expect("peeked entry vanished");
            self.shaped -= 1;
            self.push_ref_to_parent(susp.node, susp.packet, now);
        }
    }

    /// The earliest pending shaping release time, if any. A simulator
    /// should call [`release_due`](Self::release_due) (or any
    /// enqueue/dequeue) at or after this instant.
    pub fn next_shaping_event(&self) -> Option<Nanos> {
        self.nodes
            .iter()
            .filter_map(|n| n.shaping_pifo.peek().map(|(r, _)| Nanos(r.value())))
            .min()
    }

    /// Dequeue the next packet at wall-clock time `now`: walk from the root
    /// popping one element per level until a packet is reached (Fig 2).
    ///
    /// Returns `None` if the root PIFO is empty — which, with shapers, can
    /// happen even while packets are buffered (non-work-conserving).
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.release_due(now);
        let mut node = self.root;
        loop {
            let (rank, elem) = self.nodes[node.index()].sched_pifo.pop()?;
            let flow = match &elem {
                Element::Packet(p) => self.flow_at(node, p),
                Element::Ref(child) => child.as_flow(),
            };
            self.nodes[node.index()]
                .sched
                .on_dequeue(rank, &DeqCtx { now, flow });
            match elem {
                Element::Packet(p) => {
                    self.buffered -= 1;
                    return Some(p);
                }
                Element::Ref(child) => {
                    debug_assert!(
                        !self.nodes[child.index()].sched_pifo.is_empty(),
                        "dequeued a reference to empty child {child} — tree invariant broken"
                    );
                    node = child;
                }
            }
        }
    }

    /// Peek the packet that `dequeue` would return *right now*, without
    /// mutating any state (and without releasing due shaped elements).
    pub fn peek(&self) -> Option<&Packet> {
        let mut node = self.root;
        loop {
            let (_, elem) = self.nodes[node.index()].sched_pifo.peek()?;
            match elem {
                Element::Packet(p) => return Some(p),
                Element::Ref(child) => node = *child,
            }
        }
    }

    /// Render the instantaneous scheduling order of a node's PIFO as a
    /// debug string, e.g. `"[L@3, R@5, L@7]"` — used by the Fig 2 tests.
    pub fn debug_pifo(&self, node: NodeId) -> String {
        let items: Vec<String> = self.nodes[node.index()]
            .sched_pifo
            .iter_in_order()
            .map(|(r, e)| match e {
                Element::Packet(p) => format!("{}@{}", p.id, r),
                Element::Ref(c) => format!("{}@{}", self.node_name(*c), r),
            })
            .collect();
        format!("[{}]", items.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::FnTransaction;

    fn fifo_tx() -> Box<dyn SchedulingTransaction> {
        Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx<'_>| {
            Rank(ctx.now.as_nanos())
        }))
    }

    fn pkt(id: u64, flow: u32, t: u64) -> Packet {
        Packet::new(id, FlowId(flow), 100, Nanos(t))
    }

    /// Single-node tree behaves as one PIFO.
    #[test]
    fn single_node_fifo() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();

        tree.enqueue(pkt(0, 1, 10), Nanos(10)).unwrap();
        tree.enqueue(pkt(1, 2, 20), Nanos(20)).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.dequeue(Nanos(30)).unwrap().id.0, 0);
        assert_eq!(tree.dequeue(Nanos(30)).unwrap().id.0, 1);
        assert!(tree.dequeue(Nanos(30)).is_none());
        assert!(tree.is_empty());
    }

    /// Fig 2 reproduced literally: a root with two leaves L and R; packets
    /// P1..P4 with the ranks drawn in the figure dequeue as P3,P1,P2,P4.
    #[test]
    fn fig2_instantaneous_order() {
        // Fixed ranks per element, injected through packet "class" maps.
        // Leaf PIFOs:  L = [P3, P4], R = [P1, P2]
        // Root PIFO :  [L, R, R, L]
        // We reproduce exactly by assigning explicit ranks.
        let leaf_rank = |ranks: &'static [(u64, u64)]| {
            Box::new(FnTransaction::new("fixed", move |ctx: &EnqCtx<'_>| {
                let id = ctx.packet.id.0;
                Rank(
                    ranks
                        .iter()
                        .find(|(pid, _)| *pid == id)
                        .map(|(_, r)| *r)
                        .expect("unknown packet"),
                )
            })) as Box<dyn SchedulingTransaction>
        };
        // Root ranks chosen so the order of refs is L, R, R, L.
        let root_rank = Box::new(FnTransaction::new("fixed", |ctx: &EnqCtx<'_>| {
            Rank(match ctx.packet.id.0 {
                3 => 0, // P3 arrives at L -> ref L first
                1 => 1,
                2 => 2,
                4 => 3,
                _ => unreachable!(),
            })
        }));

        let mut b = TreeBuilder::new();
        let root = b.add_root("Root", root_rank);
        let left = b.add_child(root, "L", leaf_rank(&[(3, 0), (4, 1)]));
        let right = b.add_child(root, "R", leaf_rank(&[(1, 0), (2, 1)]));
        let mut tree = b
            .build(Box::new(
                move |p: &Packet| {
                    if p.flow.0 == 0 {
                        left
                    } else {
                        right
                    }
                },
            ))
            .unwrap();

        // Enqueue in the order P3, P1, P2, P4 (flow 0 = L, flow 1 = R).
        tree.enqueue(pkt(3, 0, 0), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 1, 1), Nanos(1)).unwrap();
        tree.enqueue(pkt(2, 1, 2), Nanos(2)).unwrap();
        tree.enqueue(pkt(4, 0, 3), Nanos(3)).unwrap();

        assert_eq!(tree.debug_pifo(root), "[L@0, R@1, R@2, L@3]");

        let order: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(10)))
            .map(|p| p.id.0)
            .collect();
        assert_eq!(order, vec![3, 1, 2, 4], "Fig 2: P3, P1, P2, P4");
    }

    /// Later arrivals with smaller ranks overtake buffered packets at the
    /// root — the push-in property lifted to trees.
    #[test]
    fn push_in_at_root_level() {
        let by_class = Box::new(FnTransaction::new("class", |ctx: &EnqCtx<'_>| {
            Rank(ctx.packet.class as u64)
        }));
        let mut b = TreeBuilder::new();
        let root = b.add_root("prio", by_class);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        tree.enqueue(pkt(0, 0, 0).with_class(5), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 0, 1).with_class(1), Nanos(1)).unwrap();
        assert_eq!(tree.dequeue(Nanos(2)).unwrap().id.0, 1);
        assert_eq!(tree.dequeue(Nanos(2)).unwrap().id.0, 0);
    }

    /// The classifier must return a leaf.
    #[test]
    fn classifier_must_hit_leaf() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let _leaf = b.add_child(root, "leaf", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        let err = tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap_err();
        assert_eq!(err, TreeError::NotALeaf(root));
    }

    /// Root shapers are rejected at build time.
    #[test]
    fn no_shaper_on_root() {
        struct NullShaper;
        impl ShapingTransaction for NullShaper {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                ctx.now
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        b.set_shaper(root, Box::new(NullShaper));
        let err = b.build(Box::new(move |_| root)).unwrap_err();
        assert_eq!(err, TreeError::ShaperOnRoot);
    }

    /// Buffer limit drops and reports the packet.
    #[test]
    fn buffer_limit_enforced() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        b.buffer_limit(2);
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        tree.enqueue(pkt(1, 0, 1), Nanos(1)).unwrap();
        match tree.enqueue(pkt(2, 0, 2), Nanos(2)) {
            Err(TreeError::BufferFull(p)) => assert_eq!(p.id.0, 2),
            other => panic!("expected BufferFull, got {other:?}"),
        }
        // Draining makes room again.
        tree.dequeue(Nanos(3));
        tree.enqueue(pkt(3, 0, 3), Nanos(3)).unwrap();
    }

    /// A shaper delays visibility at the parent: the packet sits in the
    /// leaf PIFO but the root stays empty until the release time.
    #[test]
    fn shaping_defers_parent_visibility() {
        struct FixedDelay(u64);
        impl ShapingTransaction for FixedDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                Nanos(ctx.now.as_nanos() + self.0)
            }
            fn name(&self) -> &str {
                "fixed-delay"
            }
        }

        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(FixedDelay(100)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.shaped_len(), 1);
        assert_eq!(tree.sched_pifo_len(leaf), 1);
        assert_eq!(
            tree.sched_pifo_len(root),
            0,
            "root must not see the ref yet"
        );

        // Before the release time: nothing to dequeue.
        assert!(tree.dequeue(Nanos(50)).is_none());
        assert_eq!(tree.next_shaping_event(), Some(Nanos(100)));

        // At the release time the walk resumes and the packet drains.
        let p = tree.dequeue(Nanos(100)).expect("released at t=100");
        assert_eq!(p.id.0, 0);
        assert_eq!(tree.shaped_len(), 0);
        assert!(tree.is_empty());
    }

    /// Two stacked shapers suspend/resume twice (Fig 5's multi-suspension).
    #[test]
    fn nested_shapers_resume_in_stages() {
        struct FixedAt(u64);
        impl ShapingTransaction for FixedAt {
            fn send_time(&mut self, _ctx: &EnqCtx<'_>) -> Nanos {
                Nanos(self.0)
            }
        }

        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let mid = b.add_child(root, "mid", fifo_tx());
        let leaf = b.add_child(mid, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(FixedAt(100)));
        b.set_shaper(mid, Box::new(FixedAt(200)));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        // Suspended at leaf's shaper.
        assert_eq!(tree.sched_pifo_len(mid), 0);
        assert!(tree.dequeue(Nanos(99)).is_none());

        // t=100: ref released to mid, which immediately suspends again.
        tree.release_due(Nanos(100));
        assert_eq!(tree.sched_pifo_len(mid), 1);
        assert_eq!(tree.sched_pifo_len(root), 0);
        assert!(tree.dequeue(Nanos(150)).is_none());
        assert_eq!(tree.next_shaping_event(), Some(Nanos(200)));

        // t=200: second release reaches the root; packet drains.
        let p = tree.dequeue(Nanos(200)).expect("fully released");
        assert_eq!(p.id.0, 0);
    }

    /// A shaper whose release time is already due releases within the same
    /// call (send_time in the past = work-conserving fallthrough).
    #[test]
    fn immediate_release_when_not_throttled() {
        struct Immediate;
        impl ShapingTransaction for Immediate {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                ctx.now
            }
        }
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_shaper(leaf, Box::new(Immediate));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        tree.enqueue(pkt(0, 0, 5), Nanos(5)).unwrap();
        // The entry is parked momentarily, then released by the next call
        // at the same instant.
        let p = tree.dequeue(Nanos(5)).expect("releases at the same time");
        assert_eq!(p.id.0, 0);
    }

    /// Work-conserving invariant: each node's PIFO holds exactly the
    /// number of packets in its subtree.
    #[test]
    fn ref_counting_invariant() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo_tx());
        let l = b.add_child(root, "L", fifo_tx());
        let r = b.add_child(root, "R", fifo_tx());
        let mut tree = b
            .build(Box::new(
                move |p: &Packet| if p.flow.0 == 0 { l } else { r },
            ))
            .unwrap();
        for i in 0..10 {
            tree.enqueue(pkt(i, (i % 2) as u32, i), Nanos(i)).unwrap();
        }
        assert_eq!(tree.sched_pifo_len(root), 10);
        assert_eq!(tree.sched_pifo_len(l), 5);
        assert_eq!(tree.sched_pifo_len(r), 5);
        for _ in 0..4 {
            tree.dequeue(Nanos(100));
        }
        assert_eq!(tree.sched_pifo_len(root), 6);
        assert_eq!(
            tree.sched_pifo_len(l) + tree.sched_pifo_len(r),
            6,
            "leaf occupancy tracks root refs"
        );
    }

    /// The same scheduling program produces the same packet trace on every
    /// backend — the tree is engine-agnostic by construction.
    #[test]
    fn backends_are_observationally_equivalent_in_trees() {
        let run = |backend: PifoBackend| -> Vec<u64> {
            let by_class = Box::new(FnTransaction::new("class", |ctx: &EnqCtx<'_>| {
                Rank(ctx.packet.class as u64)
            }));
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("prio", by_class);
            let l = b.add_child(root, "L", fifo_tx());
            let r = b.add_child(root, "R", fifo_tx());
            let mut tree = b
                .build(Box::new(
                    move |p: &Packet| if p.flow.0 % 2 == 0 { l } else { r },
                ))
                .unwrap();
            for i in 0..40u64 {
                let p = pkt(i, (i % 3) as u32, i).with_class((i % 5) as u8);
                tree.enqueue(p, Nanos(i)).unwrap();
            }
            assert_eq!(tree.node_backend(root), backend);
            std::iter::from_fn(|| tree.dequeue(Nanos(1_000)))
                .map(|p| p.id.0)
                .collect()
        };
        let reference = run(PifoBackend::SortedArray);
        for backend in [PifoBackend::Heap, PifoBackend::Bucket] {
            assert_eq!(run(backend), reference, "{backend} diverges from reference");
        }
    }

    /// Per-node overrides beat the tree-wide default.
    #[test]
    fn per_node_backend_override() {
        let mut b = TreeBuilder::new();
        b.with_backend(PifoBackend::Heap);
        let root = b.add_root("root", fifo_tx());
        let leaf = b.add_child(root, "leaf", fifo_tx());
        b.set_node_backend(leaf, PifoBackend::Bucket);
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();
        assert_eq!(tree.node_backend(root), PifoBackend::Heap);
        assert_eq!(tree.node_backend(leaf), PifoBackend::Bucket);
        tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap();
        assert_eq!(tree.dequeue(Nanos(1)).unwrap().id.0, 0);
    }

    #[test]
    fn from_index_round_trips_and_try_variant_filters() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(NodeId::try_from_index(7), Some(NodeId(7)));
        assert_eq!(NodeId::try_from_index(u32::MAX as usize), None);
        assert_eq!(NodeId::try_from_index(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_panics_on_out_of_range() {
        let _ = NodeId::from_index(usize::MAX);
    }

    /// The INVALID sentinel is reported as UnknownNode at enqueue.
    #[test]
    fn invalid_sentinel_is_unknown_node() {
        let mut b = TreeBuilder::new();
        let _root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| NodeId::INVALID)).unwrap();
        let err = tree.enqueue(pkt(0, 0, 0), Nanos(0)).unwrap_err();
        assert_eq!(err, TreeError::UnknownNode(NodeId::INVALID));
    }

    #[test]
    fn peek_matches_dequeue() {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", fifo_tx());
        let mut tree = b.build(Box::new(move |_| root)).unwrap();
        assert!(tree.peek().is_none());
        tree.enqueue(pkt(7, 0, 1), Nanos(1)).unwrap();
        tree.enqueue(pkt(8, 0, 2), Nanos(2)).unwrap();
        assert_eq!(tree.peek().unwrap().id.0, 7);
        assert_eq!(tree.dequeue(Nanos(3)).unwrap().id.0, 7);
        assert_eq!(tree.peek().unwrap().id.0, 8);
    }
}
