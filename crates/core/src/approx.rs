//! Approximate PIFO engines — scheduling quality traded for per-op cost.
//!
//! The paper's PIFO (§4) is an *exact* priority queue: every pop returns
//! the minimum rank present. The follow-on literature shows that much of
//! the scheduling benefit survives far cheaper structures:
//!
//! * [`SpPifo`] — SP-PIFO ("Everything Matters in Programmable Packet
//!   Scheduling"): map ranks onto `k` strict-priority FIFOs whose queue
//!   bounds adapt online (*push-up* on every enqueue, *push-down* on
//!   every inversion at the head queue). O(k) push/pop, no sorting.
//! * [`Rifo`] — RIFO ("RIFO: Pushing the Efficiency of Programmable
//!   Packet Schedulers"): a **single FIFO** whose only rank-awareness is
//!   an admission gate — a packet is admitted iff its rank sits low
//!   enough inside the `[min, max]` span of a sliding window of recently
//!   offered ranks, relative to the free buffer fraction. O(1) amortised.
//! * [`Aifo`] — AIFO-style windowed-quantile admission: like RIFO but
//!   the gate compares the rank's *quantile* within a sliding sample of
//!   offered ranks against the free buffer fraction. O(W) per push for a
//!   small constant window W.
//!
//! # The relaxed contract
//!
//! These engines implement [`PifoQueue`]/[`PifoInspect`] but **break
//! invariant 1** of the contract on purpose: pops are *not* guaranteed to
//! be in non-decreasing rank order. What still holds:
//!
//! * Invariant 3 (`len` = pushes − pops) holds exactly, as do capacity
//!   bounds and [`PifoFull`] field round-trips — so trees, pools and
//!   switches account packets identically.
//! * Invariant 2 (FIFO within equal rank) holds for [`Rifo`] and
//!   [`Aifo`] (they are FIFOs), and for [`SpPifo`] with `k = 1`. For
//!   `k > 1` SP-PIFO can invert equal ranks across queues: with `k = 2`,
//!   pushing ranks `5, 3, 7, 5` maps the first 5 to queue 1 and — after
//!   7 pushes queue 1's bound up — the second 5 to queue 0, which drains
//!   first.
//!
//! How *far* from exact a run was is a measured number, not a shrug: the
//! [`metrics`](crate::metrics) module scores any pop trace against the
//! sorted oracle (inversions, unpifoness, max rank regression), and the
//! `approx_quality` bench maps the quality × throughput frontier.
//!
//! Batch operations use the sequential trait defaults, so the
//! batch-equals-sequential property holds for these engines by
//! construction.

use crate::pifo::{PifoFull, PifoInspect, PifoQueue};
use crate::rank::Rank;
use std::collections::VecDeque;

/// Default number of strict-priority queues for [`SpPifo`] — the
/// SP-PIFO paper's headline configuration (8 queues on Tofino).
pub const DEFAULT_SP_PIFO_QUEUES: u8 = 8;

/// Default sliding-window length for [`Rifo`]'s min/max rank tracker.
pub const DEFAULT_RIFO_WINDOW: usize = 64;

/// Default sliding-sample length for [`Aifo`]'s quantile estimate. The
/// AIFO paper shows small samples suffice (their hardware uses ~10s of
/// slots).
pub const DEFAULT_AIFO_WINDOW: usize = 32;

// ---------------------------------------------------------------------------
// SpPifo
// ---------------------------------------------------------------------------

/// SP-PIFO: `k` strict-priority FIFOs with adaptive queue bounds.
///
/// Each queue `i` has a bound `b[i]`; bounds are kept non-decreasing in
/// `i` (queue 0 is highest priority / lowest ranks). On enqueue the
/// queues are scanned from the *lowest*-priority end for the first
/// `b[i] <= rank`; the packet joins that FIFO and the bound is **pushed
/// up** to `rank`. If even the highest-priority bound exceeds the rank
/// (an inversion would occur), every bound is **pushed down** by the
/// overshoot `b[0] - rank` and the packet joins queue 0. Dequeue pops
/// the head of the first non-empty queue.
///
/// Pops are approximately rank-ordered: exact *between* queues at any
/// instant, unordered *within* one (each queue is a FIFO over a rank
/// band). `k = 1` degenerates to a plain FIFO; larger `k` monotonically
/// buys quality (measured by `approx_quality` as strictly decreasing
/// unpifoness).
#[derive(Debug, Clone)]
pub struct SpPifo<T> {
    queues: Vec<VecDeque<(Rank, T)>>,
    bounds: Vec<u64>,
    len: usize,
    capacity: Option<usize>,
    pushdowns: u64,
}

impl<T> SpPifo<T> {
    /// An unbounded SP-PIFO over `queues` strict-priority FIFOs.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero — an SP-PIFO needs at least one band.
    pub fn new(queues: usize) -> Self {
        assert!(queues >= 1, "SP-PIFO needs at least one queue");
        SpPifo {
            queues: (0..queues).map(|_| VecDeque::new()).collect(),
            bounds: vec![0; queues],
            len: 0,
            capacity: None,
            pushdowns: 0,
        }
    }

    /// A bounded SP-PIFO rejecting pushes beyond `capacity` elements
    /// (summed across all `queues` bands).
    pub fn with_capacity(queues: usize, capacity: usize) -> Self {
        let mut q = Self::new(queues);
        q.capacity = Some(capacity);
        q
    }

    /// Number of strict-priority queues (the `k` in `sp-pifo:k`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// How many push-down adaptations (head-queue inversions detected at
    /// enqueue) have occurred — SP-PIFO's own online quality signal.
    pub fn pushdowns(&self) -> u64 {
        self.pushdowns
    }

    /// Current queue bounds, highest priority first (non-decreasing).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }
}

impl<T> PifoQueue<T> for SpPifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        if let Some(cap) = self.capacity {
            if self.len >= cap {
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        let r = rank.value();
        // Scan from the lowest-priority queue for the first bound <= rank.
        for i in (0..self.queues.len()).rev() {
            if self.bounds[i] <= r {
                self.bounds[i] = r; // push-up
                self.queues[i].push_back((rank, item));
                self.len += 1;
                return Ok(());
            }
        }
        // rank undercuts every bound: push-down all bounds by the
        // overshoot and take the highest-priority queue. Bounds are
        // non-decreasing, so none underflows (b[i] >= b[0] >= cost).
        let cost = self.bounds[0] - r;
        for b in &mut self.bounds {
            *b -= cost;
        }
        self.pushdowns += 1;
        self.queues[0].push_back((rank, item));
        self.len += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        for q in &mut self.queues {
            if let Some(e) = q.pop_front() {
                self.len -= 1;
                return Some(e);
            }
        }
        None
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.queues
            .iter()
            .find_map(|q| q.front().map(|(r, t)| (*r, t)))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl<T> PifoInspect<T> for SpPifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        Box::new(
            self.queues
                .iter()
                .flat_map(|q| q.iter().map(|(r, t)| (*r, t))),
        )
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .find(|(_, t)| pred(t))
            .map(|(r, t)| (*r, t))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        for q in &mut self.queues {
            if let Some(idx) = q.iter().position(|(_, t)| pred(t)) {
                let e = q.remove(idx).expect("index from position");
                self.len -= 1;
                return Some(e);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Sliding-window rank statistics (shared by Rifo / Aifo)
// ---------------------------------------------------------------------------

/// Sliding window over the last `W` *offered* ranks with O(1) amortised
/// min/max via the classic monotonic-deque trick.
#[derive(Debug, Clone)]
struct RankWindow {
    size: usize,
    ranks: VecDeque<u64>,
    minq: VecDeque<u64>, // non-decreasing; front = window min
    maxq: VecDeque<u64>, // non-increasing; front = window max
}

impl RankWindow {
    fn new(size: usize) -> Self {
        assert!(size >= 1, "rank window needs at least one slot");
        RankWindow {
            size,
            ranks: VecDeque::with_capacity(size + 1),
            minq: VecDeque::new(),
            maxq: VecDeque::new(),
        }
    }

    /// Record an offered rank, evicting the oldest beyond the window.
    fn observe(&mut self, r: u64) {
        self.ranks.push_back(r);
        while self.minq.back().is_some_and(|&b| b > r) {
            self.minq.pop_back();
        }
        self.minq.push_back(r);
        while self.maxq.back().is_some_and(|&b| b < r) {
            self.maxq.pop_back();
        }
        self.maxq.push_back(r);
        if self.ranks.len() > self.size {
            let old = self.ranks.pop_front().expect("window non-empty");
            if self.minq.front() == Some(&old) {
                self.minq.pop_front();
            }
            if self.maxq.front() == Some(&old) {
                self.maxq.pop_front();
            }
        }
    }

    fn min(&self) -> u64 {
        *self.minq.front().expect("observe before min")
    }

    fn max(&self) -> u64 {
        *self.maxq.front().expect("observe before max")
    }
}

// ---------------------------------------------------------------------------
// Rifo
// ---------------------------------------------------------------------------

/// RIFO: a single FIFO with a windowed **relative-rank** admission gate.
///
/// The queue itself never reorders — all rank-awareness lives at
/// admission. Every offered rank updates a sliding window (length
/// [`DEFAULT_RIFO_WINDOW`]) tracking the min and max rank seen recently.
/// A push into a *bounded* Rifo is admitted iff the rank's relative
/// position inside the window span does not exceed the free-buffer
/// fraction:
///
/// ```text
/// (rank - wmin) / (wmax - wmin)  <=  free / capacity
/// ```
///
/// evaluated in exact integer arithmetic. A nearly empty queue admits
/// almost everything; a nearly full queue admits only ranks near the
/// windowed minimum — RIFO's "important packets get the scarce buffer"
/// rule. Rejections surface as ordinary [`PifoFull`] errors, so drop
/// accounting in trees/switches is unchanged. An **unbounded** Rifo has
/// no scarcity signal and admits everything (a plain FIFO).
#[derive(Debug, Clone)]
pub struct Rifo<T> {
    fifo: VecDeque<(Rank, T)>,
    window: RankWindow,
    capacity: Option<usize>,
    rejects: u64,
}

impl<T> Default for Rifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Rifo<T> {
    /// An unbounded Rifo (degenerates to a plain FIFO — the admission
    /// gate needs a capacity to meter against).
    pub fn new() -> Self {
        Rifo {
            fifo: VecDeque::new(),
            window: RankWindow::new(DEFAULT_RIFO_WINDOW),
            capacity: None,
            rejects: 0,
        }
    }

    /// A bounded Rifo admitting by windowed relative rank against
    /// `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.capacity = Some(capacity);
        q
    }

    /// How many pushes the admission gate refused.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }
}

impl<T> PifoQueue<T> for Rifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        let r = rank.value();
        self.window.observe(r);
        if let Some(cap) = self.capacity {
            let len = self.fifo.len();
            let admitted = len < cap && {
                let (wmin, wmax) = (self.window.min(), self.window.max());
                // (r - wmin) * cap <= (wmax - wmin) * free, in u128 so
                // full-range u64 ranks cannot overflow.
                wmax == wmin
                    || (r - wmin) as u128 * cap as u128
                        <= (wmax - wmin) as u128 * (cap - len) as u128
            };
            if !admitted {
                self.rejects += 1;
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        self.fifo.push_back((rank, item));
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.fifo.pop_front()
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.fifo.front().map(|(r, t)| (*r, t))
    }

    fn len(&self) -> usize {
        self.fifo.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl<T> PifoInspect<T> for Rifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        Box::new(self.fifo.iter().map(|(r, t)| (*r, t)))
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.fifo
            .iter()
            .find(|(_, t)| pred(t))
            .map(|(r, t)| (*r, t))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        let idx = self.fifo.iter().position(|(_, t)| pred(t))?;
        self.fifo.remove(idx)
    }
}

// ---------------------------------------------------------------------------
// Aifo
// ---------------------------------------------------------------------------

/// AIFO-style single FIFO with **windowed-quantile** admission.
///
/// Keeps a sliding sample of the last [`DEFAULT_AIFO_WINDOW`] offered
/// ranks. A push into a *bounded* Aifo is admitted iff the rank's
/// quantile within the sample does not exceed the free-buffer fraction:
///
/// ```text
/// |{w in window : w < rank}| / |window|  <=  free / capacity
/// ```
///
/// in exact integer arithmetic (equal ranks do not count against the
/// candidate, biasing ties toward admission). Compared with [`Rifo`]'s
/// min/max span this is insensitive to rank outliers — one giant rank
/// cannot stretch the gate open — at O(W) per push for the sample scan.
/// Unbounded Aifo admits everything (a plain FIFO).
#[derive(Debug, Clone)]
pub struct Aifo<T> {
    fifo: VecDeque<(Rank, T)>,
    window: VecDeque<u64>,
    window_size: usize,
    capacity: Option<usize>,
    rejects: u64,
}

impl<T> Default for Aifo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Aifo<T> {
    /// An unbounded Aifo (degenerates to a plain FIFO — the quantile
    /// gate needs a capacity to meter against).
    pub fn new() -> Self {
        Aifo {
            fifo: VecDeque::new(),
            window: VecDeque::with_capacity(DEFAULT_AIFO_WINDOW + 1),
            window_size: DEFAULT_AIFO_WINDOW,
            capacity: None,
            rejects: 0,
        }
    }

    /// A bounded Aifo admitting by windowed rank quantile against
    /// `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.capacity = Some(capacity);
        q
    }

    /// How many pushes the admission gate refused.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }
}

impl<T> PifoQueue<T> for Aifo<T> {
    fn try_push(&mut self, rank: Rank, item: T) -> Result<(), PifoFull<T>> {
        let r = rank.value();
        self.window.push_back(r);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
        if let Some(cap) = self.capacity {
            let len = self.fifo.len();
            let admitted = len < cap && {
                let below = self.window.iter().filter(|&&w| w < r).count();
                // below / |window| <= free / cap, cross-multiplied.
                below as u128 * cap as u128 <= (cap - len) as u128 * self.window.len() as u128
            };
            if !admitted {
                self.rejects += 1;
                return Err(PifoFull {
                    rank,
                    item,
                    capacity: cap,
                });
            }
        }
        self.fifo.push_back((rank, item));
        Ok(())
    }

    fn pop(&mut self) -> Option<(Rank, T)> {
        self.fifo.pop_front()
    }

    fn peek(&self) -> Option<(Rank, &T)> {
        self.fifo.front().map(|(r, t)| (*r, t))
    }

    fn len(&self) -> usize {
        self.fifo.len()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl<T> PifoInspect<T> for Aifo<T> {
    fn iter_in_order(&self) -> Box<dyn Iterator<Item = (Rank, &T)> + '_> {
        Box::new(self.fifo.iter().map(|(r, t)| (*r, t)))
    }

    fn peek_first_matching(&self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, &T)> {
        self.fifo
            .iter()
            .find(|(_, t)| pred(t))
            .map(|(r, t)| (*r, t))
    }

    fn pop_first_matching(&mut self, pred: &mut dyn FnMut(&T) -> bool) -> Option<(Rank, T)> {
        let idx = self.fifo.iter().position(|(_, t)| pred(t))?;
        self.fifo.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_pifo_separates_rank_bands() {
        let mut q = SpPifo::new(2);
        // Alternating high/low ranks: the two bands end up in different
        // queues, and the low band drains first.
        for (r, v) in [(100, 'a'), (5, 'b'), (110, 'c'), (6, 'd')] {
            q.push(Rank(r), v);
        }
        let drained: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(drained, vec!['b', 'd', 'a', 'c']);
    }

    #[test]
    fn sp_pifo_push_down_keeps_bounds_sane() {
        let mut q = SpPifo::new(4);
        q.push(Rank(1000), ());
        assert_eq!(q.bounds(), &[0, 0, 0, 1000]);
        // Rank below every bound triggers a push-down.
        q.push(Rank(u64::MIN), ());
        assert_eq!(q.pushdowns(), 0, "bound 0 admits rank 0 without adapting");
        let mut q = SpPifo::new(2);
        q.push(Rank(10), ()); // queue 1, bound 10
        q.push(Rank(4), ()); // queue 0, bound 4 (push-up)
        q.push(Rank(2), ()); // undercuts both: push-down by 2
        assert_eq!(q.pushdowns(), 1);
        assert_eq!(q.bounds(), &[2, 8]);
        assert!(q.bounds().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sp_pifo_k1_is_fifo() {
        let mut q = SpPifo::new(1);
        for (i, r) in [9u64, 3, 7, 3, 1].into_iter().enumerate() {
            q.push(Rank(r), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sp_pifo_capacity_round_trip() {
        let mut q = SpPifo::with_capacity(2, 2);
        q.push(Rank(1), 'a');
        q.push(Rank(2), 'b');
        let err = q.try_push(Rank(3), 'c').unwrap_err();
        assert_eq!((err.rank, err.item, err.capacity), (Rank(3), 'c', 2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rifo_unbounded_is_fifo() {
        let mut q = Rifo::new();
        for (i, r) in [50u64, 10, 90, 10].into_iter().enumerate() {
            q.push(Rank(r), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rifo_gate_prefers_low_ranks_when_full() {
        let mut q = Rifo::with_capacity(4);
        // A degenerate window (all one rank) admits freely: fill up.
        for i in 0..4 {
            assert!(q.try_push(Rank(0), i).is_ok());
        }
        // The high rank stretches the window span to [0, 100] and the
        // full queue refuses it.
        assert!(q.try_push(Rank(100), 4).is_err());
        q.pop();
        // One slot free (free fraction 1/4): relative rank must be <= 1/4.
        assert!(q.try_push(Rank(90), 5).is_err(), "high rank refused");
        assert!(q.try_push(Rank(10), 6).is_ok(), "low rank admitted");
        assert_eq!(q.rejects(), 2);
    }

    #[test]
    fn aifo_gate_quantile() {
        let mut q = Aifo::with_capacity(4);
        // Equal ranks never count against themselves: the queue fills.
        for i in 0..4 {
            assert!(q.try_push(Rank(5), i).is_ok(), "push {i} at fill");
        }
        q.pop();
        q.pop();
        // free = 2/4; rank 100 sits above the whole 5-element sample
        // (quantile 4/5 > 1/2) and refuses; rank 1 is below everything
        // (quantile 0) and passes.
        assert!(q.try_push(Rank(100), 9).is_err());
        assert!(q.try_push(Rank(1), 10).is_ok());
        assert_eq!(q.rejects(), 1);
    }

    #[test]
    fn window_min_max_tracks_eviction() {
        let mut w = RankWindow::new(3);
        for r in [5, 1, 9] {
            w.observe(r);
        }
        assert_eq!((w.min(), w.max()), (1, 9));
        w.observe(2); // evicts 5
        assert_eq!((w.min(), w.max()), (1, 9));
        w.observe(3); // evicts 1
        assert_eq!((w.min(), w.max()), (2, 9));
        w.observe(4); // evicts 9
        assert_eq!((w.min(), w.max()), (2, 4));
    }

    #[test]
    fn inspect_order_matches_drain_order() {
        let mut q = SpPifo::new(3);
        for r in [40u64, 5, 33, 7, 21] {
            q.push(Rank(r), r);
        }
        let inspected: Vec<u64> = q.iter_in_order().map(|(_, v)| *v).collect();
        let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(inspected, drained);
    }

    #[test]
    fn pop_first_matching_preserves_len() {
        let mut q = Aifo::new();
        for r in [4u64, 8, 2] {
            q.push(Rank(r), r);
        }
        let got = q.pop_first_matching(&mut |v| *v == 8).unwrap();
        assert_eq!(got, (Rank(8), 8));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Rank(4), 4)));
        assert_eq!(q.pop(), Some((Rank(2), 2)));
    }
}
