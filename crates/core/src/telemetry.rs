//! Fabric-wide telemetry: flight-recorder event tracing, per-packet
//! path records, and time-series gauges.
//!
//! The paper's evaluation (§7) judges schedulers by what happens *inside*
//! the fabric — queue depths, admission verdicts, pause storms, rank
//! inversions — not only by the departure trace. This module provides the
//! three observability primitives the rest of the workspace hooks into:
//!
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of compact `Copy`
//!   [`TraceEvent`]s (enqueue, dequeue, drop, shaping park/release,
//!   pause/resume, pool alloc/free, fault), stamped with sim time and
//!   source. Recording is O(1) and allocation-free; the recorder is
//!   `Option`-gated at every hook site, so a disabled recorder costs one
//!   pointer-null branch on the hot path and nothing else.
//! * [`PathRecord`] / [`PathRecorder`] — INT-style per-packet digests: an
//!   opt-in mode where each packet accumulates a bounded list of
//!   [`PathHop`]s (node, rank, queue depth seen at enqueue, entry time)
//!   plus its enqueue/departure instants, surfaced after departure for
//!   post-hoc joins against the departure trace.
//! * [`GaugeSeries`] — named time series of sampled counters (per-port
//!   queue depth, pool occupancy, free-list length, paused-class count,
//!   inversion counters), assembled by the simulation layer.
//!
//! A run's telemetry is packaged as a [`TelemetrySnapshot`] with a
//! stable, serde-free JSON export ([`TelemetrySnapshot::to_json`], schema
//! tag `pifo-telemetry-v1`).
//!
//! # Determinism contract
//!
//! Telemetry observes; it never steers. Enabling any mode leaves
//! departure traces bit-identical (asserted by the workspace tests and
//! inside the overhead bench), and hook sites are placed at points whose
//! order is identical between the per-packet and batched tree paths, so
//! the event stream itself is byte-reproducible for a seeded run across
//! `PerPacket`/`Batched`/`Parallel` drains.

use crate::packet::FlowId;
use crate::time::Nanos;
use std::fmt::Write as _;

/// Sentinel for [`TraceEvent::node`] when the event has no tree node
/// (e.g. a drop whose classifier target was out of range, or a
/// fabric-level pause frame).
pub const NO_NODE: u32 = u32::MAX;

/// What happened. Each kind documents how it uses the two payload words
/// [`TraceEvent::value`] and [`TraceEvent::aux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A packet was admitted and pushed into its leaf PIFO.
    /// `value` = leaf rank, `aux` = leaf queue depth seen at enqueue.
    Enqueue = 0,
    /// A packet left the tree. `value` = the popped leaf rank,
    /// `aux` = packets remaining buffered after this dequeue.
    Dequeue = 1,
    /// A packet was rejected before entering any queue.
    /// `value` = packet id, `aux` = reason ([`drop_reason`] codes).
    Drop = 2,
    /// A shaping transaction parked a walk on the agenda (Fig 5).
    /// `value` = release time (ns), `aux` = buffer slot.
    ShapingPark = 3,
    /// A parked walk resumed. `value` = scheduled release time (ns),
    /// `aux` = buffer slot.
    ShapingRelease = 4,
    /// PFC pause asserted. `value` = traffic class.
    Pause = 5,
    /// PFC pause released. `value` = traffic class.
    Resume = 6,
    /// A packet-pool slot was claimed. `value` = slot index.
    PoolAlloc = 7,
    /// A packet-pool slot was returned. `value` = slot index.
    PoolFree = 8,
    /// A fabric fault / watchdog verdict. `value` = fault code,
    /// `aux` = how long the victim was paused (ns, saturating at
    /// `u32::MAX`).
    Fault = 9,
}

impl EventKind {
    /// Number of distinct kinds (array-sizing constant).
    pub const COUNT: usize = 10;

    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::Drop,
        EventKind::ShapingPark,
        EventKind::ShapingRelease,
        EventKind::Pause,
        EventKind::Resume,
        EventKind::PoolAlloc,
        EventKind::PoolFree,
        EventKind::Fault,
    ];

    /// Stable lowercase label (used by the JSON export).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Drop => "drop",
            EventKind::ShapingPark => "shaping_park",
            EventKind::ShapingRelease => "shaping_release",
            EventKind::Pause => "pause",
            EventKind::Resume => "resume",
            EventKind::PoolAlloc => "pool_alloc",
            EventKind::PoolFree => "pool_free",
            EventKind::Fault => "fault",
        }
    }
}

/// Reason codes carried in [`EventKind::Drop`]'s `aux` word.
pub mod drop_reason {
    /// The shared packet buffer (or its admission policy) rejected the
    /// packet.
    pub const BUFFER_FULL: u32 = 0;
    /// The classifier returned a node outside the tree.
    pub const UNKNOWN_NODE: u32 = 1;
    /// The classifier returned an interior node.
    pub const NOT_A_LEAF: u32 = 2;
}

/// One compact, `Copy` trace event: what happened, when, and where.
///
/// Exactly 32 bytes — two per cache line — so the recorder's ring write
/// stays cheap; the per-kind meaning of `value`/`aux` is documented on
/// [`EventKind`]. `aux` is the narrow payload word (depths, remaining
/// counts, slots, reason codes all fit 32 bits; the one wide quantity,
/// a fault's pause duration, is saturated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time the event was recorded at.
    pub time: Nanos,
    /// What happened.
    pub kind: EventKind,
    /// Source port (a tree's pool port, or the fabric port for
    /// pause/fault events).
    pub port: u16,
    /// Source tree node, or [`NO_NODE`].
    pub node: u32,
    /// The flow involved (zero when the event has no flow).
    pub flow: FlowId,
    /// First payload word (see [`EventKind`]).
    pub value: u64,
    /// Second payload word, 32-bit (see [`EventKind`]).
    pub aux: u32,
}

// The 32-byte layout is a perf contract, not an accident: the overhead
// bench budgets ring writes at two events per cache line.
const _: () = assert!(std::mem::size_of::<TraceEvent>() == 32);

/// A fixed-capacity ring buffer of [`TraceEvent`]s — the flight recorder.
///
/// Capacity is rounded up to a power of two so the hot-path write is an
/// index mask, one store, and two counter increments. Once full, the
/// oldest events are overwritten ([`FlightRecorder::overwritten`] counts
/// how many); per-kind totals keep counting regardless.
///
/// ```
/// use pifo_core::telemetry::{EventKind, FlightRecorder, TraceEvent, NO_NODE};
/// use pifo_core::prelude::*;
///
/// let mut fr = FlightRecorder::new(8);
/// for i in 0..10u64 {
///     fr.record(TraceEvent {
///         time: Nanos(i),
///         kind: EventKind::Enqueue,
///         port: 0,
///         node: NO_NODE,
///         flow: FlowId(0),
///         value: i,
///         aux: 0,
///     });
/// }
/// assert_eq!(fr.total_recorded(), 10);
/// assert_eq!(fr.overwritten(), 2);
/// let kept: Vec<u64> = fr.iter().map(|e| e.value).collect();
/// assert_eq!(kept, (2..10).collect::<Vec<_>>(), "oldest overwritten first");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    /// Pre-filled at construction so the hot-path write is a plain
    /// masked store — no branch, no growth.
    buf: Box<[TraceEvent]>,
    mask: usize,
    total: u64,
    counts: [u64; EventKind::COUNT],
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events (rounded up
    /// to a power of two, minimum 8). The ring is allocated up front so
    /// recording never allocates.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let zero = TraceEvent {
            time: Nanos(0),
            kind: EventKind::Enqueue,
            port: 0,
            node: NO_NODE,
            flow: FlowId(0),
            value: 0,
            aux: 0,
        };
        FlightRecorder {
            buf: vec![zero; cap].into_boxed_slice(),
            mask: cap - 1,
            total: 0,
            counts: [0; EventKind::COUNT],
        }
    }

    /// Record one event: O(1), allocation-free, branch-free.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.counts[ev.kind as usize] += 1;
        self.buf[self.total as usize & self.mask] = ev;
        self.total += 1;
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        (self.total as usize).min(self.buf.len())
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to ring wraparound.
    pub fn overwritten(&self) -> u64 {
        self.total - self.len() as u64
    }

    /// Lifetime count of events of `kind` (survives wraparound).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// All lifetime per-kind counts, indexed by discriminant.
    pub fn counts(&self) -> &[u64; EventKind::COUNT] {
        &self.counts
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let n = self.len();
        let start = if self.total as usize > n {
            self.total as usize & self.mask
        } else {
            0
        };
        (0..n).map(move |i| &self.buf[(start + i) & self.mask])
    }

    /// Retained events, oldest first, as an owned vector.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }

    /// Render the retained events as a JSON array (one object per event,
    /// same field layout as [`TelemetrySnapshot::to_json`]) — the format
    /// of the failure-diagnostics dumps CI archives.
    pub fn dump_json(&self) -> String {
        let mut s = String::from("[\n");
        let mut first = true;
        for ev in self.iter() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            write_event_json(&mut s, ev);
        }
        s.push_str("\n]\n");
        s
    }
}

fn write_event_json(s: &mut String, ev: &TraceEvent) {
    let _ = write!(
        s,
        "  {{\"t\": {}, \"kind\": \"{}\", \"port\": {}, \"node\": {}, \"flow\": {}, \
         \"value\": {}, \"aux\": {}}}",
        ev.time.as_nanos(),
        ev.kind.label(),
        ev.port,
        if ev.node == NO_NODE {
            -1
        } else {
            ev.node as i64
        },
        ev.flow.0,
        ev.value,
        ev.aux,
    );
}

/// Maximum hops retained per packet in a [`PathRecord`]; deeper walks set
/// [`PathRecord::truncated`]. Eight levels is far beyond any scheduling
/// hierarchy in the paper (Fig 3 is two levels).
pub const MAX_PATH_HOPS: usize = 8;

/// One hop of a packet's enqueue walk: which node ranked it, the rank it
/// got, and the queue depth it found there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathHop {
    /// The tree node this hop's element was pushed into.
    pub node: u32,
    /// The rank the node's scheduling transaction assigned.
    pub rank: u64,
    /// Scheduling-PIFO depth observed just before the push.
    pub depth: u32,
    /// When the element entered the node's PIFO.
    pub entered: Nanos,
}

/// An INT-style per-packet digest: the hops a packet's enqueue walk took
/// and the instants it entered and left the tree.
///
/// `departed - enqueued` reconciles exactly with the departure trace's
/// wait accounting (`Departure::wait` in `pifo-sim`) — the simulation
/// layer finalizes `departed` with the transmit start time, and
/// `enqueued` is the tree-enqueue instant, which is the packet's arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRecord {
    /// Raw packet id.
    pub packet: u64,
    /// The packet's flow.
    pub flow: FlowId,
    /// The pool port of the tree that buffered it.
    pub port: u16,
    /// When the packet entered the tree (tree-enqueue `now`).
    pub enqueued: Nanos,
    /// When the packet departed (finalized by the sim layer to the
    /// transmit start instant).
    pub departed: Nanos,
    hops: [PathHop; MAX_PATH_HOPS],
    hop_count: u8,
    /// True when the walk had more than [`MAX_PATH_HOPS`] hops and the
    /// extra hops were discarded.
    pub truncated: bool,
}

impl PathRecord {
    /// The recorded hops, leaf first.
    pub fn hops(&self) -> &[PathHop] {
        &self.hops[..self.hop_count as usize]
    }

    /// Time from tree enqueue to departure — the packet's total
    /// residence in the tree.
    pub fn wait(&self) -> Nanos {
        Nanos(
            self.departed
                .as_nanos()
                .saturating_sub(self.enqueued.as_nanos()),
        )
    }

    /// Residence time attributable to hop `i`: from that hop's entry to
    /// the next hop's entry (or to departure for the last hop). For
    /// work-conserving trees every hop of one walk shares an entry time,
    /// so the leaf hop carries the full residence.
    pub fn residence(&self, i: usize) -> Nanos {
        let hops = self.hops();
        let start = hops[i].entered.as_nanos();
        let end = hops
            .get(i + 1)
            .map(|h| h.entered.as_nanos())
            .unwrap_or(self.departed.as_nanos());
        Nanos(end.saturating_sub(start))
    }
}

/// Accumulates [`PathRecord`]s for in-flight packets, keyed by their
/// packet-pool slot, and hands back completed records in departure order.
///
/// All three mutators are no-ops for unknown slots, so hook sites never
/// need to know whether a given walk belongs to a tracked packet (e.g.
/// shaping resumptions whose packet already departed).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PathRecorder {
    inflight: Vec<Option<PathRecord>>,
    completed: Vec<PathRecord>,
}

impl PathRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a record for the packet admitted into pool slot `slot`.
    pub fn begin(&mut self, slot: usize, packet: u64, flow: FlowId, port: u16, enqueued: Nanos) {
        if slot >= self.inflight.len() {
            self.inflight.resize(slot + 1, None);
        }
        self.inflight[slot] = Some(PathRecord {
            packet,
            flow,
            port,
            enqueued,
            departed: enqueued,
            hops: [PathHop::default(); MAX_PATH_HOPS],
            hop_count: 0,
            truncated: false,
        });
    }

    /// Append a hop to slot `slot`'s record (no-op when untracked; sets
    /// `truncated` past [`MAX_PATH_HOPS`]).
    pub fn hop(&mut self, slot: usize, node: u32, rank: u64, depth: u32, entered: Nanos) {
        let Some(Some(rec)) = self.inflight.get_mut(slot) else {
            return;
        };
        let n = rec.hop_count as usize;
        if n < MAX_PATH_HOPS {
            rec.hops[n] = PathHop {
                node,
                rank,
                depth,
                entered,
            };
            rec.hop_count += 1;
        } else {
            rec.truncated = true;
        }
    }

    /// Close slot `slot`'s record at `departed` and queue it for
    /// [`drain_completed`](Self::drain_completed) (no-op when untracked).
    pub fn finish(&mut self, slot: usize, departed: Nanos) {
        let Some(entry) = self.inflight.get_mut(slot) else {
            return;
        };
        if let Some(mut rec) = entry.take() {
            rec.departed = departed;
            self.completed.push(rec);
        }
    }

    /// Take every completed record, in departure order.
    pub fn drain_completed(&mut self) -> Vec<PathRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Completed records waiting to be drained.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }
}

/// One sample of a gauge: `(time, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugePoint {
    /// Sample instant.
    pub time: Nanos,
    /// Sampled value.
    pub value: u64,
}

/// A named time series of [`GaugePoint`]s (e.g. `"port3.depth"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Series name, stable across runs (used as the JSON key).
    pub name: String,
    /// Samples in time order.
    pub points: Vec<GaugePoint>,
}

impl GaugeSeries {
    /// An empty series called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GaugeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, time: Nanos, value: u64) {
        self.points.push(GaugePoint { time, value });
    }
}

/// How much telemetry a run collects. Passed to the simulation layer
/// (e.g. `SwitchBuilder::with_telemetry` in `pifo-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Flight-recorder ring capacity per tree (rounded up to a power of
    /// two). Sized so a diagnostic window survives while the ring's
    /// working set stays cache-resident: at one enqueue + one dequeue +
    /// two pool events per packet, 256 retains the last ~64 packets per
    /// port in 8 KiB. Larger rings keep more history but cost
    /// throughput — the hot loop streams writes over the whole ring.
    pub ring_capacity: usize,
    /// Also collect per-packet [`PathRecord`]s (the most expensive mode).
    pub path_records: bool,
    /// Sample gauges every this many scheduling rounds.
    pub sample_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 256,
            path_records: false,
            sample_every: 16,
        }
    }
}

impl TelemetryConfig {
    /// Default config plus per-packet path records.
    pub fn with_paths() -> Self {
        TelemetryConfig {
            path_records: true,
            ..TelemetryConfig::default()
        }
    }
}

/// A run's merged telemetry: lifetime event counts, the retained event
/// stream (deterministically ordered by `(time, port, per-port index)`),
/// and every gauge series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Total events recorded across all sources (including overwritten).
    pub events_recorded: u64,
    /// Lifetime per-kind counts, indexed by [`EventKind`] discriminant.
    pub counts: [u64; EventKind::COUNT],
    /// Retained events, merged and deterministically ordered.
    pub events: Vec<TraceEvent>,
    /// All gauge series.
    pub gauges: Vec<GaugeSeries>,
}

impl TelemetrySnapshot {
    /// Lifetime count of `kind` events.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Merge another source's recorder into this snapshot (events are
    /// appended; call [`sort_events`](Self::sort_events) once all sources
    /// are merged).
    pub fn absorb_recorder(&mut self, recorder: &FlightRecorder) {
        self.events_recorded += recorder.total_recorded();
        for (acc, n) in self.counts.iter_mut().zip(recorder.counts()) {
            *acc += n;
        }
        self.events.extend(recorder.iter().copied());
    }

    /// Put the merged event stream into its canonical order: by time,
    /// then source port, preserving each source's own recording order.
    /// Deterministic for a seeded run regardless of how many sources
    /// were merged or in what order the fabric drained them.
    pub fn sort_events(&mut self) {
        // Recording order within one (time, port) group is the original
        // relative order as long as sources were absorbed port-by-port:
        // a stable sort never reorders equal keys.
        self.events.sort_by_key(|e| (e.time, e.port));
    }

    /// Stable JSON export, schema `pifo-telemetry-v1`: counts, gauges,
    /// then the retained events. Serde-free and deterministic — two
    /// identically-seeded runs render byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"pifo-telemetry-v1\",\n");
        let _ = writeln!(s, "  \"events_recorded\": {},", self.events_recorded);
        let _ = writeln!(s, "  \"events_retained\": {},", self.events.len());
        s.push_str("  \"counts\": {");
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", kind.label(), self.counts[*kind as usize]);
        }
        s.push_str("},\n  \"gauges\": [\n");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let _ = write!(s, "    {{\"name\": \"{}\", \"points\": [", g.name);
            for (j, p) in g.points.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{}, {}]", p.time.as_nanos(), p.value);
            }
            s.push_str("]}");
        }
        s.push_str("\n  ],\n  \"events\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            write_event_json(&mut s, ev);
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind, value: u64) -> TraceEvent {
        TraceEvent {
            time: Nanos(t),
            kind,
            port: 0,
            node: NO_NODE,
            flow: FlowId(7),
            value,
            aux: 0,
        }
    }

    #[test]
    fn ring_wraps_oldest_first() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..20 {
            fr.record(ev(i, EventKind::Enqueue, i));
        }
        assert_eq!(fr.capacity(), 8);
        assert_eq!(fr.total_recorded(), 20);
        assert_eq!(fr.overwritten(), 12);
        let vals: Vec<u64> = fr.iter().map(|e| e.value).collect();
        assert_eq!(vals, (12..20).collect::<Vec<_>>());
        assert_eq!(fr.count(EventKind::Enqueue), 20, "counts survive wrap");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 8);
        assert_eq!(FlightRecorder::new(9).capacity(), 16);
        assert_eq!(FlightRecorder::new(4096).capacity(), 4096);
    }

    #[test]
    fn path_recorder_tracks_hops_and_truncates() {
        let mut pr = PathRecorder::new();
        pr.begin(3, 42, FlowId(1), 0, Nanos(10));
        for i in 0..(MAX_PATH_HOPS as u32 + 2) {
            pr.hop(3, i, i as u64, i, Nanos(10));
        }
        // Untracked slots are silently ignored.
        pr.hop(99, 0, 0, 0, Nanos(10));
        pr.finish(99, Nanos(50));
        pr.finish(3, Nanos(50));
        let recs = pr.drain_completed();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.packet, 42);
        assert_eq!(r.hops().len(), MAX_PATH_HOPS);
        assert!(r.truncated);
        assert_eq!(r.wait(), Nanos(40));
        assert_eq!(r.residence(MAX_PATH_HOPS - 1), Nanos(40));
    }

    #[test]
    fn snapshot_merge_and_order() {
        let mut a = FlightRecorder::new(8);
        a.record(ev(5, EventKind::Enqueue, 1));
        a.record(ev(9, EventKind::Dequeue, 1));
        let mut b = FlightRecorder::new(8);
        let mut e = ev(5, EventKind::Enqueue, 2);
        e.port = 1;
        b.record(e);

        let mut snap = TelemetrySnapshot::default();
        snap.absorb_recorder(&a);
        snap.absorb_recorder(&b);
        snap.sort_events();
        assert_eq!(snap.events_recorded, 3);
        assert_eq!(snap.count(EventKind::Enqueue), 2);
        let order: Vec<(u64, u16)> = snap
            .events
            .iter()
            .map(|e| (e.time.as_nanos(), e.port))
            .collect();
        assert_eq!(order, vec![(5, 0), (5, 1), (9, 0)]);
    }

    #[test]
    fn json_is_stable() {
        let mut snap = TelemetrySnapshot::default();
        let mut fr = FlightRecorder::new(8);
        fr.record(ev(1, EventKind::Drop, 7));
        snap.absorb_recorder(&fr);
        let mut g = GaugeSeries::new("port0.depth");
        g.push(Nanos(0), 3);
        snap.gauges.push(g);
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"pifo-telemetry-v1\""));
        assert!(json.contains("\"drop\": 1"));
        assert!(json.contains("\"port0.depth\""));
        assert_eq!(json, snap.to_json(), "rendering is deterministic");
    }
}
