//! Packet ranks.
//!
//! A rank is the value a scheduling transaction computes for an element
//! before it is pushed into a PIFO. Lower ranks dequeue first; ties are
//! broken in enqueue (FIFO) order by the PIFO itself (§2 of the paper).
//!
//! Ranks are unsigned 64-bit integers. The hardware design uses 16-bit
//! ranks (§5.3); we keep the software model wide so that transactions can
//! use nanosecond timestamps or fixed-point virtual times directly, and let
//! [`Rank::truncate`] model a narrower hardware field when needed.

use core::fmt;

/// Fixed-point shift used by transactions that divide (e.g. STFQ's
/// `length / weight`). Virtual times carry 8 fractional bits so that
/// integer division does not collapse distinct finish times.
pub const VT_SHIFT: u32 = 8;

/// A scheduling rank. Lower dequeues first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u64);

impl Rank {
    /// The most urgent possible rank.
    pub const MIN: Rank = Rank(0);
    /// The least urgent possible rank.
    pub const MAX: Rank = Rank(u64::MAX);

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Model a hardware rank field of `bits` bits by truncating the value.
    ///
    /// The paper's baseline flow scheduler stores 16-bit ranks; real
    /// deployments rely on rank values being re-normalised (e.g. virtual
    /// time deltas) so that truncation preserves order over the horizon of
    /// buffered packets. This helper is used by the hardware model and by
    /// tests that check how narrow ranks wrap.
    pub const fn truncate(self, bits: u32) -> Rank {
        if bits >= 64 {
            self
        } else {
            Rank(self.0 & ((1u64 << bits) - 1))
        }
    }

    /// Saturating addition on rank values.
    pub const fn saturating_add(self, delta: u64) -> Rank {
        Rank(self.0.saturating_add(delta))
    }
}

impl From<u64> for Rank {
    fn from(v: u64) -> Rank {
        Rank(v)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Rank(1) < Rank(2));
        assert!(Rank::MIN < Rank::MAX);
    }

    #[test]
    fn truncate_masks_low_bits() {
        assert_eq!(Rank(0x1_0005).truncate(16), Rank(5));
        assert_eq!(Rank(u64::MAX).truncate(64), Rank(u64::MAX));
        assert_eq!(Rank(0xFFFF).truncate(16), Rank(0xFFFF));
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(Rank(u64::MAX - 1).saturating_add(10), Rank::MAX);
        assert_eq!(Rank(5).saturating_add(3), Rank(8));
    }
}
