//! The fabric-wide shared packet pool with threshold admission (§5.1, §6.1).
//!
//! The paper's switch serves **all** ports from one shared packet buffer
//! (~60 K packets on the reference chip, §5.1), with buffer management
//! reduced to occupancy counters in front of the enqueue: "Before a
//! packet is enqueued into the scheduler, if any of these counters
//! exceeds a static or dynamic threshold, the packet is dropped" (§6.1).
//!
//! This module is that memory system in software:
//!
//! * [`SharedPacketPool`] owns the single packet slab (a chunked,
//!   lock-free slot store with a tagged free list and per-slot generation
//!   counters) **plus** the §6.1 counters: per-port and per-flow
//!   occupancy, maintained O(1) on every insert/release, and per-port
//!   admitted/rejected tallies.
//! * [`AdmissionPolicy`] decides drops *before* any slab insert:
//!   [`AdmissionPolicy::Unlimited`] (global capacity only — the naive
//!   shared buffer whose lockout pathology motivates §6.1),
//!   [`AdmissionPolicy::Static`] (a fixed per-port cap), and
//!   [`AdmissionPolicy::DynamicThreshold`] (Choudhury–Hahne \[14\]: a
//!   port may hold at most `alpha ×` the *remaining free* space, which
//!   tightens automatically under pressure and guarantees no port can
//!   lock the others out).
//! * [`PoolHandle`] is one port's capability into the pool: the
//!   scheduling tree holds a handle instead of owning a slab, so N trees
//!   genuinely compete for — and are protected within — one memory.
//! * [`Threshold`] is the reusable per-entity threshold arithmetic,
//!   promoted from `pifo-sim`'s buffer-management module (which now
//!   re-exports it); [`SharedBuffer`] is the counters-only §6.1 tracker
//!   used by the simulator's scheduler wrappers.
//!
//! # Threading model
//!
//! The pool is `Arc`-shared and safe to use from many threads at once:
//! occupancy and admitted/rejected counters are atomics, the free list is
//! a tagged (ABA-safe) Treiber stack, and slot lifecycle is tracked by a
//! per-slot generation counter (even = free, odd = occupied) so stale
//! handles are detected on access. A `ScheduleTree` therefore reads
//! packet fields straight from the slab — no `RefCell` borrow per access
//! — and whole trees (each holding a [`PoolHandle`]) can migrate to
//! worker threads for the parallel fabric drain.
//!
//! Two disciplines make this sound, both unchanged from the
//! single-threaded slab this design replaces:
//!
//! * a handle may only be dereferenced by a caller that holds (at least)
//!   one of the slot's references — the scheduling tree maintains this
//!   internally and never exposes a dangling handle;
//! * **admission decisions** under concurrency are linearizable but not
//!   externally ordered: two ports racing `try_insert` may observe
//!   either interleaving. The fabric keeps its departure traces
//!   deterministic by making shared-pool admission decisions in the
//!   global `(time, port)` round order (see `pifo-sim`'s `Switch::run`);
//!   the atomics make the *accounting* exact under any interleaving.
//!
//! Accounting is **checked**: decrementing an occupancy counter that is
//! already zero (a double release) panics in debug builds and increments
//! the visible [`SharedPacketPool::accounting_errors`] counter in release
//! builds, instead of silently saturating.

use crate::buffer::PktHandle;
use crate::packet::{FlowId, Packet};
use core::fmt;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Per-entity admission threshold — the §6.1 counter comparison, shared
/// by the pool's per-port policy and the simulator's per-flow
/// [`SharedBuffer`] tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threshold {
    /// No threshold on this entity: only the other gates (global
    /// capacity, the companion threshold of a
    /// [`AdmissionPolicy::PortFlow`] pair) apply.
    #[default]
    Unlimited,
    /// The entity may buffer at most this many packets.
    Static(usize),
    /// The entity may buffer at most `alpha × free_space` packets
    /// (Choudhury–Hahne dynamic thresholds \[14\]; `alpha` as a ratio of
    /// numerator/denominator to stay in integer arithmetic).
    Dynamic {
        /// Numerator of alpha.
        num: usize,
        /// Denominator of alpha.
        den: usize,
    },
}

impl Threshold {
    /// Would an entity currently holding `used` packets be allowed one
    /// more, given `free` unoccupied slots? (The global `free > 0` check
    /// is the caller's — this is only the threshold comparison.)
    pub fn admits(self, used: usize, free: usize) -> bool {
        match self {
            Threshold::Unlimited => true,
            Threshold::Static(t) => used < t,
            Threshold::Dynamic { num, den } => used < (free * num) / den,
        }
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threshold::Unlimited => write!(f, "unlimited"),
            Threshold::Static(t) => write!(f, "static({t})"),
            Threshold::Dynamic { num, den } => write!(f, "dynamic({num}/{den})"),
        }
    }
}

/// Fabric-wide admission policy applied per **port** in front of the
/// shared pool (§6.1). See the module docs for the three regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// No per-port threshold: only the pool's global capacity gates
    /// admission. One incast port can occupy the entire buffer and lock
    /// every other port out — the tail-drop pathology §6.1's thresholds
    /// exist to prevent. Also the right policy for a sole-owner pool.
    #[default]
    Unlimited,
    /// A fixed per-port cap: a port holding `per_port` packets is
    /// rejected regardless of how empty the rest of the pool is.
    Static {
        /// Maximum packets any one port may hold.
        per_port: usize,
    },
    /// Choudhury–Hahne dynamic thresholds: a port may hold at most
    /// `(num/den) × free_space` packets. As the pool fills, every port's
    /// threshold tightens; because a hog's own occupancy shrinks the free
    /// space it is compared against, the pool converges with headroom
    /// left over and lightly-loaded ports are always admitted.
    DynamicThreshold {
        /// Numerator of alpha.
        num: usize,
        /// Denominator of alpha.
        den: usize,
    },
    /// Combined port × flow admission — the paper's §5.1 "occupancies of
    /// various flows and ports" in one decision. A packet is admitted
    /// only if **both** thresholds pass: the port it targets and the flow
    /// it belongs to (per-flow occupancy is already tracked O(1) by the
    /// pool's sharded flow table). This subsumes the per-flow
    /// [`SharedBuffer`] tracker: `PortFlow { port: Unlimited, flow: t }`
    /// is exactly a flow-threshold buffer, and mixed pairs express
    /// lossless fabrics where a port watermark backs a per-flow fairness
    /// cap.
    PortFlow {
        /// Threshold applied to the target port's occupancy.
        port: Threshold,
        /// Threshold applied to the packet's flow occupancy (pool-wide).
        flow: Threshold,
    },
}

impl AdmissionPolicy {
    /// Would a port currently holding `used` packets be allowed one more,
    /// given `free` unoccupied slots?
    ///
    /// For [`AdmissionPolicy::PortFlow`] this evaluates the **port side
    /// only** — the flow side needs a flow identity, which this signature
    /// does not carry. Use [`AdmissionPolicy::admits_port_flow`] (or
    /// [`SharedPacketPool::would_admit_flow`]) for the full verdict.
    pub fn admits(self, used: usize, free: usize) -> bool {
        match self {
            AdmissionPolicy::Unlimited => true,
            AdmissionPolicy::Static { per_port } => Threshold::Static(per_port).admits(used, free),
            AdmissionPolicy::DynamicThreshold { num, den } => {
                Threshold::Dynamic { num, den }.admits(used, free)
            }
            AdmissionPolicy::PortFlow { port, .. } => port.admits(used, free),
        }
    }

    /// The full admission verdict given both occupancies. For the three
    /// port-only policies `flow_used` is ignored and this equals
    /// [`AdmissionPolicy::admits`]; for [`AdmissionPolicy::PortFlow`]
    /// both thresholds must pass.
    pub fn admits_port_flow(self, port_used: usize, flow_used: usize, free: usize) -> bool {
        match self {
            AdmissionPolicy::PortFlow { port, flow } => {
                port.admits(port_used, free) && flow.admits(flow_used, free)
            }
            other => other.admits(port_used, free),
        }
    }

    /// Does this policy consult per-flow occupancy? When true, admission
    /// paths must look up the packet's flow count before deciding.
    pub fn uses_flow_state(self) -> bool {
        matches!(
            self,
            AdmissionPolicy::PortFlow {
                flow: Threshold::Static(_) | Threshold::Dynamic { .. },
                ..
            }
        )
    }

    /// Short stable label for reports (`unlimited` / `static` /
    /// `dynamic` / `port_flow`).
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Unlimited => "unlimited",
            AdmissionPolicy::Static { .. } => "static",
            AdmissionPolicy::DynamicThreshold { .. } => "dynamic",
            AdmissionPolicy::PortFlow { .. } => "port_flow",
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionPolicy::Unlimited => write!(f, "unlimited"),
            AdmissionPolicy::Static { per_port } => write!(f, "static({per_port})"),
            AdmissionPolicy::DynamicThreshold { num, den } => write!(f, "dynamic({num}/{den})"),
            AdmissionPolicy::PortFlow { port, flow } => {
                write!(f, "port_flow(port={port},flow={flow})")
            }
        }
    }
}

/// The most ports one pool will register. Port indices are stored per
/// slot as a `u32`, and fabric layouts beyond this are configuration
/// bugs, not workloads — registration returns
/// [`PoolError::TooManyPorts`] instead of silently truncating the index.
pub const MAX_PORTS: usize = 65_536;

/// Errors surfaced by pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// `register_port` would exceed [`MAX_PORTS`].
    TooManyPorts {
        /// The configured limit ([`MAX_PORTS`]).
        limit: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::TooManyPorts { limit } => {
                write!(f, "pool already has {limit} ports (the maximum)")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// §6.1 counters for one port of the pool (all atomics — updated
/// lock-free from any thread).
#[derive(Debug, Default)]
struct PortCounters {
    /// Live slots currently attributed to this port.
    occupancy: AtomicUsize,
    /// Packets ever admitted for this port.
    admitted: AtomicU64,
    /// Packets ever rejected (policy or capacity) for this port.
    rejected: AtomicU64,
}

/// A snapshot of one port's pool counters (see [`SharedPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPoolStats {
    /// Live slots currently attributed to the port.
    pub occupancy: usize,
    /// Packets ever admitted for the port.
    pub admitted: u64,
    /// Packets ever rejected for the port.
    pub rejected: u64,
}

/// A snapshot of the whole pool (see [`SharedPool::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Live packets across all ports.
    pub live: usize,
    /// The global capacity, if bounded.
    pub capacity: Option<usize>,
    /// One entry per registered port.
    pub ports: Vec<PortPoolStats>,
}

// ---------------------------------------------------------------------------
// The lock-free slot store
// ---------------------------------------------------------------------------

/// Sentinel terminating the free list.
const FREE_END: u32 = u32::MAX;

/// log2 of the first chunk's slot count.
const CHUNK0_BITS: u32 = 6;

/// Chunk `k` holds `64 << k` slots; 26 chunks cover the whole `u32`
/// handle space.
const NUM_CHUNKS: usize = 26;

/// Number of flow-occupancy shards (power of two).
const FLOW_SHARDS: usize = 16;

/// One slot of the slab. The packet bytes live in an [`UnsafeCell`];
/// exclusive access is guaranteed by the slot lifecycle: a slot is
/// written only by the thread that just popped it off the free list (or
/// claimed it fresh), and moved out only by the thread that dropped its
/// last reference.
struct SlotCell {
    /// Lifecycle generation: even = free, odd = occupied. Incremented on
    /// every transition, so access to a freed slot is detected (and, in
    /// debug builds, a reused slot trips the coherence checks).
    gen: AtomicU32,
    /// Reference count; 0 for free slots.
    refs: AtomicU32,
    /// The port the §6.1 counters attribute this slot to.
    port: AtomicU32,
    /// Intrusive free-list link.
    next_free: AtomicU32,
    packet: UnsafeCell<MaybeUninit<Packet>>,
}

impl SlotCell {
    fn new_free() -> SlotCell {
        SlotCell {
            gen: AtomicU32::new(0),
            refs: AtomicU32::new(0),
            port: AtomicU32::new(0),
            next_free: AtomicU32::new(FREE_END),
            packet: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// Map a slot index to its (chunk, offset) pair. Chunk `k` covers
/// indices `[64·(2^k − 1), 64·(2^(k+1) − 1))`.
#[inline]
fn chunk_of(idx: u32) -> (usize, usize) {
    let shifted = (idx as u64) + (1 << CHUNK0_BITS);
    let k = (63 - shifted.leading_zeros() - CHUNK0_BITS) as usize;
    let base = ((1u64 << CHUNK0_BITS) << k) - (1 << CHUNK0_BITS);
    (k, (idx as u64 - base) as usize)
}

/// The single shared packet slab plus its §6.1 admission counters.
///
/// All mutation goes through the pool so the counters can never drift
/// from the slab: `try_insert` gates on the [`AdmissionPolicy`] *before*
/// any slab write (a reject hands the caller's packet back by move,
/// unchanged), and `release` settles the port/flow counters exactly when
/// the slot's last reference drops. Every counter update is O(1) and
/// atomic, so the pool may be driven from many threads at once (see the
/// module docs for the threading model).
///
/// Use [`SharedPacketPool::into_shared`] to start handing out per-port
/// [`PoolHandle`]s.
pub struct SharedPacketPool {
    /// Chunked slot storage: chunk `k` is a leaked `Box<[SlotCell]>` of
    /// `64 << k` slots, allocated on first use under [`Self::grow`] and
    /// freed in `Drop`. Published with `Release` so slot claimers see
    /// initialized cells.
    chunks: [AtomicPtr<SlotCell>; NUM_CHUNKS],
    /// Serializes chunk allocation (not slot claiming).
    grow: Mutex<()>,
    /// Slots ever claimed; indices below this are valid chunk storage.
    next_slot: AtomicU32,
    /// Tagged Treiber-stack head: `(aba_tag << 32) | slot_index`.
    free_head: AtomicU64,
    /// Live packets (occupied slots).
    live: AtomicUsize,
    capacity: Option<usize>,
    policy: AdmissionPolicy,
    /// Registered ports. The `RwLock` guards registration (rare, setup
    /// time); hot-path reads take the uncontended read lock, and
    /// [`PoolHandle`]s bypass it entirely for their own port.
    ports: RwLock<Vec<Arc<PortCounters>>>,
    /// Live slots per flow, sharded by flow id (entries removed at zero,
    /// so each map stays bounded by the instantaneous flow fan-in).
    flows: [Mutex<HashMap<FlowId, usize>>; FLOW_SHARDS],
    /// Accounting violations detected in release builds (debug builds
    /// panic instead) — see [`Self::accounting_errors`].
    accounting_errors: AtomicU64,
}

// SAFETY: the raw chunk pointers are owned by the pool (allocated under
// `grow`, freed only in `Drop`) and the `UnsafeCell` packet slots are
// accessed exclusively through the slot lifecycle protocol documented on
// `SlotCell` — insert writes only to a slot it just claimed, release
// moves out only on the last reference, and readers must hold a
// reference (the same discipline the single-threaded slab required).
unsafe impl Send for SharedPacketPool {}
// SAFETY: see above; all shared mutation goes through atomics or locks.
unsafe impl Sync for SharedPacketPool {}

impl fmt::Debug for SharedPacketPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPacketPool")
            .field("live", &self.live())
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("ports", &self.num_ports())
            .field("slots", &self.slot_count())
            .finish()
    }
}

impl Drop for SharedPacketPool {
    fn drop(&mut self) {
        for (k, chunk) in self.chunks.iter().enumerate() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                let len = (1usize << CHUNK0_BITS) << k;
                // SAFETY: the pointer came from `Box::into_raw` on a
                // boxed slice of exactly `len` cells, and is freed only
                // here. `Packet` has no `Drop`, so reconstructing the
                // box (whatever the occupancy) frees everything.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
                }
            }
        }
    }
}

/// Decrement an occupancy counter, refusing to go below zero: a double
/// release panics in debug builds and bumps `errors` in release builds
/// (the §6.1 counters must never silently saturate — a dynamic threshold
/// computed from a clamped counter admits traffic it should drop).
fn checked_dec(counter: &AtomicUsize, errors: &AtomicU64, what: &str) {
    if counter
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
        .is_err()
    {
        if cfg!(debug_assertions) {
            panic!("pool accounting underflow: {what} decremented below zero (double release)");
        }
        errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checked decrement of one entry in a flow-occupancy map, removing the
/// entry at zero so idle flows cost nothing. Returns `false` on
/// underflow (no entry, or an entry already at zero) and lets the
/// caller apply its double-release policy — this is the single copy of
/// the checked flow decrement, shared by [`SharedPacketPool::release`]
/// and [`SharedBuffer::on_dequeue`].
fn dec_flow_entry(map: &mut HashMap<FlowId, usize>, flow: FlowId) -> bool {
    match map.get_mut(&flow) {
        Some(c) if *c > 0 => {
            *c -= 1;
            if *c == 0 {
                map.remove(&flow);
            }
            true
        }
        _ => false,
    }
}

impl SharedPacketPool {
    fn with_capacity_and_policy(capacity: Option<usize>, policy: AdmissionPolicy) -> Self {
        SharedPacketPool {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            grow: Mutex::new(()),
            next_slot: AtomicU32::new(0),
            free_head: AtomicU64::new(FREE_END as u64),
            live: AtomicUsize::new(0),
            capacity,
            policy,
            ports: RwLock::new(Vec::new()),
            flows: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            accounting_errors: AtomicU64::new(0),
        }
    }

    /// A pool of `capacity` packets under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a dynamic denominator is zero.
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        match policy {
            AdmissionPolicy::DynamicThreshold { den, .. } => {
                assert!(den > 0, "alpha denominator must be positive");
            }
            AdmissionPolicy::PortFlow { port, flow } => {
                for t in [port, flow] {
                    if let Threshold::Dynamic { den, .. } = t {
                        assert!(den > 0, "alpha denominator must be positive");
                    }
                }
            }
            _ => {}
        }
        Self::with_capacity_and_policy(Some(capacity), policy)
    }

    /// An unbounded pool with no per-port threshold — the sole-owner
    /// configuration `TreeBuilder::build` uses when no buffer limit is
    /// set.
    pub fn unbounded() -> Self {
        Self::with_capacity_and_policy(None, AdmissionPolicy::Unlimited)
    }

    /// Register a new port, returning its dense index (from 0).
    ///
    /// # Panics
    ///
    /// Panics if the pool already has [`MAX_PORTS`] ports; use
    /// [`try_register_port`](Self::try_register_port) to handle the
    /// overflow as a typed error.
    pub fn register_port(&self) -> usize {
        self.try_register_port()
            .unwrap_or_else(|e| panic!("register_port: {e}"))
    }

    /// Register a new port, returning its dense index — or
    /// [`PoolError::TooManyPorts`] when the pool is at [`MAX_PORTS`]
    /// (port indices are stored per slot as `u32`; validation happens
    /// here, at registration, so no later cast can truncate).
    pub fn try_register_port(&self) -> Result<usize, PoolError> {
        let mut ports = self.ports.write().expect("pool port table poisoned");
        if ports.len() >= MAX_PORTS {
            return Err(PoolError::TooManyPorts { limit: MAX_PORTS });
        }
        ports.push(Arc::new(PortCounters::default()));
        Ok(ports.len() - 1)
    }

    /// Wrap the pool for sharing across ports.
    pub fn into_shared(self) -> SharedPool {
        SharedPool(Arc::new(self))
    }

    fn port_counters(&self, port: usize) -> Arc<PortCounters> {
        Arc::clone(&self.ports.read().expect("pool port table poisoned")[port])
    }

    /// The slot for a claimed index. Callers must pass `idx <
    /// next_slot` (handles only name claimed slots).
    #[inline]
    fn slot(&self, idx: u32) -> &SlotCell {
        debug_assert!(idx < self.next_slot.load(Ordering::Acquire));
        let (k, off) = chunk_of(idx);
        let ptr = self.chunks[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "claimed slot in unallocated chunk");
        // SAFETY: chunk `k` was allocated with `64 << k` cells before any
        // index inside it was published (see `ensure_chunk`), and chunks
        // are never freed while the pool is alive.
        unsafe { &*ptr.add(off) }
    }

    /// Make sure the chunk holding `idx` is allocated.
    fn ensure_chunk(&self, idx: u32) {
        let (k, _) = chunk_of(idx);
        if !self.chunks[k].load(Ordering::Acquire).is_null() {
            return;
        }
        let _g = self.grow.lock().expect("pool grow lock poisoned");
        if !self.chunks[k].load(Ordering::Acquire).is_null() {
            return; // lost the race; the winner allocated it
        }
        let len = (1usize << CHUNK0_BITS) << k;
        let chunk: Box<[SlotCell]> = (0..len).map(|_| SlotCell::new_free()).collect();
        self.chunks[k].store(Box::into_raw(chunk) as *mut SlotCell, Ordering::Release);
    }

    /// Pop a freed slot index, if any.
    fn pop_free(&self) -> Option<u32> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let idx = head as u32;
            if idx == FREE_END {
                return None;
            }
            let tag = head >> 32;
            // Reading a stale `next_free` is benign: the tagged CAS
            // below fails if anyone else touched the head since.
            let next = self.slot(idx).next_free.load(Ordering::Acquire);
            let new = ((tag + 1) << 32) | next as u64;
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }

    /// Push a freed slot index onto the free list.
    fn push_free(&self, idx: u32) {
        let slot = self.slot(idx);
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            slot.next_free.store(head as u32, Ordering::Release);
            let tag = head >> 32;
            let new = ((tag + 1) << 32) | idx as u64;
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Claim a never-used slot index, growing the slab.
    fn fresh_slot(&self) -> u32 {
        let idx = self.next_slot.fetch_add(1, Ordering::AcqRel);
        assert!(idx != u32::MAX, "packet pool exceeds u32 slots");
        self.ensure_chunk(idx);
        idx
    }

    /// Would a packet for `port` be admitted right now? (The same
    /// decision [`try_insert`](Self::try_insert) makes, without counting
    /// a reject. Under concurrent mutation this is advisory — another
    /// thread may change the answer before you act on it.)
    pub fn would_admit(&self, port: usize) -> bool {
        let live = self.live.load(Ordering::Acquire);
        let free = match self.capacity {
            Some(cap) => {
                if live >= cap {
                    return false;
                }
                cap - live
            }
            None => usize::MAX,
        };
        let used = self.port_counters(port).occupancy.load(Ordering::Acquire);
        self.policy.admits(used, free)
    }

    /// Would a packet of `flow` for `port` be admitted right now? This is
    /// the **full** [`try_insert`](Self::try_insert) verdict — global
    /// capacity, port threshold, *and* flow threshold for a
    /// [`AdmissionPolicy::PortFlow`] policy (for port-only policies it
    /// equals [`would_admit`](Self::would_admit)). Same advisory caveat
    /// under concurrent mutation; the lossless fabric calls it serially
    /// in round order, where it is exact.
    pub fn would_admit_flow(&self, port: usize, flow: FlowId) -> bool {
        let live = self.live.load(Ordering::Acquire);
        let free = match self.capacity {
            Some(cap) => {
                if live >= cap {
                    return false;
                }
                cap - live
            }
            None => usize::MAX,
        };
        let used = self.port_counters(port).occupancy.load(Ordering::Acquire);
        let flow_used = if self.policy.uses_flow_state() {
            self.flow_occupancy(flow)
        } else {
            0
        };
        self.policy.admits_port_flow(used, flow_used, free)
    }

    /// Insert `packet` on behalf of `port`, with one reference, returning
    /// its handle — or the packet itself, unchanged, when the global
    /// capacity or `port`'s admission threshold rejects it (the reject is
    /// tallied against the port).
    pub fn try_insert(&self, port: usize, packet: Packet) -> Result<PktHandle, Packet> {
        let counters = self.port_counters(port);
        self.try_insert_with(&counters, port as u32, packet)
    }

    /// The insert hot path, with the port's counters already resolved
    /// (what [`PoolHandle::try_insert`] uses to skip the port-table
    /// lock).
    fn try_insert_with(
        &self,
        counters: &PortCounters,
        port: u32,
        packet: Packet,
    ) -> Result<PktHandle, Packet> {
        // Phase 1: reserve global capacity, so `live <= capacity` holds
        // at every instant even under concurrent inserts.
        let free = match self.capacity {
            Some(cap) => {
                match self
                    .live
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |l| {
                        if l < cap {
                            Some(l + 1)
                        } else {
                            None
                        }
                    }) {
                    // The §6.1 free space as of the decision instant.
                    Ok(prev) => cap - prev,
                    Err(_) => {
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(packet);
                    }
                }
            }
            None => {
                self.live.fetch_add(1, Ordering::AcqRel);
                usize::MAX
            }
        };
        // Phase 2: the per-port (and, for a `PortFlow` policy, per-flow)
        // threshold (§5.1/§6.1), against the free space observed at
        // reservation — exactly the sequential decision.
        let used = counters.occupancy.load(Ordering::Acquire);
        let admitted = if self.policy.uses_flow_state() {
            let flow_used = self.flow_occupancy(packet.flow);
            self.policy.admits_port_flow(used, flow_used, free)
        } else {
            self.policy.admits(used, free)
        };
        if !admitted {
            checked_dec(&self.live, &self.accounting_errors, "pool live");
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(packet);
        }
        // Phase 3: claim a slot and publish the packet.
        let flow = packet.flow;
        let idx = self.pop_free().unwrap_or_else(|| self.fresh_slot());
        let slot = self.slot(idx);
        debug_assert_eq!(
            slot.gen.load(Ordering::Acquire) & 1,
            0,
            "claimed occupied slot"
        );
        debug_assert_eq!(slot.refs.load(Ordering::Acquire), 0);
        // SAFETY: the slot was just popped off the free list (or claimed
        // fresh), so this thread has exclusive access until the `gen`
        // store below publishes it.
        unsafe { (*slot.packet.get()).write(packet) };
        slot.port.store(port, Ordering::Relaxed);
        slot.refs.store(1, Ordering::Relaxed);
        slot.gen.fetch_add(1, Ordering::Release); // even -> odd: occupied
        counters.occupancy.fetch_add(1, Ordering::AcqRel);
        counters.admitted.fetch_add(1, Ordering::Relaxed);
        *self.flow_shard(flow).entry(flow).or_insert(0) += 1;
        Ok(PktHandle::from_raw(idx))
    }

    fn flow_shard(&self, flow: FlowId) -> std::sync::MutexGuard<'_, HashMap<FlowId, usize>> {
        self.flows[flow.0 as usize & (FLOW_SHARDS - 1)]
            .lock()
            .expect("pool flow shard poisoned")
    }

    /// Borrow the packet in `handle`'s slot (panics on a stale handle).
    ///
    /// The borrow is generation-checked: accessing a slot whose packet
    /// was fully released panics. Callers must hold one of the slot's
    /// references for the duration of the borrow (the scheduling tree's
    /// standing discipline), which is what keeps the slot from being
    /// freed or reused underneath the returned reference.
    pub fn get(&self, handle: PktHandle) -> &Packet {
        let idx = handle.index() as u32;
        assert!(
            handle.index() < self.next_slot.load(Ordering::Acquire) as usize,
            "stale packet handle {handle} (never claimed)"
        );
        let slot = self.slot(idx);
        assert_eq!(
            slot.gen.load(Ordering::Acquire) & 1,
            1,
            "stale packet handle {handle}"
        );
        // SAFETY: the slot is occupied and the caller holds a reference,
        // so no thread can free (and therefore rewrite) it while the
        // returned borrow lives.
        unsafe { (*slot.packet.get()).assume_init_ref() }
    }

    /// Add one reference to `handle`'s slot (the §6.1 counters track
    /// *slots*, so this changes no counter).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn retain(&self, handle: PktHandle) {
        let slot = self.slot(handle.index() as u32);
        assert_eq!(
            slot.gen.load(Ordering::Acquire) & 1,
            1,
            "retain of stale packet handle {handle}"
        );
        slot.refs.fetch_add(1, Ordering::AcqRel);
    }

    /// Drop one reference to `handle`'s slot. When it was the last, the
    /// packet moves out, the slot frees, and the owning port's and flow's
    /// occupancy counters are decremented — in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free (a stale handle), and — in
    /// debug builds — on any accounting underflow the release would
    /// cause; release builds tally underflows in
    /// [`accounting_errors`](Self::accounting_errors) instead.
    pub fn release(&self, handle: PktHandle) -> Option<Packet> {
        let idx = handle.index() as u32;
        let slot = self.slot(idx);
        assert_eq!(
            slot.gen.load(Ordering::Acquire) & 1,
            1,
            "release of stale packet handle {handle}"
        );
        // Checked decrement: a reference count already at zero means a
        // double release raced the slot's teardown.
        let prev = match slot
            .refs
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1))
        {
            Ok(prev) => prev,
            Err(_) => {
                if cfg!(debug_assertions) {
                    panic!("double release of packet handle {handle}");
                }
                self.accounting_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if prev > 1 {
            return None; // other holders remain
        }
        // Last reference: move the packet out, free the slot, settle the
        // counters against the inserting port.
        // SAFETY: we observed the count go 1 -> 0, so this thread is the
        // sole owner of the slot until `push_free` republishes it.
        let packet = unsafe { (*slot.packet.get()).assume_init_read() };
        let port = slot.port.load(Ordering::Relaxed) as usize;
        slot.gen.fetch_add(1, Ordering::Release); // odd -> even: free
        self.push_free(idx);
        checked_dec(&self.live, &self.accounting_errors, "pool live");
        let counters = self.port_counters(port);
        checked_dec(
            &counters.occupancy,
            &self.accounting_errors,
            "port occupancy",
        );
        {
            let mut shard = self.flow_shard(packet.flow);
            if !dec_flow_entry(&mut shard, packet.flow) {
                drop(shard);
                if cfg!(debug_assertions) {
                    panic!("pool accounting underflow: flow occupancy (double release)");
                }
                self.accounting_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(packet)
    }

    /// Number of references currently held on `handle`'s slot (0 for a
    /// free slot). For tests and diagnostics.
    pub fn ref_count(&self, handle: PktHandle) -> usize {
        let slot = self.slot(handle.index() as u32);
        if slot.gen.load(Ordering::Acquire) & 1 == 0 {
            0
        } else {
            slot.refs.load(Ordering::Acquire) as usize
        }
    }

    /// Pre-grow the slab so the next `additional` inserts allocate no
    /// chunks mid-burst; a no-op once the working set has warmed up
    /// (freed slots are always reused first).
    pub fn reserve(&self, additional: usize) {
        let target = self.next_slot.load(Ordering::Acquire) as u64 + additional as u64;
        if target == 0 {
            return;
        }
        let last = u32::try_from(target - 1).unwrap_or(u32::MAX - 1);
        let (k_last, _) = chunk_of(last);
        for k in 0..=k_last {
            // Ensure via the first index of each chunk.
            let first = ((1u64 << CHUNK0_BITS) << k) - (1 << CHUNK0_BITS);
            self.ensure_chunk(first as u32);
        }
    }

    /// Live packets across all ports.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// True when no packet is resident.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// The global capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Unoccupied slots under the global capacity (`usize::MAX` when
    /// unbounded) — the `free_space` the dynamic threshold compares
    /// against.
    pub fn free_space(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.live()),
            None => usize::MAX,
        }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Number of registered ports.
    pub fn num_ports(&self) -> usize {
        self.ports.read().expect("pool port table poisoned").len()
    }

    /// Total slots ever claimed (high-water mark of the working set).
    pub fn slot_count(&self) -> usize {
        self.next_slot.load(Ordering::Acquire) as usize
    }

    /// Live slots currently attributed to `port`.
    pub fn port_occupancy(&self, port: usize) -> usize {
        self.port_counters(port).occupancy.load(Ordering::Acquire)
    }

    /// Packets ever admitted for `port`.
    pub fn port_admitted(&self, port: usize) -> u64 {
        self.port_counters(port).admitted.load(Ordering::Relaxed)
    }

    /// Packets ever rejected for `port` (threshold or capacity).
    pub fn port_rejected(&self, port: usize) -> u64 {
        self.port_counters(port).rejected.load(Ordering::Relaxed)
    }

    /// Live slots currently holding packets of `flow`.
    pub fn flow_occupancy(&self, flow: FlowId) -> usize {
        self.flow_shard(flow).get(&flow).copied().unwrap_or(0)
    }

    /// Accounting violations detected so far (double releases and other
    /// counter underflows). Debug builds panic at the violation site
    /// instead, so this is only ever non-zero in release builds; a
    /// healthy pool reports 0 forever.
    pub fn accounting_errors(&self) -> u64 {
        self.accounting_errors.load(Ordering::Relaxed)
    }

    /// Check counter/slab coherence: per-port occupancies sum to the
    /// slab's live count, per-flow occupancies too, the free list visits
    /// exactly the free slots, and no accounting errors were recorded.
    /// O(slots); for tests, and **quiescent only** — concurrent mutation
    /// during the walk yields false positives.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found.
    pub fn assert_coherent(&self) {
        let claimed = self.next_slot.load(Ordering::Acquire);
        let mut occupied = 0usize;
        for idx in 0..claimed {
            let slot = self.slot(idx);
            if slot.gen.load(Ordering::Acquire) & 1 == 1 {
                occupied += 1;
                assert!(
                    slot.refs.load(Ordering::Acquire) > 0,
                    "occupied slot {idx} has zero references"
                );
                assert!(
                    (slot.port.load(Ordering::Relaxed) as usize) < self.num_ports().max(1),
                    "occupied slot {idx} attributed to unregistered port"
                );
            } else {
                assert_eq!(
                    slot.refs.load(Ordering::Acquire),
                    0,
                    "free slot {idx} holds references"
                );
            }
        }
        assert_eq!(self.live(), occupied, "live counter diverged from slots");
        // Walk the free list: it must visit every free slot exactly once.
        let mut seen = vec![false; claimed as usize];
        let mut cursor = self.free_head.load(Ordering::Acquire) as u32;
        let mut free_len = 0usize;
        while cursor != FREE_END {
            let idx = cursor as usize;
            assert!(idx < claimed as usize, "free list points out of range");
            assert!(!seen[idx], "free list cycles through slot {idx}");
            seen[idx] = true;
            free_len += 1;
            let slot = self.slot(cursor);
            assert_eq!(
                slot.gen.load(Ordering::Acquire) & 1,
                0,
                "free list visits occupied slot {idx}"
            );
            cursor = slot.next_free.load(Ordering::Acquire);
        }
        assert_eq!(
            free_len + occupied,
            claimed as usize,
            "free list misses some free slots"
        );
        let by_port: usize = {
            let ports = self.ports.read().expect("pool port table poisoned");
            ports
                .iter()
                .map(|p| p.occupancy.load(Ordering::Acquire))
                .sum()
        };
        assert_eq!(
            by_port,
            self.live(),
            "per-port occupancies diverged from the slab"
        );
        let mut by_flow = 0usize;
        for shard in &self.flows {
            let shard = shard.lock().expect("pool flow shard poisoned");
            assert!(
                !shard.values().any(|&c| c == 0),
                "zero-count flow entry leaked"
            );
            by_flow += shard.values().sum::<usize>();
        }
        assert_eq!(
            by_flow,
            self.live(),
            "per-flow occupancies diverged from the slab"
        );
        assert_eq!(
            self.accounting_errors(),
            0,
            "pool recorded accounting errors"
        );
    }
}

/// A cloneable reference to one [`SharedPacketPool`], for registering
/// ports and reading fabric-level statistics.
///
/// ```
/// use pifo_core::pool::{AdmissionPolicy, SharedPacketPool};
///
/// let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
///     .into_shared();
/// let port_a = pool.register_port();
/// let port_b = pool.register_port();
/// assert_eq!((port_a.port(), port_b.port()), (0, 1));
/// assert_eq!(pool.stats().capacity, Some(8));
/// ```
#[derive(Debug, Clone)]
pub struct SharedPool(Arc<SharedPacketPool>);

impl SharedPool {
    /// Register a new port and return its handle.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_PORTS`]; see
    /// [`try_register_port`](Self::try_register_port).
    pub fn register_port(&self) -> PoolHandle {
        self.try_register_port()
            .unwrap_or_else(|e| panic!("register_port: {e}"))
    }

    /// Register a new port and return its handle, or a typed error when
    /// the pool is at [`MAX_PORTS`].
    pub fn try_register_port(&self) -> Result<PoolHandle, PoolError> {
        let port = self.0.try_register_port()? as u32;
        Ok(PoolHandle {
            counters: self.0.port_counters(port as usize),
            pool: Arc::clone(&self.0),
            port,
        })
    }

    /// Access the pool for inspection (occupancies, coherence checks).
    /// Kept under the historical name from the `RefCell` era; the
    /// returned reference is a plain borrow — nothing can panic.
    #[allow(clippy::should_implement_trait)] // historical API name, not the Borrow trait
    pub fn borrow(&self) -> &SharedPacketPool {
        &self.0
    }

    /// A copyable snapshot of the pool-wide and per-port counters.
    pub fn stats(&self) -> PoolStats {
        let ports = self.0.ports.read().expect("pool port table poisoned");
        PoolStats {
            live: self.0.live(),
            capacity: self.0.capacity(),
            ports: ports
                .iter()
                .map(|p| PortPoolStats {
                    occupancy: p.occupancy.load(Ordering::Acquire),
                    admitted: p.admitted.load(Ordering::Relaxed),
                    rejected: p.rejected.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One port's capability into a [`SharedPacketPool`] — what a
/// `ScheduleTree` holds in place of a private slab.
///
/// All slab traffic flows through the handle, which supplies the port
/// identity for the §6.1 counters (and caches the port's counter block,
/// so the hot path never touches the port-table lock). Handles may be
/// cloned (e.g. to probe occupancy from outside the tree); the clone
/// refers to the same port. Handles are `Send` — a tree and its handle
/// can migrate to a worker thread together.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    pool: Arc<SharedPacketPool>,
    /// This port's counter block (the same `Arc` the pool's table
    /// holds).
    counters: Arc<PortCounters>,
    port: u32,
}

impl PoolHandle {
    /// A handle to a fresh single-port pool — the private-slab
    /// configuration: `capacity` is the only admission gate, exactly like
    /// the per-tree slab it replaced.
    pub fn sole_owner(capacity: Option<usize>) -> PoolHandle {
        let pool = match capacity {
            Some(cap) => SharedPacketPool::new(cap, AdmissionPolicy::Unlimited),
            None => SharedPacketPool::unbounded(),
        };
        pool.into_shared().register_port()
    }

    /// This handle's port index within the pool.
    pub fn port(&self) -> usize {
        self.port as usize
    }

    /// The shared pool this handle belongs to (for fabric-level stats).
    pub fn shared_pool(&self) -> SharedPool {
        SharedPool(Arc::clone(&self.pool))
    }

    /// The pool itself (slab occupancy, coherence checks, counters).
    pub fn pool(&self) -> &SharedPacketPool {
        &self.pool
    }

    /// Insert `packet` for this port (see
    /// [`SharedPacketPool::try_insert`]).
    pub fn try_insert(&self, packet: Packet) -> Result<PktHandle, Packet> {
        self.pool.try_insert_with(&self.counters, self.port, packet)
    }

    /// Would a packet for this port be admitted right now?
    pub fn would_admit(&self) -> bool {
        let live = self.pool.live.load(Ordering::Acquire);
        let free = match self.pool.capacity {
            Some(cap) => {
                if live >= cap {
                    return false;
                }
                cap - live
            }
            None => usize::MAX,
        };
        let used = self.counters.occupancy.load(Ordering::Acquire);
        self.pool.policy.admits(used, free)
    }

    /// Would a packet of `flow` for this port be admitted right now? The
    /// full [`try_insert`](Self::try_insert) verdict, flow threshold
    /// included (see [`SharedPacketPool::would_admit_flow`]) — the
    /// probe the lossless fabric gates ingress on before committing a
    /// packet to the tree.
    pub fn would_admit_flow(&self, flow: FlowId) -> bool {
        let live = self.pool.live.load(Ordering::Acquire);
        let free = match self.pool.capacity {
            Some(cap) => {
                if live >= cap {
                    return false;
                }
                cap - live
            }
            None => usize::MAX,
        };
        let used = self.counters.occupancy.load(Ordering::Acquire);
        let flow_used = if self.pool.policy.uses_flow_state() {
            self.pool.flow_occupancy(flow)
        } else {
            0
        };
        self.pool.policy.admits_port_flow(used, flow_used, free)
    }

    /// Borrow the packet in `handle`'s slot (generation-checked; see
    /// [`SharedPacketPool::get`]).
    pub fn get(&self, handle: PktHandle) -> &Packet {
        self.pool.get(handle)
    }

    /// Add one reference to `handle`'s slot.
    pub fn retain(&self, handle: PktHandle) {
        self.pool.retain(handle);
    }

    /// Drop one reference to `handle`'s slot; the last release moves the
    /// packet out and settles the counters.
    pub fn release(&self, handle: PktHandle) -> Option<Packet> {
        self.pool.release(handle)
    }

    /// Pre-grow the slab for `additional` imminent inserts.
    pub fn reserve(&self, additional: usize) {
        self.pool.reserve(additional);
    }

    /// Live packets across the whole pool (all ports).
    pub fn pool_live(&self) -> usize {
        self.pool.live()
    }

    /// Live slots currently attributed to this port.
    pub fn occupancy(&self) -> usize {
        self.counters.occupancy.load(Ordering::Acquire)
    }

    /// Packets ever rejected for this port.
    pub fn rejected(&self) -> u64 {
        self.counters.rejected.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// SharedBuffer — the counters-only §6.1 tracker (promoted from pifo-sim)
// ---------------------------------------------------------------------------

/// Occupancy-tracking admission control over a shared buffer, counting
/// **per flow** — the §6.1 mechanism in isolation, without a slab.
///
/// This is the counters-only tracker `pifo-sim`'s `ManagedScheduler`
/// wraps around any port scheduler (the sim module re-exports it from
/// here). The slab-owning [`SharedPacketPool`] applies the same
/// [`Threshold`] arithmetic per port.
///
/// Like the pool, its accounting is **checked**: a dequeue that would
/// drive a counter below zero (a double dequeue, or a dequeue of a
/// packet that was never admitted) panics in debug builds and bumps
/// [`accounting_errors`](Self::accounting_errors) in release builds —
/// the old behaviour of silently saturating at zero masked exactly the
/// bugs that corrupt dynamic-threshold decisions.
#[derive(Debug)]
pub struct SharedBuffer {
    capacity: usize,
    occupancy: usize,
    per_flow: HashMap<FlowId, usize>,
    /// The flow threshold, stored as the one shared policy type: a
    /// counters-only buffer is a `PortFlow` with an unlimited port side,
    /// so the verdict arithmetic lives in a single place
    /// ([`AdmissionPolicy::admits_port_flow`]) rather than being
    /// duplicated here.
    policy: AdmissionPolicy,
    drops: u64,
    accounting_errors: u64,
}

impl SharedBuffer {
    /// A buffer of `capacity` packets with the given per-flow threshold.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a dynamic denominator is zero.
    pub fn new(capacity: usize, threshold: Threshold) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        if let Threshold::Dynamic { den, .. } = threshold {
            assert!(den > 0, "alpha denominator must be positive");
        }
        SharedBuffer {
            capacity,
            occupancy: 0,
            per_flow: HashMap::new(),
            policy: AdmissionPolicy::PortFlow {
                port: Threshold::Unlimited,
                flow: threshold,
            },
            drops: 0,
            accounting_errors: 0,
        }
    }

    /// The buffer's admission policy (always a
    /// [`AdmissionPolicy::PortFlow`] with an unlimited port side).
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Would a packet of `flow` be admitted right now?
    pub fn would_admit(&self, flow: FlowId) -> bool {
        if self.occupancy >= self.capacity {
            return false;
        }
        let used = self.per_flow.get(&flow).copied().unwrap_or(0);
        self.policy
            .admits_port_flow(0, used, self.capacity - self.occupancy)
    }

    /// Record an admission.
    pub fn on_enqueue(&mut self, flow: FlowId) {
        self.occupancy += 1;
        *self.per_flow.entry(flow).or_insert(0) += 1;
    }

    fn accounting_error(&mut self, what: &str) {
        if cfg!(debug_assertions) {
            panic!("shared-buffer accounting underflow: {what} (double dequeue)");
        }
        self.accounting_errors += 1;
    }

    /// Record a departure.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the buffer (or the flow) has no
    /// recorded occupancy to release — a double dequeue. Release builds
    /// bump [`accounting_errors`](Self::accounting_errors) instead of
    /// silently clamping at zero.
    pub fn on_dequeue(&mut self, flow: FlowId) {
        if self.occupancy == 0 {
            self.accounting_error("buffer occupancy below zero");
        } else {
            self.occupancy -= 1;
        }
        if !dec_flow_entry(&mut self.per_flow, flow) {
            self.accounting_error("flow occupancy below zero");
        }
    }

    /// Record a drop.
    pub fn on_drop(&mut self) {
        self.drops += 1;
    }

    /// Packets currently buffered.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Packets of `flow` currently buffered.
    pub fn flow_occupancy(&self, flow: FlowId) -> usize {
        self.per_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Admission-control drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Accounting violations detected so far (release builds only; debug
    /// builds panic at the violation site). A healthy buffer reports 0.
    pub fn accounting_errors(&self) -> u64 {
        self.accounting_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 1_000, Nanos(id))
    }

    #[test]
    fn sole_owner_pool_matches_private_slab_semantics() {
        let h = PoolHandle::sole_owner(Some(2));
        let a = h.try_insert(pkt(0, 1)).unwrap();
        let _b = h.try_insert(pkt(1, 2)).unwrap();
        // At capacity: the rejected packet comes back unchanged, by move.
        let back = h.try_insert(pkt(2, 3)).unwrap_err();
        assert_eq!(back.id.0, 2);
        assert_eq!(h.rejected(), 1);
        assert_eq!(h.occupancy(), 2);
        let out = h.release(a).expect("sole reference");
        assert_eq!(out.id.0, 0);
        assert_eq!(h.occupancy(), 1);
        assert!(h.would_admit());
        h.shared_pool().borrow().assert_coherent();
    }

    #[test]
    fn dynamic_threshold_caps_a_hog_but_admits_a_light_port() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
            .into_shared();
        let hog = pool.register_port();
        let light = pool.register_port();
        // The hog fills until its occupancy reaches the shrinking free
        // space: with alpha = 1 it converges at half the buffer.
        let mut admitted = 0;
        let mut id = 0;
        while hog.would_admit() {
            hog.try_insert(pkt(id, 1)).unwrap();
            id += 1;
            admitted += 1;
            assert!(admitted <= 8, "must converge");
        }
        assert_eq!(admitted, 4, "alpha=1 -> at most half the buffer");
        // Lockout prevented: the light port still gets in.
        assert!(light.would_admit());
        light.try_insert(pkt(id, 2)).unwrap();
        assert_eq!(pool.stats().live, 5);
        pool.borrow().assert_coherent();
    }

    #[test]
    fn unlimited_policy_allows_full_lockout() {
        let pool = SharedPacketPool::new(4, AdmissionPolicy::Unlimited).into_shared();
        let hog = pool.register_port();
        let victim = pool.register_port();
        for id in 0..4 {
            hog.try_insert(pkt(id, 1)).unwrap();
        }
        // The naive shared cap lets the hog own every slot.
        assert!(!victim.would_admit(), "victim locked out");
        assert!(victim.try_insert(pkt(9, 2)).is_err());
        assert_eq!(victim.rejected(), 1);
    }

    #[test]
    fn static_policy_caps_each_port_independently() {
        let pool =
            SharedPacketPool::new(100, AdmissionPolicy::Static { per_port: 2 }).into_shared();
        let a = pool.register_port();
        let b = pool.register_port();
        a.try_insert(pkt(0, 1)).unwrap();
        a.try_insert(pkt(1, 1)).unwrap();
        assert!(a.try_insert(pkt(2, 1)).is_err(), "third on port A dropped");
        assert!(b.would_admit(), "port B unaffected");
        b.try_insert(pkt(3, 2)).unwrap();
        assert_eq!(pool.borrow().port_occupancy(0), 2);
        assert_eq!(pool.borrow().port_occupancy(1), 1);
    }

    #[test]
    fn release_settles_the_inserting_ports_counters() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::Unlimited).into_shared();
        let a = pool.register_port();
        let b = pool.register_port();
        let ha = a.try_insert(pkt(0, 7)).unwrap();
        let _hb = b.try_insert(pkt(1, 7)).unwrap();
        assert_eq!(pool.borrow().flow_occupancy(FlowId(7)), 2);
        // Releasing through *either* handle settles against port A — the
        // pool remembers which port owns the slot.
        b.release(ha).expect("sole reference");
        assert_eq!(pool.borrow().port_occupancy(0), 0);
        assert_eq!(pool.borrow().port_occupancy(1), 1);
        assert_eq!(pool.borrow().flow_occupancy(FlowId(7)), 1);
        pool.borrow().assert_coherent();
    }

    #[test]
    fn retained_slot_counts_until_last_release() {
        let h = PoolHandle::sole_owner(Some(4));
        let a = h.try_insert(pkt(0, 1)).unwrap();
        h.retain(a);
        assert!(h.release(a).is_none(), "one holder remains");
        assert_eq!(h.occupancy(), 1, "slot still counted");
        let p = h.release(a).expect("last reference");
        assert_eq!(p.id.0, 0);
        assert_eq!(h.occupancy(), 0);
    }

    #[test]
    fn freed_space_reopens_a_dynamic_threshold() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
            .into_shared();
        let h = pool.register_port();
        let mut handles = Vec::new();
        let mut id = 0;
        while h.would_admit() {
            handles.push(h.try_insert(pkt(id, 1)).unwrap());
            id += 1;
        }
        assert!(h.try_insert(pkt(99, 1)).is_err());
        // Draining reopens the threshold (free space grows *and* own
        // occupancy shrinks).
        h.release(handles.pop().unwrap());
        h.release(handles.pop().unwrap());
        assert!(h.would_admit());
        h.try_insert(pkt(100, 1)).unwrap();
    }

    #[test]
    fn slots_are_reused_after_release() {
        let h = PoolHandle::sole_owner(None);
        let a = h.try_insert(pkt(0, 1)).unwrap();
        let _b = h.try_insert(pkt(1, 1)).unwrap();
        h.release(a);
        let c = h.try_insert(pkt(2, 1)).unwrap();
        assert_eq!(c.index(), a.index(), "freed slot is reused first");
        assert_eq!(h.pool().slot_count(), 2, "no growth while free slots exist");
        h.pool().assert_coherent();
    }

    #[test]
    fn slab_grows_across_chunk_boundaries() {
        // Chunk 0 holds 64 slots; pushing past it exercises chunk
        // allocation and the index → (chunk, offset) mapping.
        let h = PoolHandle::sole_owner(None);
        let handles: Vec<_> = (0..200)
            .map(|i| h.try_insert(pkt(i, (i % 7) as u32)).unwrap())
            .collect();
        assert_eq!(h.pool_live(), 200);
        for (i, &hd) in handles.iter().enumerate() {
            assert_eq!(h.get(hd).id.0, i as u64);
        }
        h.pool().assert_coherent();
        for hd in handles {
            h.release(hd);
        }
        assert_eq!(h.pool_live(), 0);
        h.pool().assert_coherent();
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_panics() {
        let h = PoolHandle::sole_owner(None);
        let a = h.try_insert(pkt(0, 1)).unwrap();
        h.release(a);
        let _ = h.get(a);
    }

    #[test]
    fn double_release_of_freed_slot_is_detected() {
        // First release frees the slot; the second must be detected as a
        // stale handle, not silently clamp any counter.
        let h = PoolHandle::sole_owner(Some(4));
        let a = h.try_insert(pkt(0, 1)).unwrap();
        h.release(a).expect("sole reference");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.release(a)));
        assert!(err.is_err(), "double release must not be silent");
        assert_eq!(h.occupancy(), 0, "counters unaffected by the bad release");
        h.pool().assert_coherent();
    }

    #[test]
    fn port_registration_has_a_typed_overflow_error() {
        let pool = SharedPacketPool::new(4, AdmissionPolicy::Unlimited).into_shared();
        for _ in 0..MAX_PORTS {
            pool.try_register_port().expect("below the limit");
        }
        assert_eq!(pool.borrow().num_ports(), MAX_PORTS);
        // The boundary: one more is a typed error, not a truncated index.
        assert_eq!(
            pool.try_register_port().unwrap_err(),
            PoolError::TooManyPorts { limit: MAX_PORTS }
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.register_port()));
        assert!(err.is_err(), "the panicking variant reports it too");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_pool_rejected() {
        let _ = SharedPacketPool::new(0, AdmissionPolicy::Unlimited);
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn zero_alpha_denominator_rejected() {
        let _ = SharedPacketPool::new(4, AdmissionPolicy::DynamicThreshold { num: 1, den: 0 });
    }

    // ---- SharedBuffer (promoted from pifo-sim) ---------------------------

    #[test]
    fn shared_buffer_static_threshold_caps_each_flow() {
        let mut b = SharedBuffer::new(100, Threshold::Static(2));
        assert!(b.would_admit(FlowId(1)));
        b.on_enqueue(FlowId(1));
        b.on_enqueue(FlowId(1));
        assert!(!b.would_admit(FlowId(1)), "third of flow 1 dropped");
        assert!(b.would_admit(FlowId(2)), "other flows unaffected");
        assert_eq!(b.flow_occupancy(FlowId(1)), 2);
    }

    #[test]
    fn shared_buffer_dynamic_threshold_tightens_under_pressure() {
        // alpha = 1: a flow may hold at most the current free space.
        let mut b = SharedBuffer::new(8, Threshold::Dynamic { num: 1, den: 1 });
        let mut admitted = 0;
        while b.would_admit(FlowId(1)) {
            b.on_enqueue(FlowId(1));
            admitted += 1;
            assert!(admitted <= 8, "must converge");
        }
        assert_eq!(admitted, 4, "alpha=1 -> at most half the buffer");
        // A *different* flow still gets in: lockout prevented.
        assert!(b.would_admit(FlowId(2)));
    }

    #[test]
    fn shared_buffer_capacity_is_hard_limit() {
        let mut b = SharedBuffer::new(4, Threshold::Static(100));
        for f in 0..4u32 {
            assert!(b.would_admit(FlowId(f)));
            b.on_enqueue(FlowId(f));
        }
        assert!(!b.would_admit(FlowId(9)), "buffer full");
        b.on_dequeue(FlowId(0));
        assert!(b.would_admit(FlowId(9)));
        assert_eq!(b.occupancy(), 3);
    }

    #[test]
    fn shared_buffer_counts_drops() {
        let mut b = SharedBuffer::new(4, Threshold::Static(1));
        b.on_drop();
        b.on_drop();
        assert_eq!(b.drops(), 2);
    }

    /// The satellite regression: a double dequeue used to be silently
    /// clamped by `saturating_sub`, leaving the §6.1 counters wrong but
    /// plausible. It must now be *detected* — a panic in debug builds, a
    /// visible `accounting_errors` bump in release builds.
    #[test]
    fn shared_buffer_double_dequeue_is_detected_not_clamped() {
        let mut b = SharedBuffer::new(8, Threshold::Static(4));
        b.on_enqueue(FlowId(1));
        b.on_dequeue(FlowId(1));
        if cfg!(debug_assertions) {
            let err =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.on_dequeue(FlowId(1))));
            assert!(err.is_err(), "debug builds panic on the double dequeue");
        } else {
            b.on_dequeue(FlowId(1));
            assert_eq!(
                b.accounting_errors(),
                2,
                "release builds record both underflows (buffer + flow)"
            );
            assert_eq!(b.occupancy(), 0, "counter did not wrap");
        }
    }

    #[test]
    fn port_flow_policy_gates_on_both_occupancies() {
        let pool = SharedPacketPool::new(
            16,
            AdmissionPolicy::PortFlow {
                port: Threshold::Static(8),
                flow: Threshold::Static(2),
            },
        );
        let port = pool.register_port();
        // Flow 1 is admitted twice, then capped — while flow 2 (same
        // port) is still admitted: the cap is per flow, not per port.
        let a = pool.try_insert(port, pkt(0, 1)).expect("first of flow 1");
        let _b = pool.try_insert(port, pkt(1, 1)).expect("second of flow 1");
        assert!(!pool.would_admit_flow(port, FlowId(1)), "flow 1 at cap");
        assert!(pool.would_admit_flow(port, FlowId(2)), "flow 2 unaffected");
        assert!(pool.try_insert(port, pkt(2, 1)).is_err(), "flow 1 rejected");
        let _c = pool.try_insert(port, pkt(3, 2)).expect("flow 2 admitted");
        // Releasing a flow-1 packet reopens the flow threshold.
        pool.release(a);
        assert!(pool.would_admit_flow(port, FlowId(1)), "cap reopened");
        // The port-only probe ignores the flow side by design.
        assert!(pool.would_admit(port), "port side is under its threshold");
    }

    #[test]
    fn would_admit_flow_matches_try_insert_for_port_only_policies() {
        let pool = SharedPacketPool::new(2, AdmissionPolicy::Static { per_port: 2 });
        let port = pool.register_port();
        assert!(pool.would_admit_flow(port, FlowId(7)));
        let _a = pool.try_insert(port, pkt(0, 7)).expect("admitted");
        let _b = pool.try_insert(port, pkt(1, 7)).expect("admitted");
        // Global capacity exhausted: both probes agree with try_insert.
        assert!(!pool.would_admit_flow(port, FlowId(7)));
        assert!(!pool.would_admit(port));
        assert!(pool.try_insert(port, pkt(2, 7)).is_err());
    }

    #[test]
    fn shared_buffer_verdicts_match_port_flow_pool() {
        // The counters-only tracker and a one-port PortFlow pool with an
        // unlimited port side must produce identical verdicts for any
        // admit/dequeue history — the threshold arithmetic is one copy.
        let threshold = Threshold::Dynamic { num: 1, den: 2 };
        let mut buf = SharedBuffer::new(8, threshold);
        let pool = SharedPacketPool::new(
            8,
            AdmissionPolicy::PortFlow {
                port: Threshold::Unlimited,
                flow: threshold,
            },
        );
        let port = pool.register_port();
        let mut held: Vec<(FlowId, PktHandle)> = Vec::new();
        let seq: &[(u32, bool)] = &[
            // (flow, enqueue? — else dequeue oldest of that flow)
            (1, true),
            (1, true),
            (2, true),
            (1, false),
            (2, true),
            (1, true),
            (2, false),
        ];
        for (i, &(flow, enq)) in seq.iter().enumerate() {
            let flow = FlowId(flow);
            if enq {
                let b_says = buf.would_admit(flow);
                let p_says = pool.would_admit_flow(port, flow);
                assert_eq!(b_says, p_says, "step {i}: verdicts diverge");
                if b_says {
                    buf.on_enqueue(flow);
                    let h = pool
                        .try_insert(port, pkt(i as u64, flow.0))
                        .expect("agreed");
                    held.push((flow, h));
                }
            } else {
                let pos = held.iter().position(|(f, _)| *f == flow).expect("held");
                let (_, h) = held.remove(pos);
                buf.on_dequeue(flow);
                pool.release(h);
            }
            assert_eq!(buf.occupancy(), pool.live(), "step {i}: occupancy");
            assert_eq!(
                buf.flow_occupancy(flow),
                pool.flow_occupancy(flow),
                "step {i}: flow occupancy"
            );
        }
    }

    #[test]
    fn port_flow_policy_formats_and_labels() {
        let p = AdmissionPolicy::PortFlow {
            port: Threshold::Static(64),
            flow: Threshold::Dynamic { num: 1, den: 4 },
        };
        assert_eq!(p.label(), "port_flow");
        assert_eq!(
            p.to_string(),
            "port_flow(port=static(64),flow=dynamic(1/4))"
        );
        assert!(p.uses_flow_state());
        assert!(!AdmissionPolicy::PortFlow {
            port: Threshold::Static(64),
            flow: Threshold::Unlimited,
        }
        .uses_flow_state());
        assert!(!AdmissionPolicy::Unlimited.uses_flow_state());
    }
}
