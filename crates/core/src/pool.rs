//! The fabric-wide shared packet pool with threshold admission (§5.1, §6.1).
//!
//! The paper's switch serves **all** ports from one shared packet buffer
//! (~60 K packets on the reference chip, §5.1), with buffer management
//! reduced to occupancy counters in front of the enqueue: "Before a
//! packet is enqueued into the scheduler, if any of these counters
//! exceeds a static or dynamic threshold, the packet is dropped" (§6.1).
//!
//! This module is that memory system in software:
//!
//! * [`SharedPacketPool`] owns the single [`PacketBuffer`] slab (free
//!   list, refcounted slots, global capacity) **plus** the §6.1 counters:
//!   per-port and per-flow occupancy, maintained O(1) on every
//!   insert/release, and per-port admitted/rejected tallies.
//! * [`AdmissionPolicy`] decides drops *before* any slab insert:
//!   [`AdmissionPolicy::Unlimited`] (global capacity only — the naive
//!   shared buffer whose lockout pathology motivates §6.1),
//!   [`AdmissionPolicy::Static`] (a fixed per-port cap), and
//!   [`AdmissionPolicy::DynamicThreshold`] (Choudhury–Hahne \[14\]: a
//!   port may hold at most `alpha ×` the *remaining free* space, which
//!   tightens automatically under pressure and guarantees no port can
//!   lock the others out).
//! * [`PoolHandle`] is one port's capability into the pool: the
//!   scheduling tree holds a handle instead of owning a slab, so N trees
//!   genuinely compete for — and are protected within — one memory.
//! * [`Threshold`] is the reusable per-entity threshold arithmetic,
//!   promoted from `pifo-sim`'s buffer-management module (which now
//!   re-exports it); [`SharedBuffer`] is the counters-only §6.1 tracker
//!   used by the simulator's scheduler wrappers.
//!
//! Sharing is single-threaded by design (`Rc<RefCell<..>>`): the fabric
//! simulates ports in a deterministic global round interleaving, and the
//! pool is the memory model that a later parallel-drain PR will lift to
//! atomics. A sole-owner pool (what [`PoolHandle::sole_owner`] builds,
//! and what `TreeBuilder::build` uses) behaves exactly like the private
//! per-tree slab it replaced.

use crate::buffer::{PacketBuffer, PktHandle};
use crate::packet::{FlowId, Packet};
use core::fmt;
use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Per-entity admission threshold — the §6.1 counter comparison, shared
/// by the pool's per-port policy and the simulator's per-flow
/// [`SharedBuffer`] tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threshold {
    /// The entity may buffer at most this many packets.
    Static(usize),
    /// The entity may buffer at most `alpha × free_space` packets
    /// (Choudhury–Hahne dynamic thresholds \[14\]; `alpha` as a ratio of
    /// numerator/denominator to stay in integer arithmetic).
    Dynamic {
        /// Numerator of alpha.
        num: usize,
        /// Denominator of alpha.
        den: usize,
    },
}

impl Threshold {
    /// Would an entity currently holding `used` packets be allowed one
    /// more, given `free` unoccupied slots? (The global `free > 0` check
    /// is the caller's — this is only the threshold comparison.)
    pub fn admits(self, used: usize, free: usize) -> bool {
        match self {
            Threshold::Static(t) => used < t,
            Threshold::Dynamic { num, den } => used < (free * num) / den,
        }
    }
}

/// Fabric-wide admission policy applied per **port** in front of the
/// shared pool (§6.1). See the module docs for the three regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// No per-port threshold: only the pool's global capacity gates
    /// admission. One incast port can occupy the entire buffer and lock
    /// every other port out — the tail-drop pathology §6.1's thresholds
    /// exist to prevent. Also the right policy for a sole-owner pool.
    #[default]
    Unlimited,
    /// A fixed per-port cap: a port holding `per_port` packets is
    /// rejected regardless of how empty the rest of the pool is.
    Static {
        /// Maximum packets any one port may hold.
        per_port: usize,
    },
    /// Choudhury–Hahne dynamic thresholds: a port may hold at most
    /// `(num/den) × free_space` packets. As the pool fills, every port's
    /// threshold tightens; because a hog's own occupancy shrinks the free
    /// space it is compared against, the pool converges with headroom
    /// left over and lightly-loaded ports are always admitted.
    DynamicThreshold {
        /// Numerator of alpha.
        num: usize,
        /// Denominator of alpha.
        den: usize,
    },
}

impl AdmissionPolicy {
    /// Would a port currently holding `used` packets be allowed one more,
    /// given `free` unoccupied slots?
    pub fn admits(self, used: usize, free: usize) -> bool {
        match self {
            AdmissionPolicy::Unlimited => true,
            AdmissionPolicy::Static { per_port } => Threshold::Static(per_port).admits(used, free),
            AdmissionPolicy::DynamicThreshold { num, den } => {
                Threshold::Dynamic { num, den }.admits(used, free)
            }
        }
    }

    /// Short stable label for reports (`unlimited` / `static` /
    /// `dynamic`).
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Unlimited => "unlimited",
            AdmissionPolicy::Static { .. } => "static",
            AdmissionPolicy::DynamicThreshold { .. } => "dynamic",
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionPolicy::Unlimited => write!(f, "unlimited"),
            AdmissionPolicy::Static { per_port } => write!(f, "static({per_port})"),
            AdmissionPolicy::DynamicThreshold { num, den } => write!(f, "dynamic({num}/{den})"),
        }
    }
}

/// §6.1 counters for one port of the pool.
#[derive(Debug, Clone, Copy, Default)]
struct PortCounters {
    /// Live slots currently attributed to this port.
    occupancy: usize,
    /// Packets ever admitted for this port.
    admitted: u64,
    /// Packets ever rejected (policy or capacity) for this port.
    rejected: u64,
}

/// A snapshot of one port's pool counters (see [`SharedPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPoolStats {
    /// Live slots currently attributed to the port.
    pub occupancy: usize,
    /// Packets ever admitted for the port.
    pub admitted: u64,
    /// Packets ever rejected for the port.
    pub rejected: u64,
}

/// A snapshot of the whole pool (see [`SharedPool::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Live packets across all ports.
    pub live: usize,
    /// The global capacity, if bounded.
    pub capacity: Option<usize>,
    /// One entry per registered port.
    pub ports: Vec<PortPoolStats>,
}

/// The single shared packet slab plus its §6.1 admission counters.
///
/// All mutation goes through the pool so the counters can never drift
/// from the slab: `try_insert` gates on the [`AdmissionPolicy`] *before*
/// any slab write (a reject hands the caller's packet back by move,
/// unchanged), and `release` settles the port/flow counters exactly when
/// the slot's last reference drops. Every counter update is O(1).
///
/// Use [`SharedPacketPool::into_shared`] to start handing out per-port
/// [`PoolHandle`]s.
#[derive(Debug)]
pub struct SharedPacketPool {
    buffer: PacketBuffer,
    policy: AdmissionPolicy,
    ports: Vec<PortCounters>,
    /// Live slots per flow (entries removed at zero, so the map stays
    /// bounded by the instantaneous flow fan-in).
    flows: HashMap<FlowId, usize>,
    /// Which port each occupied slot is attributed to, indexed like the
    /// slab's slots — release consults this, so a slot is always settled
    /// against the port that inserted it.
    slot_port: Vec<u32>,
}

impl SharedPacketPool {
    /// A pool of `capacity` packets under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a dynamic denominator is zero.
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        if let AdmissionPolicy::DynamicThreshold { den, .. } = policy {
            assert!(den > 0, "alpha denominator must be positive");
        }
        SharedPacketPool {
            buffer: PacketBuffer::with_capacity(capacity),
            policy,
            ports: Vec::new(),
            flows: HashMap::new(),
            slot_port: Vec::new(),
        }
    }

    /// An unbounded pool with no per-port threshold — the sole-owner
    /// configuration `TreeBuilder::build` uses when no buffer limit is
    /// set.
    pub fn unbounded() -> Self {
        SharedPacketPool {
            buffer: PacketBuffer::new(),
            policy: AdmissionPolicy::Unlimited,
            ports: Vec::new(),
            flows: HashMap::new(),
            slot_port: Vec::new(),
        }
    }

    /// Register a new port, returning its dense index (from 0).
    pub fn register_port(&mut self) -> usize {
        self.ports.push(PortCounters::default());
        self.ports.len() - 1
    }

    /// Wrap the pool for sharing across ports.
    pub fn into_shared(self) -> SharedPool {
        SharedPool(Rc::new(RefCell::new(self)))
    }

    /// Would a packet for `port` be admitted right now? (The same
    /// decision [`try_insert`](Self::try_insert) makes, without counting
    /// a reject.)
    pub fn would_admit(&self, port: usize) -> bool {
        let live = self.buffer.live();
        let free = match self.buffer.capacity() {
            Some(cap) => {
                if live >= cap {
                    return false;
                }
                cap - live
            }
            None => usize::MAX,
        };
        self.policy.admits(self.ports[port].occupancy, free)
    }

    /// Insert `packet` on behalf of `port`, with one reference, returning
    /// its handle — or the packet itself, unchanged, when the global
    /// capacity or `port`'s admission threshold rejects it (the reject is
    /// tallied against the port).
    pub fn try_insert(&mut self, port: usize, packet: Packet) -> Result<PktHandle, Packet> {
        if !self.would_admit(port) {
            self.ports[port].rejected += 1;
            return Err(packet);
        }
        let flow = packet.flow;
        let handle = match self.buffer.try_insert(packet) {
            Ok(h) => h,
            Err(packet) => {
                // Unreachable today (`would_admit` covers the capacity
                // gate), kept so the counters stay honest if the slab
                // ever grows another reject reason.
                self.ports[port].rejected += 1;
                return Err(packet);
            }
        };
        let stats = &mut self.ports[port];
        stats.occupancy += 1;
        stats.admitted += 1;
        *self.flows.entry(flow).or_insert(0) += 1;
        if handle.index() >= self.slot_port.len() {
            self.slot_port.resize(handle.index() + 1, 0);
        }
        self.slot_port[handle.index()] = port as u32;
        Ok(handle)
    }

    /// Borrow the packet in `handle`'s slot (panics on a stale handle,
    /// like [`PacketBuffer::get`]).
    pub fn get(&self, handle: PktHandle) -> &Packet {
        self.buffer.get(handle)
    }

    /// Add one reference to `handle`'s slot (the §6.1 counters track
    /// *slots*, so this changes no counter).
    pub fn retain(&mut self, handle: PktHandle) {
        self.buffer.retain(handle);
    }

    /// Drop one reference to `handle`'s slot. When it was the last, the
    /// packet moves out, the slot frees, and the owning port's and flow's
    /// occupancy counters are decremented — in O(1).
    pub fn release(&mut self, handle: PktHandle) -> Option<Packet> {
        let port = self.slot_port[handle.index()] as usize;
        let packet = self.buffer.release(handle)?;
        self.ports[port].occupancy -= 1;
        if let Some(c) = self.flows.get_mut(&packet.flow) {
            *c -= 1;
            if *c == 0 {
                self.flows.remove(&packet.flow);
            }
        }
        Some(packet)
    }

    /// The underlying slab (occupancy, coherence checks, slot count).
    pub fn buffer(&self) -> &PacketBuffer {
        &self.buffer
    }

    /// Pre-grow the slab for `additional` imminent inserts (see
    /// [`PacketBuffer::reserve`]).
    pub fn reserve(&mut self, additional: usize) {
        self.buffer.reserve(additional);
    }

    /// Live packets across all ports.
    pub fn live(&self) -> usize {
        self.buffer.live()
    }

    /// The global capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.buffer.capacity()
    }

    /// Unoccupied slots under the global capacity (`usize::MAX` when
    /// unbounded) — the `free_space` the dynamic threshold compares
    /// against.
    pub fn free_space(&self) -> usize {
        match self.buffer.capacity() {
            Some(cap) => cap.saturating_sub(self.buffer.live()),
            None => usize::MAX,
        }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Number of registered ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Live slots currently attributed to `port`.
    pub fn port_occupancy(&self, port: usize) -> usize {
        self.ports[port].occupancy
    }

    /// Packets ever admitted for `port`.
    pub fn port_admitted(&self, port: usize) -> u64 {
        self.ports[port].admitted
    }

    /// Packets ever rejected for `port` (threshold or capacity).
    pub fn port_rejected(&self, port: usize) -> u64 {
        self.ports[port].rejected
    }

    /// Live slots currently holding packets of `flow`.
    pub fn flow_occupancy(&self, flow: FlowId) -> usize {
        self.flows.get(&flow).copied().unwrap_or(0)
    }

    /// Check counter/slab coherence: per-port occupancies sum to the
    /// slab's live count, per-flow occupancies too, and the slab itself
    /// is coherent. O(slots); for tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation found.
    pub fn assert_coherent(&self) {
        self.buffer.assert_coherent();
        let by_port: usize = self.ports.iter().map(|p| p.occupancy).sum();
        assert_eq!(
            by_port,
            self.buffer.live(),
            "per-port occupancies diverged from the slab"
        );
        let by_flow: usize = self.flows.values().sum();
        assert_eq!(
            by_flow,
            self.buffer.live(),
            "per-flow occupancies diverged from the slab"
        );
        assert!(
            !self.flows.values().any(|&c| c == 0),
            "zero-count flow entry leaked"
        );
    }
}

/// A cloneable reference to one [`SharedPacketPool`], for registering
/// ports and reading fabric-level statistics.
///
/// ```
/// use pifo_core::pool::{AdmissionPolicy, SharedPacketPool};
///
/// let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
///     .into_shared();
/// let port_a = pool.register_port();
/// let port_b = pool.register_port();
/// assert_eq!((port_a.port(), port_b.port()), (0, 1));
/// assert_eq!(pool.stats().capacity, Some(8));
/// ```
#[derive(Debug, Clone)]
pub struct SharedPool(Rc<RefCell<SharedPacketPool>>);

impl SharedPool {
    /// Register a new port and return its handle.
    pub fn register_port(&self) -> PoolHandle {
        let port = self.0.borrow_mut().register_port() as u32;
        PoolHandle {
            pool: Rc::clone(&self.0),
            port,
        }
    }

    /// Borrow the pool for inspection (occupancies, coherence checks).
    ///
    /// # Panics
    ///
    /// Panics if a pool operation is in flight on another borrow — only
    /// possible by holding the returned guard across calls into a tree
    /// that shares this pool.
    pub fn borrow(&self) -> Ref<'_, SharedPacketPool> {
        self.0.borrow()
    }

    /// A copyable snapshot of the pool-wide and per-port counters.
    pub fn stats(&self) -> PoolStats {
        let pool = self.0.borrow();
        PoolStats {
            live: pool.live(),
            capacity: pool.capacity(),
            ports: pool
                .ports
                .iter()
                .map(|p| PortPoolStats {
                    occupancy: p.occupancy,
                    admitted: p.admitted,
                    rejected: p.rejected,
                })
                .collect(),
        }
    }
}

/// One port's capability into a [`SharedPacketPool`] — what a
/// `ScheduleTree` holds in place of a private slab.
///
/// All slab traffic flows through the handle, which supplies the port
/// identity for the §6.1 counters. Handles may be cloned (e.g. to probe
/// occupancy from outside the tree); the clone refers to the same port.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    pool: Rc<RefCell<SharedPacketPool>>,
    port: u32,
}

impl PoolHandle {
    /// A handle to a fresh single-port pool — the private-slab
    /// configuration: `capacity` is the only admission gate, exactly like
    /// the per-tree `PacketBuffer` this subsystem replaced.
    pub fn sole_owner(capacity: Option<usize>) -> PoolHandle {
        let pool = match capacity {
            Some(cap) => SharedPacketPool::new(cap, AdmissionPolicy::Unlimited),
            None => SharedPacketPool::unbounded(),
        };
        pool.into_shared().register_port()
    }

    /// This handle's port index within the pool.
    pub fn port(&self) -> usize {
        self.port as usize
    }

    /// The shared pool this handle belongs to (for fabric-level stats).
    pub fn shared_pool(&self) -> SharedPool {
        SharedPool(Rc::clone(&self.pool))
    }

    /// Insert `packet` for this port (see
    /// [`SharedPacketPool::try_insert`]).
    pub fn try_insert(&self, packet: Packet) -> Result<PktHandle, Packet> {
        self.pool.borrow_mut().try_insert(self.port(), packet)
    }

    /// Would a packet for this port be admitted right now?
    pub fn would_admit(&self) -> bool {
        self.pool.borrow().would_admit(self.port())
    }

    /// Add one reference to `handle`'s slot.
    pub fn retain(&self, handle: PktHandle) {
        self.pool.borrow_mut().retain(handle);
    }

    /// Drop one reference to `handle`'s slot; the last release moves the
    /// packet out and settles the counters.
    pub fn release(&self, handle: PktHandle) -> Option<Packet> {
        self.pool.borrow_mut().release(handle)
    }

    /// Borrow the underlying slab (packet reads via
    /// [`PacketBuffer::get`], coherence checks). The guard must be
    /// dropped before the next mutating pool call.
    pub fn buffer(&self) -> Ref<'_, PacketBuffer> {
        Ref::map(self.pool.borrow(), |p| p.buffer())
    }

    /// Pre-grow the slab for `additional` imminent inserts.
    pub fn reserve(&self, additional: usize) {
        self.pool.borrow_mut().reserve(additional);
    }

    /// Live packets across the whole pool (all ports).
    pub fn pool_live(&self) -> usize {
        self.pool.borrow().live()
    }

    /// Live slots currently attributed to this port.
    pub fn occupancy(&self) -> usize {
        self.pool.borrow().port_occupancy(self.port())
    }

    /// Packets ever rejected for this port.
    pub fn rejected(&self) -> u64 {
        self.pool.borrow().port_rejected(self.port())
    }
}

// ---------------------------------------------------------------------------
// SharedBuffer — the counters-only §6.1 tracker (promoted from pifo-sim)
// ---------------------------------------------------------------------------

/// Occupancy-tracking admission control over a shared buffer, counting
/// **per flow** — the §6.1 mechanism in isolation, without a slab.
///
/// This is the counters-only tracker `pifo-sim`'s `ManagedScheduler`
/// wraps around any port scheduler (the sim module re-exports it from
/// here). The slab-owning [`SharedPacketPool`] applies the same
/// [`Threshold`] arithmetic per port.
#[derive(Debug)]
pub struct SharedBuffer {
    capacity: usize,
    occupancy: usize,
    per_flow: HashMap<FlowId, usize>,
    threshold: Threshold,
    drops: u64,
}

impl SharedBuffer {
    /// A buffer of `capacity` packets with the given per-flow threshold.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a dynamic denominator is zero.
    pub fn new(capacity: usize, threshold: Threshold) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        if let Threshold::Dynamic { den, .. } = threshold {
            assert!(den > 0, "alpha denominator must be positive");
        }
        SharedBuffer {
            capacity,
            occupancy: 0,
            per_flow: HashMap::new(),
            threshold,
            drops: 0,
        }
    }

    /// Would a packet of `flow` be admitted right now?
    pub fn would_admit(&self, flow: FlowId) -> bool {
        if self.occupancy >= self.capacity {
            return false;
        }
        let used = self.per_flow.get(&flow).copied().unwrap_or(0);
        self.threshold.admits(used, self.capacity - self.occupancy)
    }

    /// Record an admission.
    pub fn on_enqueue(&mut self, flow: FlowId) {
        self.occupancy += 1;
        *self.per_flow.entry(flow).or_insert(0) += 1;
    }

    /// Record a departure.
    pub fn on_dequeue(&mut self, flow: FlowId) {
        self.occupancy = self.occupancy.saturating_sub(1);
        if let Some(c) = self.per_flow.get_mut(&flow) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.per_flow.remove(&flow);
            }
        }
    }

    /// Record a drop.
    pub fn on_drop(&mut self) {
        self.drops += 1;
    }

    /// Packets currently buffered.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Packets of `flow` currently buffered.
    pub fn flow_occupancy(&self, flow: FlowId) -> usize {
        self.per_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Admission-control drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 1_000, Nanos(id))
    }

    #[test]
    fn sole_owner_pool_matches_private_slab_semantics() {
        let h = PoolHandle::sole_owner(Some(2));
        let a = h.try_insert(pkt(0, 1)).unwrap();
        let _b = h.try_insert(pkt(1, 2)).unwrap();
        // At capacity: the rejected packet comes back unchanged, by move.
        let back = h.try_insert(pkt(2, 3)).unwrap_err();
        assert_eq!(back.id.0, 2);
        assert_eq!(h.rejected(), 1);
        assert_eq!(h.occupancy(), 2);
        let out = h.release(a).expect("sole reference");
        assert_eq!(out.id.0, 0);
        assert_eq!(h.occupancy(), 1);
        assert!(h.would_admit());
        h.shared_pool().borrow().assert_coherent();
    }

    #[test]
    fn dynamic_threshold_caps_a_hog_but_admits_a_light_port() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
            .into_shared();
        let hog = pool.register_port();
        let light = pool.register_port();
        // The hog fills until its occupancy reaches the shrinking free
        // space: with alpha = 1 it converges at half the buffer.
        let mut admitted = 0;
        let mut id = 0;
        while hog.would_admit() {
            hog.try_insert(pkt(id, 1)).unwrap();
            id += 1;
            admitted += 1;
            assert!(admitted <= 8, "must converge");
        }
        assert_eq!(admitted, 4, "alpha=1 -> at most half the buffer");
        // Lockout prevented: the light port still gets in.
        assert!(light.would_admit());
        light.try_insert(pkt(id, 2)).unwrap();
        assert_eq!(pool.stats().live, 5);
        pool.borrow().assert_coherent();
    }

    #[test]
    fn unlimited_policy_allows_full_lockout() {
        let pool = SharedPacketPool::new(4, AdmissionPolicy::Unlimited).into_shared();
        let hog = pool.register_port();
        let victim = pool.register_port();
        for id in 0..4 {
            hog.try_insert(pkt(id, 1)).unwrap();
        }
        // The naive shared cap lets the hog own every slot.
        assert!(!victim.would_admit(), "victim locked out");
        assert!(victim.try_insert(pkt(9, 2)).is_err());
        assert_eq!(victim.rejected(), 1);
    }

    #[test]
    fn static_policy_caps_each_port_independently() {
        let pool =
            SharedPacketPool::new(100, AdmissionPolicy::Static { per_port: 2 }).into_shared();
        let a = pool.register_port();
        let b = pool.register_port();
        a.try_insert(pkt(0, 1)).unwrap();
        a.try_insert(pkt(1, 1)).unwrap();
        assert!(a.try_insert(pkt(2, 1)).is_err(), "third on port A dropped");
        assert!(b.would_admit(), "port B unaffected");
        b.try_insert(pkt(3, 2)).unwrap();
        assert_eq!(pool.borrow().port_occupancy(0), 2);
        assert_eq!(pool.borrow().port_occupancy(1), 1);
    }

    #[test]
    fn release_settles_the_inserting_ports_counters() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::Unlimited).into_shared();
        let a = pool.register_port();
        let b = pool.register_port();
        let ha = a.try_insert(pkt(0, 7)).unwrap();
        let _hb = b.try_insert(pkt(1, 7)).unwrap();
        assert_eq!(pool.borrow().flow_occupancy(FlowId(7)), 2);
        // Releasing through *either* handle settles against port A — the
        // pool remembers which port owns the slot.
        b.release(ha).expect("sole reference");
        assert_eq!(pool.borrow().port_occupancy(0), 0);
        assert_eq!(pool.borrow().port_occupancy(1), 1);
        assert_eq!(pool.borrow().flow_occupancy(FlowId(7)), 1);
        pool.borrow().assert_coherent();
    }

    #[test]
    fn retained_slot_counts_until_last_release() {
        let h = PoolHandle::sole_owner(Some(4));
        let a = h.try_insert(pkt(0, 1)).unwrap();
        h.retain(a);
        assert!(h.release(a).is_none(), "one holder remains");
        assert_eq!(h.occupancy(), 1, "slot still counted");
        let p = h.release(a).expect("last reference");
        assert_eq!(p.id.0, 0);
        assert_eq!(h.occupancy(), 0);
    }

    #[test]
    fn freed_space_reopens_a_dynamic_threshold() {
        let pool = SharedPacketPool::new(8, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
            .into_shared();
        let h = pool.register_port();
        let mut handles = Vec::new();
        let mut id = 0;
        while h.would_admit() {
            handles.push(h.try_insert(pkt(id, 1)).unwrap());
            id += 1;
        }
        assert!(h.try_insert(pkt(99, 1)).is_err());
        // Draining reopens the threshold (free space grows *and* own
        // occupancy shrinks).
        h.release(handles.pop().unwrap());
        h.release(handles.pop().unwrap());
        assert!(h.would_admit());
        h.try_insert(pkt(100, 1)).unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_pool_rejected() {
        let _ = SharedPacketPool::new(0, AdmissionPolicy::Unlimited);
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn zero_alpha_denominator_rejected() {
        let _ = SharedPacketPool::new(4, AdmissionPolicy::DynamicThreshold { num: 1, den: 0 });
    }

    // ---- SharedBuffer (promoted from pifo-sim) ---------------------------

    #[test]
    fn shared_buffer_static_threshold_caps_each_flow() {
        let mut b = SharedBuffer::new(100, Threshold::Static(2));
        assert!(b.would_admit(FlowId(1)));
        b.on_enqueue(FlowId(1));
        b.on_enqueue(FlowId(1));
        assert!(!b.would_admit(FlowId(1)), "third of flow 1 dropped");
        assert!(b.would_admit(FlowId(2)), "other flows unaffected");
        assert_eq!(b.flow_occupancy(FlowId(1)), 2);
    }

    #[test]
    fn shared_buffer_dynamic_threshold_tightens_under_pressure() {
        // alpha = 1: a flow may hold at most the current free space.
        let mut b = SharedBuffer::new(8, Threshold::Dynamic { num: 1, den: 1 });
        let mut admitted = 0;
        while b.would_admit(FlowId(1)) {
            b.on_enqueue(FlowId(1));
            admitted += 1;
            assert!(admitted <= 8, "must converge");
        }
        assert_eq!(admitted, 4, "alpha=1 -> at most half the buffer");
        // A *different* flow still gets in: lockout prevented.
        assert!(b.would_admit(FlowId(2)));
    }

    #[test]
    fn shared_buffer_capacity_is_hard_limit() {
        let mut b = SharedBuffer::new(4, Threshold::Static(100));
        for f in 0..4u32 {
            assert!(b.would_admit(FlowId(f)));
            b.on_enqueue(FlowId(f));
        }
        assert!(!b.would_admit(FlowId(9)), "buffer full");
        b.on_dequeue(FlowId(0));
        assert!(b.would_admit(FlowId(9)));
        assert_eq!(b.occupancy(), 3);
    }

    #[test]
    fn shared_buffer_counts_drops() {
        let mut b = SharedBuffer::new(4, Threshold::Static(1));
        b.on_drop();
        b.on_drop();
        assert_eq!(b.drops(), 2);
    }
}
