//! # pifo-core
//!
//! Core abstractions of *Programmable Packet Scheduling at Line Rate*
//! (SIGCOMM 2016): the push-in first-out queue (PIFO) and the programming
//! model built on it — scheduling transactions, trees of transactions, and
//! shaping transactions.
//!
//! The paper's central observation: every scheduling algorithm decides
//! (1) in what **order** packets leave and (2) at what **time** — and for
//! many algorithms both decisions can be made at *enqueue*. A PIFO stores
//! that decision: elements push in at an arbitrary rank-determined
//! position, but always pop from the head.
//!
//! ## Layout
//!
//! * [`pifo`] — the PIFO contract ([`pifo::PifoQueue`] +
//!   [`pifo::PifoInspect`]) and its interchangeable backends:
//!   [`pifo::SortedArrayPifo`] (reference semantics), [`pifo::HeapPifo`]
//!   (binary heap) and [`pifo::BucketPifo`] (Eiffel-style FFS bucket
//!   calendar). [`pifo::PifoBackend`] selects one at runtime — boxed
//!   ([`pifo::BoxedPifo`]) or statically dispatched ([`pifo::EnumPifo`]);
//!   see the module docs for the "choosing a backend" table.
//! * [`approx`] — deliberately inexact engines behind the same contract:
//!   [`approx::SpPifo`] (k strict-priority FIFOs, SP-PIFO bound
//!   adaptation), [`approx::Rifo`] (windowed min/max admission FIFO),
//!   [`approx::Aifo`] (windowed-quantile admission FIFO).
//! * [`metrics`] — rank-inversion scoring: [`metrics::InversionTracker`]
//!   streams inversions/unpifoness per dequeue, and the offline helpers
//!   diff any backend's pop trace against the exact sorted oracle.
//! * [`telemetry`] — fabric observability: the always-on
//!   [`telemetry::FlightRecorder`] ring of compact trace events, opt-in
//!   INT-style [`telemetry::PathRecord`]s per packet, sampled
//!   [`telemetry::GaugeSeries`], and the JSON-exportable
//!   [`telemetry::TelemetrySnapshot`].
//! * [`packet`], [`rank`], [`time`] — the vocabulary types.
//! * [`buffer`] — the shared packet-buffer slab (§4): packets live once,
//!   PIFOs circulate 4-byte [`buffer::PktHandle`]s.
//! * [`pool`] — the fabric-wide shared memory system (§5.1, §6.1): one
//!   [`pool::SharedPacketPool`] slab behind per-port
//!   [`pool::PoolHandle`]s, with static / Choudhury–Hahne dynamic
//!   threshold admission deciding drops before any enqueue.
//! * [`transaction`] — scheduling & shaping transaction traits (§2.1, §2.3).
//! * [`tree`] — trees of transactions with suspend/resume shaping (§2.2–2.3).
//!
//! Algorithm implementations (WFQ/STFQ, HPFQ, LSTF, token buckets, …) live
//! in the companion crate `pifo-algos`; the hardware model in `pifo-hw`.
//!
//! ## Quickstart
//!
//! ```
//! use pifo_core::prelude::*;
//!
//! // A strict-priority scheduler in three lines: rank = packet class.
//! let mut b = TreeBuilder::new();
//! let root = b.add_root(
//!     "strict",
//!     Box::new(FnTransaction::new("strict", |ctx: &EnqCtx| Rank(ctx.packet.class as u64))),
//! );
//! let mut tree = b.build(Box::new(move |_| root)).unwrap();
//!
//! tree.enqueue(Packet::new(0, FlowId(0), 1500, Nanos(0)).with_class(7), Nanos(0)).unwrap();
//! tree.enqueue(Packet::new(1, FlowId(1), 64, Nanos(1)).with_class(0), Nanos(1)).unwrap();
//!
//! // The later, higher-priority packet leaves first.
//! assert_eq!(tree.dequeue(Nanos(2)).unwrap().id.0, 1);
//! ```

#![deny(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod approx;
pub mod buffer;
pub mod metrics;
pub mod packet;
pub mod pifo;
// The shared pool's lock-free slab is the one place `unsafe` is earned:
// slot cells hold `UnsafeCell<MaybeUninit<Packet>>` behind a documented
// lifecycle protocol (see the safety comments in `pool`). Everything
// else in the crate stays safe Rust.
#[allow(unsafe_code)]
pub mod pool;
pub mod rank;
pub mod telemetry;
pub mod time;
pub mod transaction;
pub mod tree;

/// Convenient glob-import of the types nearly every user needs.
pub mod prelude {
    pub use crate::approx::{Aifo, Rifo, SpPifo};
    pub use crate::buffer::{PacketBuffer, PktHandle};
    pub use crate::metrics::{InversionStats, InversionTracker};
    pub use crate::packet::{FlowId, Packet, PacketId};
    pub use crate::pifo::{
        BoxedPifo, BucketPifo, EnumPifo, HeapPifo, PifoBackend, PifoEngine, PifoFull, PifoInspect,
        PifoQueue, SortedArrayPifo,
    };
    pub use crate::pool::{
        AdmissionPolicy, PoolError, PoolHandle, PoolStats, PortPoolStats, SharedPacketPool,
        SharedPool, Threshold,
    };
    pub use crate::rank::{Rank, VT_SHIFT};
    pub use crate::telemetry::{
        EventKind, FlightRecorder, GaugePoint, GaugeSeries, PathHop, PathRecord, PathRecorder,
        TelemetryConfig, TelemetrySnapshot, TraceEvent,
    };
    pub use crate::time::{bytes_in, tx_time, Nanos};
    pub use crate::transaction::{
        DeqCtx, EnqCtx, FnTransaction, SchedulingTransaction, ShapingTransaction,
    };
    pub use crate::tree::{
        Classifier, Element, FlowFn, NodeId, ScheduleTree, TreeBuilder, TreeError,
    };
}
