//! Scheduling and shaping transactions (§2.1, §2.3).
//!
//! A *scheduling transaction* is a block of code executed for each element
//! before it is enqueued into a PIFO; it computes the element's rank. A
//! *shaping transaction* computes the wall-clock time at which an element
//! becomes visible to its parent (non-work-conserving algorithms).
//!
//! Transactions are packet transactions in the sense of Domino \[35\]:
//! atomic and isolated, equivalent to a serial execution across consecutive
//! packets. In this software model that falls out naturally from `&mut
//! self` — the borrow checker enforces the serialisation the hardware
//! provides with its atom pipeline.
//!
//! State that fair-queueing algorithms update at *dequeue* time (STFQ's
//! `virtual_time` tracks the start tag of the last dequeued packet) is
//! handled by the [`SchedulingTransaction::on_dequeue`] hook.

use crate::packet::{FlowId, Packet};
use crate::rank::Rank;
use crate::time::Nanos;

/// Context handed to a transaction when an element is enqueued at a node.
#[derive(Debug, Clone, Copy)]
pub struct EnqCtx<'a> {
    /// The packet whose arrival triggered this transaction. At interior
    /// tree nodes the element being enqueued is a PIFO reference, but the
    /// transaction still reads the triggering packet's fields (e.g.
    /// `p.length` in WFQ_Root; §2.2) — carried as element metadata in the
    /// hardware (§4.2).
    pub packet: &'a Packet,
    /// Wall-clock time of the enqueue.
    pub now: Nanos,
    /// The flow the element belongs to *at this node*: the packet's
    /// (possibly re-mapped) flow at a leaf, the child class at an interior
    /// node. This is the `flow(p)` of Figures 1 and 3c.
    pub flow: FlowId,
}

/// Context handed to [`SchedulingTransaction::on_dequeue`].
#[derive(Debug, Clone, Copy)]
pub struct DeqCtx {
    /// Wall-clock time of the dequeue.
    pub now: Nanos,
    /// The flow of the dequeued element at this node.
    pub flow: FlowId,
}

/// A scheduling transaction: computes the rank for every element enqueued
/// into one PIFO (§2.1).
///
/// `Send` is a supertrait so a whole `ScheduleTree` (which owns its
/// transactions) can migrate to a worker thread for the parallel fabric
/// drain. Transactions never run concurrently — `&mut self` still
/// serialises them per node — so state needs no synchronisation, just no
/// thread-pinned types (`Rc`, `Cell` of `!Send` data).
pub trait SchedulingTransaction: Send {
    /// Compute the rank for the element described by `ctx`, updating any
    /// internal state atomically.
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank;

    /// Observe a dequeue from this transaction's PIFO. `rank` is the rank
    /// the element carried. Algorithms that track virtual time (STFQ)
    /// override this; the default is a no-op.
    fn on_dequeue(&mut self, rank: Rank, ctx: &DeqCtx) {
        let _ = (rank, ctx);
    }

    /// Human-readable name, used in traces and compiler output.
    fn name(&self) -> &str {
        "scheduling"
    }
}

/// A shaping transaction: computes the wall-clock time at which the shaped
/// element may be released to the parent node (§2.3).
///
/// `Send` for the same reason as [`SchedulingTransaction`].
pub trait ShapingTransaction: Send {
    /// Compute the send (release) time for the element described by `ctx`,
    /// updating internal state (e.g. token bucket level) atomically.
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos;

    /// Human-readable name, used in traces and compiler output.
    fn name(&self) -> &str {
        "shaping"
    }
}

/// Blanket adapter: any `FnMut(&EnqCtx) -> Rank` closure is a (stateless or
/// state-capturing) scheduling transaction. Handy for tests and for
/// fine-grained priority schemes that just read one packet field (§3.4).
pub struct FnTransaction<F> {
    f: F,
    name: &'static str,
}

impl<F: FnMut(&EnqCtx<'_>) -> Rank> FnTransaction<F> {
    /// Wrap a closure as a scheduling transaction.
    pub fn new(name: &'static str, f: F) -> Self {
        FnTransaction { f, name }
    }
}

impl<F: FnMut(&EnqCtx<'_>) -> Rank + Send> SchedulingTransaction for FnTransaction<F> {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn fn_transaction_reads_fields() {
        let mut t = FnTransaction::new("len-prio", |ctx: &EnqCtx<'_>| {
            Rank(ctx.packet.length as u64)
        });
        let p = Packet::new(0, FlowId(1), 700, Nanos(5));
        let ctx = EnqCtx {
            packet: &p,
            now: Nanos(5),
            flow: p.flow,
        };
        assert_eq!(t.rank(&ctx), Rank(700));
        assert_eq!(t.name(), "len-prio");
    }

    #[test]
    fn fn_transaction_captures_state() {
        // A counting transaction: rank = number of packets seen so far,
        // i.e. FIFO by arrival index.
        let mut count = 0u64;
        let mut t = FnTransaction::new("count", move |_ctx: &EnqCtx<'_>| {
            let r = Rank(count);
            count += 1;
            r
        });
        let p = Packet::new(0, FlowId(0), 64, Nanos::ZERO);
        let ctx = EnqCtx {
            packet: &p,
            now: Nanos::ZERO,
            flow: p.flow,
        };
        assert_eq!(t.rank(&ctx), Rank(0));
        assert_eq!(t.rank(&ctx), Rank(1));
        assert_eq!(t.rank(&ctx), Rank(2));
    }

    #[test]
    fn default_on_dequeue_is_noop() {
        let mut t = FnTransaction::new("noop", |_: &EnqCtx<'_>| Rank(0));
        // Just exercise the default impl.
        t.on_dequeue(
            Rank(3),
            &DeqCtx {
                now: Nanos(1),
                flow: FlowId(0),
            },
        );
    }
}
