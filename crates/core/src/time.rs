//! Simulated wall-clock time.
//!
//! All of `pifo` runs on a deterministic simulated clock. Time is measured
//! in integer nanoseconds since simulation start, which is precise enough to
//! express per-byte transmission times on a 100 Gbit/s link (0.08 ns/bit)
//! while keeping every computation exact (no floating point in the data
//! path, mirroring a hardware implementation).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero: the start of the simulation.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) seconds; for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: Nanos) -> Option<Nanos> {
        self.0.checked_add(other.0).map(Nanos)
    }

    /// The later of two times.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Transmission time of `bytes` on a link of `rate_bps` bits/second,
/// rounded up to the next nanosecond (a packet is not done until its last
/// bit has left).
///
/// # Panics
///
/// Panics if `rate_bps` is zero.
pub fn tx_time(bytes: u64, rate_bps: u64) -> Nanos {
    assert!(rate_bps > 0, "link rate must be positive");
    let bits = (bytes as u128) * 8 * 1_000_000_000;
    let rate = rate_bps as u128;
    Nanos(bits.div_ceil(rate) as u64)
}

/// Number of whole bytes a link of `rate_bps` bits/second can serve in the
/// interval `dt` (rounded down).
pub fn bytes_in(dt: Nanos, rate_bps: u64) -> u64 {
    ((dt.0 as u128) * (rate_bps as u128) / 8 / 1_000_000_000) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Nanos::from_secs(2).0, 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).0, 3_000_000);
        assert_eq!(Nanos::from_micros(5).0, 5_000);
    }

    #[test]
    fn ordering_and_arith() {
        let a = Nanos(100);
        let b = Nanos(250);
        assert!(a < b);
        assert_eq!(b - a, Nanos(150));
        assert_eq!(a + b, Nanos(350));
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn tx_time_10g() {
        // 1500 B at 10 Gbit/s = 1200 ns exactly.
        assert_eq!(tx_time(1500, 10_000_000_000), Nanos(1200));
        // 64 B at 10 Gbit/s = 51.2 ns, rounds up to 52.
        assert_eq!(tx_time(64, 10_000_000_000), Nanos(52));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bits/ns-equivalent rates must round up, never down.
        let t = tx_time(1, 3_000_000_000);
        assert_eq!(t, Nanos(3)); // 8 bits / 3 bits-per-ns = 2.67 -> 3
    }

    #[test]
    fn bytes_in_inverse_of_tx_time() {
        let rate = 10_000_000_000;
        assert_eq!(bytes_in(Nanos(1200), rate), 1500);
        assert_eq!(bytes_in(Nanos(0), rate), 0);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", Nanos(17)), "17ns");
        assert_eq!(format!("{}", Nanos(1500)), "1.500us");
        assert_eq!(format!("{}", Nanos(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", Nanos(1_200_000_000)), "1.200s");
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn tx_time_zero_rate_panics() {
        let _ = tx_time(100, 0);
    }
}
