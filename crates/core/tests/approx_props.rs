//! Property tests for the approximate backend family and the
//! rank-inversion metrics subsystem.
//!
//! The exact trio's cross-backend identity lives in `proptests.rs`;
//! this file pins what the *approximate* engines still guarantee
//! (capacity accounting, `PifoFull` round-trips, FIFO-within-rank where
//! applicable, batch-equals-sequential by construction) and that the
//! metrics layer itself is trustworthy (the O(n log n) inversion count
//! against an O(n²) brute force, the streaming tracker against a
//! recomputed oracle, and exact backends scoring zero on arbitrary
//! traces).

use pifo_core::metrics::{
    count_pairwise_inversions, inversion_stats_of, oracle_pop_ranks, replay_backend,
    replay_with_stats, score_against_oracle, TraceOp,
};
use pifo_core::prelude::*;
use pifo_core::transaction::FnTransaction;
use proptest::prelude::*;

/// An abstract operation on a PIFO.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u64>(), any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

/// Every selector variant, including non-default SP-PIFO queue counts.
fn backend_strategy() -> impl Strategy<Value = PifoBackend> {
    prop_oneof![
        Just(PifoBackend::SortedArray),
        Just(PifoBackend::Heap),
        Just(PifoBackend::Bucket),
        (1u8..=255).prop_map(|queues| PifoBackend::SpPifo { queues }),
        Just(PifoBackend::Rifo),
        Just(PifoBackend::Aifo),
    ]
}

/// The approximate family only, with SP-PIFO queue counts worth sweeping.
fn approx_backend_strategy() -> impl Strategy<Value = PifoBackend> {
    prop_oneof![
        (1u8..=16).prop_map(|queues| PifoBackend::SpPifo { queues }),
        Just(PifoBackend::Rifo),
        Just(PifoBackend::Aifo),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Vec<TraceOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..1000).prop_map(|r| TraceOp::Push(Rank(r))),
            2 => Just(TraceOp::Pop),
        ],
        0..300,
    )
}

proptest! {
    /// Display/FromStr round-trip losslessly over every variant —
    /// including parameterised `sp-pifo:k` for arbitrary k — and the
    /// family label parses back to the same family.
    #[test]
    fn backend_display_from_str_round_trip(backend in backend_strategy()) {
        let shown = backend.to_string();
        prop_assert_eq!(shown.parse::<PifoBackend>().unwrap(), backend);
        let relabeled = backend.label().parse::<PifoBackend>().unwrap();
        prop_assert_eq!(relabeled.label(), backend.label());
        // Parsing is case-insensitive like the exact trio's names.
        prop_assert_eq!(shown.to_ascii_uppercase().parse::<PifoBackend>().unwrap(), backend);
    }

    /// Unknown backend names fail to parse, and the error names every
    /// valid family so a CLI user can self-correct.
    #[test]
    fn unknown_backend_error_lists_all_names(
        letters in proptest::collection::vec(0u8..26, 1..12),
    ) {
        let name: String = letters.iter().map(|b| (b'a' + b) as char).collect();
        // Skip the rare draw that lands on a real backend name.
        if let Err(err) = name.parse::<PifoBackend>() {
            for family in ["sorted", "heap", "bucket", "sp-pifo", "rifo", "aifo"] {
                prop_assert!(err.contains(family), "error must list '{}': {}", family, err);
            }
        }
    }

    /// The parts of the PifoQueue contract the approximate engines keep:
    /// len accounting (pushes minus successful pops), the capacity bound
    /// never exceeded, `PifoFull` round-tripping rank/item/capacity
    /// field-for-field, peek agreeing with the next pop, and the
    /// inspection view matching the drain order.
    #[test]
    fn approx_contract_holds(
        backend in approx_backend_strategy(),
        cap in 1usize..24,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut q: BoxedPifo<u32> = backend.make_bounded(cap);
        prop_assert_eq!(q.capacity(), Some(cap));
        let mut expected_len = 0usize;
        for op in &ops {
            match op {
                Op::Push(r, v) => {
                    match q.try_push(Rank(*r), *v) {
                        Ok(()) => expected_len += 1,
                        Err(full) => {
                            prop_assert_eq!(full.rank, Rank(*r), "{} reject rank", backend);
                            prop_assert_eq!(full.item, *v, "{} reject item", backend);
                            prop_assert_eq!(full.capacity, cap, "{} reject capacity", backend);
                        }
                    }
                }
                Op::Pop => {
                    let peeked = q.peek().map(|(r, v)| (r, *v));
                    let popped = q.pop();
                    prop_assert_eq!(popped, peeked, "{} peek/pop disagree", backend);
                    if popped.is_some() {
                        expected_len -= 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), expected_len, "{} len accounting", backend);
            prop_assert!(q.len() <= cap, "{} capacity exceeded", backend);
            prop_assert_eq!(q.is_empty(), expected_len == 0, "{}", backend);
        }
        let viewed: Vec<(Rank, u32)> = q.iter_in_order().map(|(r, v)| (r, *v)).collect();
        let drained: Vec<(Rank, u32)> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(viewed, drained, "{} inspection vs drain order", backend);
    }

    /// FIFO-within-rank where it applies: Rifo and Aifo are FIFOs, and
    /// SP-PIFO with one queue degenerates to a FIFO, so elements sharing
    /// a rank pop in push order. (SP-PIFO with k > 1 may legally invert
    /// equal ranks across queues — see the approx module docs.)
    #[test]
    fn fifo_within_rank_where_applicable(
        ranks in proptest::collection::vec(0u64..8, 0..150),
    ) {
        for backend in [
            PifoBackend::Rifo,
            PifoBackend::Aifo,
            PifoBackend::SpPifo { queues: 1 },
        ] {
            let mut q: BoxedPifo<usize> = backend.make();
            for (i, &r) in ranks.iter().enumerate() {
                q.push(Rank(r), i);
            }
            let mut last_by_rank = std::collections::HashMap::new();
            while let Some((r, i)) = q.pop() {
                if let Some(&prev) = last_by_rank.get(&r) {
                    prop_assert!(i > prev, "[{}] equal ranks must pop FIFO", backend);
                }
                last_by_rank.insert(r, i);
            }
        }
    }

    /// The O(n log n) merge-sort inversion count equals the O(n²) brute
    /// force on arbitrary rank sequences — and so does a brute-force
    /// recomputation of the streaming tracker's running-max metrics.
    #[test]
    fn fast_inversion_count_matches_brute_force(
        ranks in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let ranks: Vec<Rank> = ranks.into_iter().map(Rank).collect();
        // Pairwise count: every (i < j, ranks[i] > ranks[j]) pair.
        let mut brute_pairs = 0u64;
        for i in 0..ranks.len() {
            for j in i + 1..ranks.len() {
                if ranks[i] > ranks[j] {
                    brute_pairs += 1;
                }
            }
        }
        prop_assert_eq!(count_pairwise_inversions(&ranks), brute_pairs);

        // Drain-trace metrics: at pop i everything not yet popped is
        // still waiting, so recompute each shortfall against the suffix
        // minimum, the quadratic way.
        let mut brute = pifo_core::metrics::InversionStats::default();
        for (i, r) in ranks.iter().enumerate() {
            brute.dequeues += 1;
            let min = ranks[i..].iter().map(|x| x.value()).min().unwrap();
            if r.value() > min {
                let shortfall = r.value() - min;
                brute.inversions += 1;
                brute.unpifoness += shortfall as u128;
                brute.max_regression = brute.max_regression.max(shortfall);
            }
        }
        prop_assert_eq!(inversion_stats_of(&ranks), brute);
    }

    /// Exact backends score zero on random traces — even interleaved
    /// push/pop churn: no inversions, zero unpifoness, and a perfect
    /// positional match against the sorted oracle replaying the same
    /// schedule. Holds bounded and unbounded.
    #[test]
    fn exact_backends_score_zero(trace in trace_strategy(), cap in 1usize..40) {
        let oracle = oracle_pop_ranks(&trace);
        for backend in PifoBackend::EXACT {
            let (pops, stats) = replay_with_stats(backend, None, &trace);
            prop_assert_eq!(stats.dequeues as usize, pops.len(), "{}", backend);
            prop_assert_eq!(stats.inversions, 0, "{} must not invert", backend);
            prop_assert_eq!(stats.unpifoness, 0, "{} must have zero unpifoness", backend);
            prop_assert_eq!(stats.max_regression, 0, "{}", backend);
            let score = score_against_oracle(&pops, &oracle);
            prop_assert!(score.is_exact(), "{} diverged from oracle: {:?}", backend, score);
            prop_assert_eq!(&pops, &oracle, "{} pop trace != oracle", backend);
            // Bounded exact queues reject at the tail but stay exact on
            // what they admit.
            let (_, bounded_stats) = replay_with_stats(backend, Some(cap), &trace);
            prop_assert_eq!(bounded_stats.inversions, 0, "{} bounded", backend);
            prop_assert_eq!(bounded_stats.unpifoness, 0, "{} bounded", backend);
        }
    }

    /// The oracle diff is sound for approximate backends too: the score
    /// against the oracle is zero exactly when the traces match, and
    /// unbounded single-FIFO backends pop in arrival order.
    #[test]
    fn approx_replay_is_coherent(trace in trace_strategy()) {
        let oracle = oracle_pop_ranks(&trace);
        for backend in PifoBackend::APPROX {
            let pops = replay_backend(backend, None, &trace);
            // Unbounded approx queues admit everything, so pop counts
            // match the oracle's exactly.
            prop_assert_eq!(pops.len(), oracle.len(), "{} pop count", backend);
            let score = score_against_oracle(&pops, &oracle);
            prop_assert_eq!(score.missing, 0, "{}", backend);
            prop_assert_eq!(score.is_exact(), pops == oracle, "{}", backend);
        }
        // An unbounded Rifo/Aifo is a FIFO: its pop trace is the arrival
        // order restricted to the pops the schedule performs.
        let mut fifo_model: std::collections::VecDeque<Rank> = Default::default();
        let mut fifo_pops = Vec::new();
        for op in &trace {
            match op {
                TraceOp::Push(r) => fifo_model.push_back(*r),
                TraceOp::Pop => {
                    if let Some(r) = fifo_model.pop_front() {
                        fifo_pops.push(r);
                    }
                }
            }
        }
        prop_assert_eq!(&replay_backend(PifoBackend::Rifo, None, &trace), &fifo_pops);
        prop_assert_eq!(&replay_backend(PifoBackend::Aifo, None, &trace), &fifo_pops);
    }

    /// SP-PIFO's adaptation never breaks conservation, and its pop trace
    /// contains exactly the multiset of pushed ranks.
    #[test]
    fn sp_pifo_conserves_elements(
        queues in 1u8..=12,
        ranks in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut q: BoxedPifo<usize> = PifoBackend::SpPifo { queues }.make();
        for (i, &r) in ranks.iter().enumerate() {
            q.push(Rank(r), i);
        }
        prop_assert_eq!(q.len(), ranks.len());
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(r, _)| r.value()).collect();
        let mut pushed: Vec<u64> = ranks.clone();
        popped.sort_unstable();
        pushed.sort_unstable();
        prop_assert_eq!(popped, pushed, "rank multiset conserved");
    }
}

/// The tree-level tracker sees exactly the root ranks the departure
/// schedule is made of — identical per-packet and batched, and zero for
/// exact backends.
#[test]
fn tree_tracker_matches_offline_scoring() {
    let build = |backend: PifoBackend| {
        let mut b = TreeBuilder::new();
        b.with_backend(backend).track_inversions(true);
        let root = b.add_root(
            "prio",
            Box::new(FnTransaction::new("prio", |ctx: &EnqCtx| {
                Rank(ctx.packet.class as u64)
            })),
        );
        b.build(Box::new(move |_| root)).unwrap()
    };
    // Zig-zag classes so approximate backends actually invert.
    let classes: Vec<u8> = (0..120u64).map(|i| ((i * 67) % 100) as u8).collect();
    for backend in PifoBackend::ALL {
        let mut per_packet = build(backend);
        let mut batched = build(backend);
        for (i, &c) in classes.iter().enumerate() {
            let p = Packet::new(i as u64, FlowId(0), 100, Nanos(0)).with_class(c);
            per_packet.enqueue(p.clone(), Nanos(0)).unwrap();
            batched.enqueue(p, Nanos(0)).unwrap();
        }
        let mut pops = Vec::new();
        while let Some(p) = per_packet.dequeue(Nanos(1)) {
            pops.push(Rank(p.class as u64));
        }
        let mut batch_out = Vec::new();
        batched.dequeue_upto(Nanos(1), classes.len(), &mut batch_out);
        assert_eq!(
            batch_out.len(),
            classes.len(),
            "{backend} batch drained all"
        );

        let offline = inversion_stats_of(&pops);
        let tracked = per_packet.inversion_stats().expect("tracking enabled");
        assert_eq!(tracked, offline, "{backend} tracker vs offline recompute");
        let batch_tracked = batched.inversion_stats().expect("tracking enabled");
        assert_eq!(
            batch_tracked, tracked,
            "{backend} batched drain scores like per-packet"
        );
        if backend.is_exact() {
            assert_eq!(tracked.inversions, 0, "{backend} exact ⇒ zero inversions");
            assert_eq!(tracked.unpifoness, 0, "{backend}");
        }
    }
    // The zig-zag load makes every approximate backend measurably inexact.
    for backend in PifoBackend::APPROX {
        let mut tree = build(backend);
        for (i, &c) in classes.iter().enumerate() {
            tree.enqueue(
                Packet::new(i as u64, FlowId(0), 100, Nanos(0)).with_class(c),
                Nanos(0),
            )
            .unwrap();
        }
        while tree.dequeue(Nanos(1)).is_some() {}
        let stats = tree.inversion_stats().expect("tracking enabled");
        assert!(
            stats.inversions > 0,
            "{backend} should invert under zig-zag"
        );
    }
}

/// `reset_inversion_stats` zeroes counters and the running maximum;
/// `enable_inversion_tracking` is idempotent.
#[test]
fn tracker_reset_and_idempotent_enable() {
    let mut b = TreeBuilder::new();
    b.with_backend(PifoBackend::Rifo);
    let root = b.add_root(
        "prio",
        Box::new(FnTransaction::new("prio", |ctx: &EnqCtx| {
            Rank(ctx.packet.class as u64)
        })),
    );
    let mut tree = b.build(Box::new(move |_| root)).unwrap();
    assert_eq!(tree.inversion_stats(), None, "off by default");
    tree.enable_inversion_tracking();
    for (i, c) in [9u8, 1, 9, 1].into_iter().enumerate() {
        tree.enqueue(
            Packet::new(i as u64, FlowId(0), 100, Nanos(0)).with_class(c),
            Nanos(0),
        )
        .unwrap();
    }
    tree.enable_inversion_tracking(); // must not clobber the live tracker
    while tree.dequeue(Nanos(1)).is_some() {}
    let stats = tree.inversion_stats().expect("enabled");
    assert_eq!(stats.dequeues, 4);
    assert!(stats.inversions > 0, "FIFO under 9,1,9,1 inverts");
    tree.reset_inversion_stats();
    let zeroed = tree.inversion_stats().expect("still enabled");
    assert_eq!(zeroed, pifo_core::metrics::InversionStats::default());
}
