//! The atomic pool under real threads, and against its sequential model.
//!
//! Two halves:
//!
//! * **Threaded stress** — N threads hammer one `SharedPacketPool` with
//!   insert/retain/release churn, including cross-thread releases
//!   (thread A frees slots thread B inserted, the "migration" pattern a
//!   parallel fabric drain produces). Afterwards the pool must be
//!   exactly coherent: `live == Σ port occupancy == Σ flow occupancy`,
//!   the free list whole, and zero `accounting_errors`. The §6.1
//!   counters are only correct if every one of the millions of racing
//!   updates was exact — `saturating_sub`-style clamping would pass a
//!   `>= 0` check but fail the Σ reconciliation here.
//! * **Model equivalence (proptest)** — `AdmissionPolicy` decisions
//!   (including `DynamicThreshold`) are *identical* between the atomic
//!   pool and a plain sequential counter model (the arithmetic the old
//!   `RefCell` pool implemented) on any same-thread operation sequence:
//!   going atomic changed the memory system, not one admission verdict.

use pifo_core::pool::{AdmissionPolicy, SharedPacketPool, Threshold};
use pifo_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn pkt(id: u64, flow: u32) -> Packet {
    Packet::new(id, FlowId(flow), 1_000, Nanos(id))
}

/// N threads × insert/release/migrate churn, then exact reconciliation.
#[test]
fn threaded_churn_keeps_accounting_exact() {
    const THREADS: u64 = 4;
    const OPS: u64 = 20_000;

    let pool = SharedPacketPool::new(256, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 })
        .into_shared();
    let handles: Vec<_> = (0..THREADS).map(|_| pool.register_port()).collect();
    // The migration lane: slots inserted by one thread, freed by another.
    let migrate: Arc<Mutex<Vec<PktHandle>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        for (tid, port) in handles.iter().enumerate() {
            let migrate = Arc::clone(&migrate);
            s.spawn(move || {
                let mut held: Vec<PktHandle> = Vec::new();
                for i in 0..OPS {
                    let id = tid as u64 * OPS + i;
                    match i % 7 {
                        // Mostly inserts; rejects are fine (tight pool).
                        0..=3 => {
                            if let Ok(h) = port.try_insert(pkt(id, (id % 31) as u32)) {
                                if id % 5 == 0 {
                                    migrate.lock().unwrap().push(h);
                                } else {
                                    held.push(h);
                                }
                            }
                        }
                        4 => {
                            // Retain + double release: net one reference.
                            if let Some(&h) = held.last() {
                                port.retain(h);
                                port.release(h);
                            }
                        }
                        5 => {
                            if let Some(h) = held.pop() {
                                port.release(h);
                            }
                        }
                        _ => {
                            // Migration: free someone else's slot.
                            let stolen = migrate.lock().unwrap().pop();
                            if let Some(h) = stolen {
                                port.release(h);
                            }
                        }
                    }
                }
                // Drain what this thread still holds.
                for h in held {
                    port.release(h);
                }
            });
        }
    });
    for h in migrate.lock().unwrap().drain(..) {
        handles[0].release(h);
    }

    let p = pool.borrow();
    assert_eq!(p.live(), 0, "every insert was matched by a release");
    let total: usize = (0..p.num_ports()).map(|i| p.port_occupancy(i)).sum();
    assert_eq!(total, p.live(), "live == Σ port occupancy");
    assert_eq!(p.accounting_errors(), 0, "no silent underflows");
    p.assert_coherent();
    // Conservation of attempts: admitted + rejected == offered inserts.
    let offered = THREADS * (0..OPS).filter(|i| i % 7 <= 3).count() as u64;
    let stats = pool.stats();
    let admitted: u64 = stats.ports.iter().map(|s| s.admitted).sum();
    let rejected: u64 = stats.ports.iter().map(|s| s.rejected).sum();
    assert_eq!(admitted + rejected, offered, "every attempt tallied once");
}

/// Concurrent inserts never exceed the global capacity, even at the
/// moment of maximum contention (capacity reservation is atomic).
#[test]
fn capacity_is_never_exceeded_under_contention() {
    let pool = SharedPacketPool::new(64, AdmissionPolicy::Unlimited).into_shared();
    let ports: Vec<_> = (0..4).map(|_| pool.register_port()).collect();
    std::thread::scope(|s| {
        for (tid, port) in ports.iter().enumerate() {
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..10_000u64 {
                    let live = port.pool_live();
                    assert!(live <= 64, "live {live} exceeded capacity");
                    if let Ok(h) = port.try_insert(pkt(tid as u64 * 10_000 + i, tid as u32)) {
                        held.push(h);
                    }
                    if held.len() > 12 {
                        port.release(held.remove(0));
                    }
                }
                for h in held {
                    port.release(h);
                }
            });
        }
    });
    pool.borrow().assert_coherent();
}

/// The sequential reference model of the pool's admission arithmetic —
/// exactly what the pre-atomic (`RefCell`) implementation computed.
struct SeqModel {
    cap: usize,
    policy: AdmissionPolicy,
    live: usize,
    ports: Vec<usize>,
    flows: HashMap<u32, usize>,
}

impl SeqModel {
    fn would_admit(&self, port: usize, flow: u32) -> bool {
        if self.live >= self.cap {
            return false;
        }
        let flow_used = self.flows.get(&flow).copied().unwrap_or(0);
        self.policy
            .admits_port_flow(self.ports[port], flow_used, self.cap - self.live)
    }

    fn try_insert(&mut self, port: usize, flow: u32) -> bool {
        let ok = self.would_admit(port, flow);
        if ok {
            self.live += 1;
            self.ports[port] += 1;
            *self.flows.entry(flow).or_insert(0) += 1;
        }
        ok
    }

    fn release(&mut self, port: usize, flow: u32) {
        self.live -= 1;
        self.ports[port] -= 1;
        let c = self.flows.get_mut(&flow).expect("flow was counted");
        *c -= 1;
        if *c == 0 {
            self.flows.remove(&flow);
        }
    }
}

#[derive(Debug, Clone)]
enum PoolOp {
    Insert(usize, u32),
    ReleaseOldest(usize),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => (0usize..4, 0u32..3).prop_map(|(port, flow)| PoolOp::Insert(port, flow)),
        2 => (0usize..4).prop_map(PoolOp::ReleaseOldest),
    ]
}

fn threshold_strategy() -> impl Strategy<Value = Threshold> {
    prop_oneof![
        Just(Threshold::Unlimited),
        (1usize..16).prop_map(Threshold::Static),
        (1usize..4, 1usize..4).prop_map(|(num, den)| Threshold::Dynamic { num, den }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Unlimited),
        (1usize..16).prop_map(|per_port| AdmissionPolicy::Static { per_port }),
        (1usize..4, 1usize..4)
            .prop_map(|(num, den)| AdmissionPolicy::DynamicThreshold { num, den }),
        (threshold_strategy(), threshold_strategy())
            .prop_map(|(port, flow)| AdmissionPolicy::PortFlow { port, flow }),
    ]
}

proptest! {
    /// Every admission verdict of the atomic pool equals the sequential
    /// model's, op for op, and the counters agree after every step.
    #[test]
    fn atomic_pool_decisions_match_sequential_model(
        cap in 1usize..48,
        policy in policy_strategy(),
        ops in proptest::collection::vec(pool_op(), 1..250),
    ) {
        let pool = SharedPacketPool::new(cap, policy).into_shared();
        let ports: Vec<_> = (0..4).map(|_| pool.register_port()).collect();
        let mut model = SeqModel {
            cap, policy, live: 0, ports: vec![0; 4], flows: HashMap::new(),
        };
        let mut held: Vec<Vec<(u32, PktHandle)>> = vec![Vec::new(); 4];

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                PoolOp::Insert(port, flow) => {
                    let model_says = model.try_insert(port, flow);
                    // The full (port × flow) probe is the try_insert
                    // verdict, op for op.
                    prop_assert_eq!(
                        ports[port].would_admit_flow(FlowId(flow)),
                        model_says,
                        "would_admit_flow diverges at op {}", i
                    );
                    // The port-only probe can only be *more* permissive
                    // (it skips the flow threshold), never less.
                    if model_says {
                        prop_assert!(
                            ports[port].would_admit(),
                            "would_admit stricter than the full verdict (op {})", i
                        );
                    }
                    match ports[port].try_insert(pkt(i as u64, flow)) {
                        Ok(h) => {
                            prop_assert!(model_says, "pool admitted, model rejected (op {})", i);
                            held[port].push((flow, h));
                        }
                        Err(_) => {
                            prop_assert!(!model_says, "pool rejected, model admitted (op {})", i);
                        }
                    }
                }
                PoolOp::ReleaseOldest(port) => {
                    if let Some((flow, h)) =
                        (!held[port].is_empty()).then(|| held[port].remove(0))
                    {
                        ports[port].release(h).expect("sole holder");
                        model.release(port, flow);
                    }
                }
            }
            prop_assert_eq!(pool.borrow().live(), model.live);
            for p in 0..4 {
                prop_assert_eq!(pool.borrow().port_occupancy(p), model.ports[p]);
            }
            for f in 0..3u32 {
                prop_assert_eq!(
                    pool.borrow().flow_occupancy(FlowId(f)),
                    model.flows.get(&f).copied().unwrap_or(0),
                    "flow {} occupancy diverges at op {}", f, i
                );
            }
        }
        pool.borrow().assert_coherent();
    }
}
