//! Property tests for the PIFO contract and the scheduling tree.
//!
//! The central property: [`HeapPifo`] and [`SortedArrayPifo`] are
//! observationally equivalent under any interleaving of pushes and pops —
//! the heap is "just" a faster implementation of the same abstract PIFO.

use pifo_core::prelude::*;
use proptest::prelude::*;

/// An abstract operation on a PIFO.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u64>(), any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    /// Heap and sorted-array PIFOs agree on every observable step.
    #[test]
    fn heap_equals_sorted_array(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let mut a: SortedArrayPifo<u32> = SortedArrayPifo::new();
        let mut b: HeapPifo<u32> = HeapPifo::new();
        for op in ops {
            match op {
                Op::Push(r, v) => {
                    a.push(Rank(r), v);
                    b.push(Rank(r), v);
                }
                Op::Pop => {
                    prop_assert_eq!(a.pop(), b.pop());
                }
            }
            prop_assert_eq!(a.len(), b.len());
            // peek() agreement (compare owned copies to avoid borrow overlap).
            let pa = a.peek().map(|(r, v)| (r, *v));
            let pb = b.peek().map(|(r, v)| (r, *v));
            prop_assert_eq!(pa, pb);
        }
        // Drain both and compare the tail.
        loop {
            let (x, y) = (a.pop(), b.pop());
            prop_assert_eq!(x, y);
            if x.is_none() { break; }
        }
    }

    /// Popping everything yields non-decreasing ranks, with FIFO ties.
    #[test]
    fn drain_is_sorted_and_stable(entries in proptest::collection::vec((0u64..50, any::<u32>()), 0..300)) {
        let mut q: HeapPifo<(usize, u32)> = HeapPifo::new();
        for (i, (r, v)) in entries.iter().enumerate() {
            q.push(Rank(*r), (i, *v));
        }
        let mut last: Option<(Rank, usize)> = None;
        while let Some((r, (i, _))) = q.pop() {
            if let Some((lr, li)) = last {
                prop_assert!(r >= lr, "ranks must be non-decreasing");
                if r == lr {
                    prop_assert!(i > li, "equal ranks must pop FIFO");
                }
            }
            last = Some((r, i));
        }
    }

    /// Heap and sorted-array PIFOs also agree when *bounded*: under any
    /// interleaving of `try_push`/`pop` against the same capacity, both
    /// admit and reject identically and dequeue in the same order.
    #[test]
    fn heap_equals_sorted_array_bounded(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let mut a: SortedArrayPifo<u32> = SortedArrayPifo::with_capacity(cap);
        let mut b: HeapPifo<u32> = HeapPifo::with_capacity(cap);
        prop_assert_eq!(a.capacity(), Some(cap));
        prop_assert_eq!(b.capacity(), Some(cap));
        for op in ops {
            match op {
                Op::Push(r, v) => {
                    let ra = a.try_push(Rank(r), v);
                    let rb = b.try_push(Rank(r), v);
                    prop_assert_eq!(ra.is_ok(), rb.is_ok(), "admission must agree");
                    if let Err(e) = ra {
                        // The rejected element comes back intact.
                        prop_assert_eq!(e.item, v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(a.pop(), b.pop());
                }
            }
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a.len() <= cap);
        }
        // Drain the tail in lockstep.
        loop {
            let (x, y) = (a.pop(), b.pop());
            prop_assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    /// len() is pushes minus successful pops; capacity is never exceeded.
    #[test]
    fn capacity_is_respected(cap in 1usize..20, ops in proptest::collection::vec(op_strategy(), 0..100)) {
        let mut q: SortedArrayPifo<u32> = SortedArrayPifo::with_capacity(cap);
        let mut expected_len = 0usize;
        for op in ops {
            match op {
                Op::Push(r, v) => {
                    if expected_len < cap {
                        prop_assert!(q.try_push(Rank(r), v).is_ok());
                        expected_len += 1;
                    } else {
                        prop_assert!(q.try_push(Rank(r), v).is_err());
                    }
                }
                Op::Pop => {
                    let got = q.pop();
                    prop_assert_eq!(got.is_some(), expected_len > 0);
                    expected_len = expected_len.saturating_sub(1);
                }
            }
            prop_assert_eq!(q.len(), expected_len);
            prop_assert!(q.len() <= cap);
        }
    }
}

// Tree-level properties: for a work-conserving tree (no shapers), the
// number of dequeued packets always equals the number enqueued, the tree
// drains completely, and per-node PIFO occupancies match subtree packet
// counts throughout.
proptest! {
    #[test]
    fn two_level_tree_conserves_packets(
        flows in proptest::collection::vec(0u32..4, 1..100),
    ) {
        use pifo_core::transaction::FnTransaction;

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo());
        let l = b.add_child(root, "L", fifo());
        let r = b.add_child(root, "R", fifo());
        let mut tree = b.build(Box::new(move |p: &Packet| {
            if p.flow.0 < 2 { l } else { r }
        })).unwrap();

        let n = flows.len();
        for (i, f) in flows.iter().enumerate() {
            let pkt = Packet::new(i as u64, FlowId(*f), 100, Nanos(i as u64));
            tree.enqueue(pkt, Nanos(i as u64)).unwrap();
            prop_assert_eq!(tree.sched_pifo_len(root), i + 1);
            prop_assert_eq!(
                tree.sched_pifo_len(l) + tree.sched_pifo_len(r),
                i + 1
            );
        }
        let mut got = 0;
        while tree.dequeue(Nanos(1_000_000)).is_some() {
            got += 1;
            prop_assert_eq!(tree.len(), n - got);
        }
        prop_assert_eq!(got, n);
        prop_assert_eq!(tree.sched_pifo_len(root), 0);
        prop_assert_eq!(tree.sched_pifo_len(l), 0);
        prop_assert_eq!(tree.sched_pifo_len(r), 0);
    }

    /// With a shaper that delays every element by a bounded amount, no
    /// packet is lost: everything eventually drains once time passes the
    /// last release, and nothing drains before its release time.
    #[test]
    fn shaped_tree_conserves_packets(
        delays in proptest::collection::vec(1u64..1000, 1..50),
    ) {
        use pifo_core::transaction::FnTransaction;

        struct PerPacketDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for PerPacketDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", fifo());
        let leaf = b.add_child(root, "leaf", fifo());
        let max_delay = *delays.iter().max().unwrap();
        let n = delays.len();
        b.set_shaper(leaf, Box::new(PerPacketDelay { delays, i: 0 }));
        let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

        // All packets arrive at t=0; every release is at t >= 1.
        for i in 0..n {
            tree.enqueue(
                Packet::new(i as u64, FlowId(0), 100, Nanos(0)),
                Nanos(0),
            ).unwrap();
        }
        // Nothing can drain before the earliest possible release (t >= 1).
        prop_assert!(tree.dequeue(Nanos(0)).is_none());

        // After the horizon, everything drains.
        let horizon = Nanos(max_delay + 1);
        let mut got = 0;
        while tree.dequeue(horizon).is_some() {
            got += 1;
        }
        prop_assert_eq!(got, n);
        prop_assert_eq!(tree.shaped_len(), 0);
    }
}
