//! Property tests for the PIFO contract and the scheduling tree.
//!
//! The central property: every **exact** backend ([`SortedArrayPifo`]
//! reference, [`HeapPifo`], [`BucketPifo`]) is observationally equivalent
//! under any interleaving of pushes and pops — the faster engines are
//! "just" faster implementations of the same abstract PIFO. The
//! differential tests below drive all exact backends with identical op
//! streams and demand byte-identical traces, including FIFO tie-breaks
//! and capacity rejections.
//!
//! The approximate backends (`sp-pifo` / `rifo` / `aifo`) are exempt
//! from cross-backend trace identity by design — their properties
//! (batch-equals-sequential, conservation, capacity accounting, and the
//! inversion-metrics contract) are covered here by the `PifoBackend::ALL`
//! sweeps and in `tests/approx_props.rs`.

use pifo_core::prelude::*;
use proptest::prelude::*;

/// An abstract operation on a PIFO.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u64>(), any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

/// Ranks confined to a narrow band: stresses FIFO tie-breaking and, for
/// the bucket backend, keeps everything inside one calendar window.
fn narrow_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..64, any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

/// Drive every exact backend with the same op stream and assert
/// identical observable behaviour at each step: admission, pops, peeks,
/// lengths, the `PifoFull` round-trip, and the ordered inspection view.
fn assert_backends_agree(cap: Option<usize>, ops: Vec<Op>) {
    let mut queues: Vec<(PifoBackend, BoxedPifo<u32>)> = PifoBackend::EXACT
        .iter()
        .map(|&be| {
            let q = match cap {
                Some(c) => be.make_bounded::<u32>(c),
                None => be.make::<u32>(),
            };
            (be, q)
        })
        .collect();
    let (reference, rest) = queues.split_first_mut().expect("at least one backend");
    for op in ops {
        match op {
            Op::Push(r, v) => {
                let want = reference.1.try_push(Rank(r), v);
                for (be, q) in rest.iter_mut() {
                    let got = q.try_push(Rank(r), v);
                    // PifoFull is PartialEq over (rank, item, capacity):
                    // rejections must round-trip identically.
                    prop_assert_eq!(&got, &want, "admission diverges on {}", be);
                }
            }
            Op::Pop => {
                let want = reference.1.pop();
                for (be, q) in rest.iter_mut() {
                    prop_assert_eq!(q.pop(), want, "pop diverges on {}", be);
                }
            }
        }
        let want_len = reference.1.len();
        let want_peek = reference.1.peek().map(|(r, v)| (r, *v));
        for (be, q) in rest.iter_mut() {
            prop_assert_eq!(q.len(), want_len, "len diverges on {}", be);
            prop_assert_eq!(
                q.peek().map(|(r, v)| (r, *v)),
                want_peek,
                "peek diverges on {}",
                be
            );
        }
    }
    // The full inspection view agrees element-for-element…
    let want_view: Vec<(Rank, u32)> = reference.1.iter_in_order().map(|(r, v)| (r, *v)).collect();
    for (be, q) in rest.iter_mut() {
        let view: Vec<(Rank, u32)> = q.iter_in_order().map(|(r, v)| (r, *v)).collect();
        prop_assert_eq!(&view, &want_view, "iter_in_order diverges on {}", be);
    }
    // …and so does the drained tail (byte-identical dequeue trace).
    loop {
        let want = reference.1.pop();
        for (be, q) in rest.iter_mut() {
            prop_assert_eq!(q.pop(), want, "drain diverges on {}", be);
        }
        if want.is_none() {
            break;
        }
    }
}

proptest! {
    /// All backends agree on every observable step, unbounded, with ranks
    /// drawn from the full u64 range (stresses the bucket backend's
    /// rebase/overflow machinery).
    #[test]
    fn backends_agree_unbounded(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        assert_backends_agree(None, ops);
    }

    /// All backends agree with ranks in a narrow band (stresses FIFO
    /// tie-breaking within one calendar bucket).
    #[test]
    fn backends_agree_narrow_ranks(ops in proptest::collection::vec(narrow_op_strategy(), 0..300)) {
        assert_backends_agree(None, ops);
    }

    /// All backends admit and reject identically against the same
    /// capacity, and the rejected `PifoFull` carries the same rank, item
    /// and capacity on every backend.
    #[test]
    fn backends_agree_bounded(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        assert_backends_agree(Some(cap), ops);
    }

    /// Popping everything yields non-decreasing ranks, with FIFO ties —
    /// on every exact backend (the approximate family relaxes exactly
    /// this invariant; `tests/approx_props.rs` measures by how much).
    #[test]
    fn drain_is_sorted_and_stable(entries in proptest::collection::vec((0u64..50, any::<u32>()), 0..300)) {
        for backend in PifoBackend::EXACT {
            let mut q: BoxedPifo<(usize, u32)> = backend.make();
            for (i, (r, v)) in entries.iter().enumerate() {
                q.push(Rank(*r), (i, *v));
            }
            let mut last: Option<(Rank, usize)> = None;
            while let Some((r, (i, _))) = q.pop() {
                if let Some((lr, li)) = last {
                    prop_assert!(r >= lr, "[{}] ranks must be non-decreasing", backend);
                    if r == lr {
                        prop_assert!(i > li, "[{}] equal ranks must pop FIFO", backend);
                    }
                }
                last = Some((r, i));
            }
        }
    }

    /// len() is pushes minus successful pops; capacity is never exceeded.
    #[test]
    fn capacity_is_respected(cap in 1usize..20, ops in proptest::collection::vec(op_strategy(), 0..100)) {
        let mut q: SortedArrayPifo<u32> = SortedArrayPifo::with_capacity(cap);
        let mut expected_len = 0usize;
        for op in ops {
            match op {
                Op::Push(r, v) => {
                    if expected_len < cap {
                        prop_assert!(q.try_push(Rank(r), v).is_ok());
                        expected_len += 1;
                    } else {
                        prop_assert!(q.try_push(Rank(r), v).is_err());
                    }
                }
                Op::Pop => {
                    let got = q.pop();
                    prop_assert_eq!(got.is_some(), expected_len > 0);
                    expected_len = expected_len.saturating_sub(1);
                }
            }
            prop_assert_eq!(q.len(), expected_len);
            prop_assert!(q.len() <= cap);
        }
    }
}

// Tree-level properties: for a work-conserving tree (no shapers), the
// number of dequeued packets always equals the number enqueued, the tree
// drains completely, and per-node PIFO occupancies match subtree packet
// counts throughout.
proptest! {
    #[test]
    fn two_level_tree_conserves_packets(
        flows in proptest::collection::vec(0u32..4, 1..100),
    ) {
        use pifo_core::transaction::FnTransaction;

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        for backend in PifoBackend::ALL {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("root", fifo());
            let l = b.add_child(root, "L", fifo());
            let r = b.add_child(root, "R", fifo());
            let mut tree = b.build(Box::new(move |p: &Packet| {
                if p.flow.0 < 2 { l } else { r }
            })).unwrap();

            let n = flows.len();
            for (i, f) in flows.iter().enumerate() {
                let pkt = Packet::new(i as u64, FlowId(*f), 100, Nanos(i as u64));
                tree.enqueue(pkt, Nanos(i as u64)).unwrap();
                prop_assert_eq!(tree.sched_pifo_len(root), i + 1);
                prop_assert_eq!(
                    tree.sched_pifo_len(l) + tree.sched_pifo_len(r),
                    i + 1
                );
            }
            let mut got = 0;
            while tree.dequeue(Nanos(1_000_000)).is_some() {
                got += 1;
                prop_assert_eq!(tree.len(), n - got);
            }
            prop_assert_eq!(got, n, "tree must drain fully on {}", backend);
            prop_assert_eq!(tree.sched_pifo_len(root), 0);
            prop_assert_eq!(tree.sched_pifo_len(l), 0);
            prop_assert_eq!(tree.sched_pifo_len(r), 0);
        }
    }

    /// With a shaper that delays every element by a bounded amount, no
    /// packet is lost: everything eventually drains once time passes the
    /// last release, and nothing drains before its release time.
    #[test]
    fn shaped_tree_conserves_packets(
        delays in proptest::collection::vec(1u64..1000, 1..50),
    ) {
        use pifo_core::transaction::FnTransaction;

        struct PerPacketDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for PerPacketDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        for backend in PifoBackend::ALL {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("root", fifo());
            let leaf = b.add_child(root, "leaf", fifo());
            let max_delay = *delays.iter().max().unwrap();
            let n = delays.len();
            b.set_shaper(leaf, Box::new(PerPacketDelay { delays: delays.clone(), i: 0 }));
            let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

            // All packets arrive at t=0; every release is at t >= 1.
            for i in 0..n {
                tree.enqueue(
                    Packet::new(i as u64, FlowId(0), 100, Nanos(0)),
                    Nanos(0),
                ).unwrap();
            }
            // Nothing can drain before the earliest possible release (t >= 1).
            prop_assert!(tree.dequeue(Nanos(0)).is_none());

            // After the horizon, everything drains.
            let horizon = Nanos(max_delay + 1);
            let mut got = 0;
            while tree.dequeue(horizon).is_some() {
                got += 1;
            }
            prop_assert_eq!(got, n, "shaped tree must drain fully on {}", backend);
            prop_assert_eq!(tree.shaped_len(), 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Shared-slab accounting and shaping-agenda order (the zero-copy hot path)
// ---------------------------------------------------------------------------

/// An abstract operation on a shaped tree, with time moving only forward.
#[derive(Debug, Clone)]
enum TreeOp {
    /// Enqueue to flow (0..4) with a random leaf rank (the `class` field),
    /// so later packets can overtake earlier ones *and their own parked
    /// shaping entries* — the case where a shaped ref becomes the sole
    /// owner of its buffer slot.
    Enq(u32, u8),
    Deq,
    /// Advance the clock and release whatever came due.
    Advance(u64),
}

fn tree_op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        4 => (0u32..4, any::<u8>()).prop_map(|(f, c)| TreeOp::Enq(f, c)),
        3 => Just(TreeOp::Deq),
        2 => (1u64..300).prop_map(TreeOp::Advance),
    ]
}

proptest! {
    /// After every operation the shared slab accounts for exactly the
    /// buffered packets plus the parked shaping entries that outlived
    /// their packet; once the tree fully drains, every slot is back on
    /// the free list (no leaks), on every backend.
    #[test]
    fn slab_accounting_is_exact_and_leak_free(
        ops in proptest::collection::vec(tree_op_strategy(), 1..120),
        delays in proptest::collection::vec(0u64..200, 1..8),
    ) {
        use pifo_core::transaction::FnTransaction;

        struct CyclicDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for CyclicDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }

        let by_class = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("class", |ctx: &EnqCtx| Rank(ctx.packet.class as u64)))
        };
        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.now.as_nanos())))
        };
        for backend in PifoBackend::ALL {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("root", fifo());
            let l = b.add_child(root, "L", by_class());
            let r = b.add_child(root, "R", by_class());
            b.set_shaper(l, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
            b.set_shaper(r, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
            let mut tree = b.build(Box::new(move |p: &Packet| {
                if p.flow.0 < 2 { l } else { r }
            })).unwrap();

            let mut now = 0u64;
            let mut id = 0u64;
            for op in &ops {
                match op {
                    TreeOp::Enq(f, c) => {
                        let p = Packet::new(id, FlowId(*f), 100, Nanos(now)).with_class(*c);
                        id += 1;
                        tree.enqueue(p, Nanos(now)).unwrap();
                    }
                    TreeOp::Deq => { let _ = tree.dequeue(Nanos(now)); }
                    TreeOp::Advance(dt) => {
                        now += dt;
                        tree.release_due(Nanos(now));
                    }
                }
                prop_assert_eq!(
                    tree.packet_buffer().live(),
                    tree.len() + tree.shaped_refs_holding_packets(),
                    "slab accounting diverges on {} after {:?}", backend, op
                );
                prop_assert!(
                    tree.shaped_refs_holding_packets() <= tree.shaped_len(),
                    "sole-owner refs are a subset of parked refs on {}", backend
                );
            }
            // Drain fully, hopping across shaping gaps.
            loop {
                if tree.dequeue(Nanos(now)).is_some() { continue; }
                match tree.next_shaping_event() {
                    Some(t) => now = now.max(t.as_nanos()),
                    None => break,
                }
            }
            prop_assert_eq!(tree.len(), 0, "{} drains", backend);
            prop_assert_eq!(tree.shaped_len(), 0, "{} releases all", backend);
            prop_assert_eq!(tree.packet_buffer().live(), 0, "{} leaks slots", backend);
            prop_assert_eq!(tree.shaped_refs_holding_packets(), 0, "{}", backend);
            // Free list whole again: every slot reachable exactly once.
            tree.packet_buffer().assert_coherent();
        }
    }

    /// Differential trace: the shaping agenda releases parked walks in
    /// exactly the order the legacy per-node scan did — earliest release
    /// time first, ties broken by node index, then FIFO within a node.
    /// The oracle below *is* that scan, reimplemented over plain vectors.
    #[test]
    fn agenda_matches_legacy_scan_release_order(
        pkts in proptest::collection::vec((0usize..3, 0u64..40), 1..60),
    ) {
        use pifo_core::transaction::FnTransaction;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct Scripted { times: Vec<u64>, i: usize }
        impl ShapingTransaction for Scripted {
            fn send_time(&mut self, _ctx: &EnqCtx<'_>) -> Nanos {
                let t = self.times[self.i];
                self.i += 1;
                Nanos(t)
            }
        }

        // Root rank = insertion counter, so the departure order *is* the
        // order references reached the root, i.e. the release order.
        // Leaf rank = arrival counter, so within a leaf packets pop FIFO.
        let counter_tx = |c: Arc<AtomicU64>| -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("count", move |_: &EnqCtx| {
                Rank(c.fetch_add(1, Ordering::Relaxed))
            }))
        };

        let mut b = TreeBuilder::new();
        let root = b.add_root("root", counter_tx(Arc::new(AtomicU64::new(0))));
        let leaf_count = Arc::new(AtomicU64::new(0));
        let leaves: Vec<NodeId> = (0..3)
            .map(|i| b.add_child(root, &format!("leaf{i}"), counter_tx(leaf_count.clone())))
            .collect();
        for (i, &leaf) in leaves.iter().enumerate() {
            let times: Vec<u64> = pkts.iter().filter(|(l, _)| *l == i).map(|(_, t)| *t).collect();
            b.set_shaper(leaf, Box::new(Scripted { times, i: 0 }));
        }
        let lv = leaves.clone();
        let mut tree = b.build(Box::new(move |p: &Packet| lv[p.flow.0 as usize])).unwrap();

        // Legacy-scan oracle state: per node, parked (release, seq) FIFO
        // kept sorted by (release, seq); plus per-leaf arrival queues.
        let mut parked: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3];
        let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut seq = 0u64;
        let mut expected = Vec::new();
        let scan = |parked: &mut Vec<Vec<(u64, u64)>>, now: u64, out: &mut Vec<usize>| {
            loop {
                let mut best: Option<(u64, usize)> = None;
                for (n, q) in parked.iter().enumerate() {
                    if let Some(&(t, _)) = q.first() {
                        if t <= now && best.map_or(true, |(bt, _)| t < bt) {
                            best = Some((t, n));
                        }
                    }
                }
                let Some((_, n)) = best else { break };
                parked[n].remove(0);
                out.push(n);
            }
        };

        // Drive both: packet i arrives at t=i with scripted release time.
        let mut release_order: Vec<usize> = Vec::new();
        for (i, (leaf, t_rel)) in pkts.iter().enumerate() {
            let now = i as u64;
            tree.enqueue(Packet::new(i as u64, FlowId(*leaf as u32), 100, Nanos(now)), Nanos(now)).unwrap();
            // Oracle mirrors enqueue: release what is due *first*, then park.
            scan(&mut parked, now, &mut release_order);
            let pos = parked[*leaf].partition_point(|&(t, s)| (t, s) <= (*t_rel, seq));
            parked[*leaf].insert(pos, (*t_rel, seq));
            seq += 1;
            arrivals[*leaf].push(i as u64);
        }
        let horizon = 1_000_000u64;
        scan(&mut parked, horizon, &mut release_order);
        for n in &release_order {
            expected.push(arrivals[*n].remove(0));
        }

        let mut got = Vec::new();
        while let Some(p) = tree.dequeue(Nanos(horizon)) {
            got.push(p.id.0);
        }
        prop_assert_eq!(got, expected, "agenda order diverges from the legacy scan");
        prop_assert_eq!(tree.shaped_len(), 0);
    }
}

// ---------------------------------------------------------------------------
// Batch APIs: byte-identical to their sequential expansion
// ---------------------------------------------------------------------------

/// One round of batched activity against a queue.
#[derive(Debug, Clone)]
enum BatchOp {
    /// Push a whole batch of `(rank, value)` pairs at once.
    PushBatch(Vec<(u64, u32)>),
    /// Pop up to this many elements at once.
    PopBatch(usize),
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        3 => proptest::collection::vec((0u64..2_000_000, any::<u32>()), 0..24)
            .prop_map(BatchOp::PushBatch),
        2 => (0usize..24).prop_map(BatchOp::PopBatch),
    ]
}

proptest! {
    /// `push_batch`/`pop_batch` are byte-identical to their sequential
    /// `try_push`/`pop` expansion on every backend — approximate ones
    /// included — with the same admissions (rejects field-for-field, in
    /// input order), same pops, same residual queue; the sorted-array
    /// backend additionally pins the cross-backend sequential
    /// reference. `cap == 0` plays the unbounded case.
    #[test]
    fn batch_apis_match_sequential(
        cap in 0usize..32,
        ops in proptest::collection::vec(batch_op_strategy(), 0..40),
    ) {
        let make = |be: PifoBackend| -> BoxedPifo<u32> {
            if cap == 0 { be.make() } else { be.make_bounded(cap) }
        };
        let mut reference = make(PifoBackend::SortedArray);

        for backend in PifoBackend::ALL {
            let mut batched = make(backend);
            let mut sequential = make(backend);

            for op in &ops {
                match op {
                    BatchOp::PushBatch(items) => {
                        let batch: Vec<(Rank, u32)> =
                            items.iter().map(|&(r, v)| (Rank(r), v)).collect();
                        let got = batched.push_batch(batch);
                        let mut want = Vec::new();
                        for &(r, v) in items {
                            if let Err(full) = sequential.try_push(Rank(r), v) {
                                want.push(full);
                            }
                        }
                        // PifoFull is PartialEq over (rank, item, capacity):
                        // field-for-field identical rejects, same order.
                        prop_assert_eq!(&got, &want, "{} rejects diverge", backend);
                    }
                    BatchOp::PopBatch(max) => {
                        let mut got = Vec::new();
                        let n = batched.pop_batch(*max, &mut got);
                        prop_assert_eq!(n, got.len(), "{} count mismatch", backend);
                        let mut want = Vec::new();
                        for _ in 0..*max {
                            match sequential.pop() {
                                Some(e) => want.push(e),
                                None => break,
                            }
                        }
                        prop_assert_eq!(&got, &want, "{} pops diverge", backend);
                    }
                }
                prop_assert_eq!(batched.len(), sequential.len(), "{} len diverges", backend);
            }

            // Residual queues drain identically — and match the
            // sorted-array sequential reference across backends.
            let tail: Vec<(Rank, u32)> =
                std::iter::from_fn(|| batched.pop()).collect();
            let seq_tail: Vec<(Rank, u32)> =
                std::iter::from_fn(|| sequential.pop()).collect();
            prop_assert_eq!(&tail, &seq_tail, "{} residue diverges", backend);
            if backend == PifoBackend::SortedArray {
                // Replay the whole stream on the cross-backend reference
                // once (sequentially) and pin the residue to it.
                for op in &ops {
                    match op {
                        BatchOp::PushBatch(items) => {
                            for &(r, v) in items {
                                let _ = reference.try_push(Rank(r), v);
                            }
                        }
                        BatchOp::PopBatch(max) => {
                            for _ in 0..*max {
                                if reference.pop().is_none() { break; }
                            }
                        }
                    }
                }
                let ref_tail: Vec<(Rank, u32)> =
                    std::iter::from_fn(|| reference.pop()).collect();
                prop_assert_eq!(&tail, &ref_tail, "reference residue diverges");
            }
        }
    }

    /// `ScheduleTree::enqueue_batch` + `dequeue_upto` produce a departure
    /// trace byte-identical to the per-packet `enqueue`/`dequeue` path —
    /// on every backend, for a single-node tree (the `pop_batch` fast
    /// path), a two-level **work-conserving** tree (the same-leaf
    /// run-batched enqueue path, with runs splitting across leaf
    /// changes), and a two-level *shaped* tree (where releases due
    /// mid-batch must still interleave exactly as the sequential path).
    #[test]
    fn tree_batch_paths_match_per_packet(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..4, any::<u8>()), 0..12), // arrivals
                0usize..12,                                              // dequeues
                1u64..400,                                               // time step
            ),
            1..30,
        ),
        delays in proptest::collection::vec(0u64..300, 1..6),
    ) {
        use pifo_core::transaction::FnTransaction;

        struct CyclicDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for CyclicDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }

        let by_class = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("class", |ctx: &EnqCtx| Rank(ctx.packet.class as u64)))
        };
        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.now.as_nanos())))
        };

        // shape 0: single node (exercises the dequeue batch fast path).
        // shape 1: two-level work-conserving (exercises the run-batched
        //          enqueue path across leaf changes).
        // shape 2: two-level tree with cyclic-delay shapers.
        let build = |backend: PifoBackend, shape: u8| -> ScheduleTree {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            if shape == 0 {
                let root = b.add_root("prio", by_class());
                b.build(Box::new(move |_| root)).unwrap()
            } else {
                let root = b.add_root("root", fifo());
                let l = b.add_child(root, "L", by_class());
                let r = b.add_child(root, "R", by_class());
                if shape == 2 {
                    b.set_shaper(l, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
                    b.set_shaper(r, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
                }
                b.build(Box::new(move |p: &Packet| if p.flow.0 < 2 { l } else { r }))
                    .unwrap()
            }
        };

        for backend in PifoBackend::ALL {
            for shape in 0..3u8 {
                let shaped = shape == 2;
                let mut batch_tree = build(backend, shape);
                let mut ref_tree = build(backend, shape);
                prop_assert_eq!(batch_tree.has_shapers(), shaped);

                let mut now = 0u64;
                let mut id = 0u64;
                let mut batch_out: Vec<Packet> = Vec::new();
                let mut ref_out: Vec<Packet> = Vec::new();
                for (arrivals, deqs, dt) in &rounds {
                    let pkts: Vec<Packet> = arrivals
                        .iter()
                        .map(|&(f, c)| {
                            let p = Packet::new(id, FlowId(f), 100, Nanos(now)).with_class(c);
                            id += 1;
                            p
                        })
                        .collect();
                    let errs = batch_tree.enqueue_batch(pkts.clone(), Nanos(now));
                    prop_assert!(errs.is_empty(), "unbounded tree rejects nothing");
                    for p in pkts {
                        ref_tree.enqueue(p, Nanos(now)).unwrap();
                    }

                    batch_tree.dequeue_upto(Nanos(now), *deqs, &mut batch_out);
                    for _ in 0..*deqs {
                        match ref_tree.dequeue(Nanos(now)) {
                            Some(p) => ref_out.push(p),
                            None => break,
                        }
                    }
                    now += dt;
                }
                // Final drain, hopping across shaping gaps in lock-step.
                loop {
                    let n = batch_tree.dequeue_upto(Nanos(now), usize::MAX, &mut batch_out);
                    while let Some(p) = ref_tree.dequeue(Nanos(now)) {
                        ref_out.push(p);
                    }
                    prop_assert_eq!(
                        batch_tree.next_shaping_event(),
                        ref_tree.next_shaping_event(),
                        "[{}] shaping horizons diverge", backend
                    );
                    match batch_tree.next_shaping_event() {
                        Some(t) => now = now.max(t.as_nanos()),
                        None => break,
                    }
                    if n == 0 && batch_tree.is_empty() && batch_tree.shaped_len() == 0 {
                        break;
                    }
                }
                // Packet equality is full-struct: every field identical.
                prop_assert_eq!(
                    &batch_out, &ref_out,
                    "[{}] shaped={} batched departure trace diverges", backend, shaped
                );
                prop_assert_eq!(batch_tree.len(), ref_tree.len());
                prop_assert_eq!(batch_tree.packet_buffer().live(), 0);
                batch_tree.packet_buffer().assert_coherent();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared-pool accounting across ports (§5.1/§6.1 memory system)
// ---------------------------------------------------------------------------

proptest! {
    /// Pool accounting is exact across a multi-tree fabric: after every
    /// operation on any port, `pool.live == Σ per-port (len +
    /// shaped_refs_holding_packets)` — and the pool's per-port occupancy
    /// counters agree with each tree individually, under arbitrary
    /// interleavings of enqueues (some rejected by the shared admission),
    /// dequeues and clock advances, with a shaped port parking dangling
    /// refs. Once everything drains, the pool is empty and coherent.
    #[test]
    fn shared_pool_accounting_is_exact_across_ports(
        ops in proptest::collection::vec((0usize..3, tree_op_strategy()), 1..150),
        delays in proptest::collection::vec(0u64..200, 1..8),
        capacity in 4usize..40,
        dynamic in any::<bool>(),
    ) {
        use pifo_core::pool::{AdmissionPolicy, SharedPacketPool};
        use pifo_core::transaction::FnTransaction;

        struct CyclicDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for CyclicDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }
        let by_class = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("class", |ctx: &EnqCtx| Rank(ctx.packet.class as u64)))
        };
        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.now.as_nanos())))
        };

        let policy = if dynamic {
            AdmissionPolicy::DynamicThreshold { num: 1, den: 1 }
        } else {
            AdmissionPolicy::Unlimited
        };
        let pool = SharedPacketPool::new(capacity, policy).into_shared();

        // Port 0: flat FIFO. Port 1: two work-conserving leaves.
        // Port 2: two *shaped* leaves (parks dangling refs).
        let mut trees: Vec<ScheduleTree> = Vec::new();
        {
            let mut b = TreeBuilder::new();
            let root = b.add_root("p0", fifo());
            trees.push(b.build_in_pool(Box::new(move |_| root), pool.register_port()).unwrap());
        }
        for shaped in [false, true] {
            let mut b = TreeBuilder::new();
            let root = b.add_root("root", fifo());
            let l = b.add_child(root, "L", by_class());
            let r = b.add_child(root, "R", by_class());
            if shaped {
                b.set_shaper(l, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
                b.set_shaper(r, Box::new(CyclicDelay { delays: delays.clone(), i: 0 }));
            }
            trees.push(
                b.build_in_pool(
                    Box::new(move |p: &Packet| if p.flow.0 < 2 { l } else { r }),
                    pool.register_port(),
                )
                .unwrap(),
            );
        }

        let mut now = 0u64;
        let mut id = 0u64;
        let mut offered = [0u64; 3];
        for (port, op) in &ops {
            let t = &mut trees[*port];
            match op {
                TreeOp::Enq(f, c) => {
                    let p = Packet::new(id, FlowId(*f), 100, Nanos(now)).with_class(*c);
                    id += 1;
                    offered[*port] += 1;
                    match t.enqueue(p, Nanos(now)) {
                        Ok(()) => {}
                        Err(TreeError::BufferFull(_)) => {} // shared admission said no
                        Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                    }
                }
                TreeOp::Deq => { let _ = t.dequeue(Nanos(now)); }
                TreeOp::Advance(dt) => {
                    now += dt;
                    t.release_due(Nanos(now));
                }
            }
            // The tentpole invariant, after *every* op.
            let sum: usize = trees
                .iter()
                .map(|t| t.len() + t.shaped_refs_holding_packets())
                .sum();
            prop_assert_eq!(pool.stats().live, sum, "pool.live diverged after {:?}", op);
            for (i, t) in trees.iter().enumerate() {
                prop_assert_eq!(
                    pool.borrow().port_occupancy(i),
                    t.len() + t.shaped_refs_holding_packets(),
                    "port {} occupancy counter diverged", i
                );
            }
            prop_assert!(pool.stats().live <= capacity, "capacity breached");
        }

        // Drain every port, hopping across shaping gaps.
        loop {
            let mut progressed = false;
            for t in trees.iter_mut() {
                while t.dequeue(Nanos(now)).is_some() {
                    progressed = true;
                }
            }
            let horizon = trees.iter().filter_map(|t| t.next_shaping_event()).min();
            match horizon {
                Some(h) => now = now.max(h.as_nanos()),
                None => if !progressed { break },
            }
            if trees.iter().all(|t| t.is_empty() && t.shaped_len() == 0) {
                break;
            }
        }
        prop_assert_eq!(pool.stats().live, 0, "drained fabric leaks pool slots");
        pool.borrow().assert_coherent();
        // Conservation per port: offered == admitted + rejected, and
        // everything admitted departed.
        let stats = pool.stats();
        for (i, port) in stats.ports.iter().enumerate() {
            prop_assert_eq!(
                port.admitted + port.rejected,
                offered[i],
                "port {} offered-packet conservation", i
            );
            prop_assert_eq!(port.occupancy, 0);
        }
    }
}
