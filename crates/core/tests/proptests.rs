//! Property tests for the PIFO contract and the scheduling tree.
//!
//! The central property: every registered backend ([`SortedArrayPifo`]
//! reference, [`HeapPifo`], [`BucketPifo`]) is observationally equivalent
//! under any interleaving of pushes and pops — the faster engines are
//! "just" faster implementations of the same abstract PIFO. The
//! differential tests below drive all backends with identical op streams
//! and demand byte-identical traces, including FIFO tie-breaks and
//! capacity rejections.

use pifo_core::prelude::*;
use proptest::prelude::*;

/// An abstract operation on a PIFO.
#[derive(Debug, Clone)]
enum Op {
    Push(u64, u32),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u64>(), any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

/// Ranks confined to a narrow band: stresses FIFO tie-breaking and, for
/// the bucket backend, keeps everything inside one calendar window.
fn narrow_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..64, any::<u32>()).prop_map(|(r, v)| Op::Push(r, v)),
        2 => Just(Op::Pop),
    ]
}

/// Drive every backend with the same op stream and assert identical
/// observable behaviour at each step: admission, pops, peeks, lengths,
/// the `PifoFull` round-trip, and the ordered inspection view.
fn assert_backends_agree(cap: Option<usize>, ops: Vec<Op>) {
    let mut queues: Vec<(PifoBackend, BoxedPifo<u32>)> = PifoBackend::ALL
        .iter()
        .map(|&be| {
            let q = match cap {
                Some(c) => be.make_bounded::<u32>(c),
                None => be.make::<u32>(),
            };
            (be, q)
        })
        .collect();
    let (reference, rest) = queues.split_first_mut().expect("at least one backend");
    for op in ops {
        match op {
            Op::Push(r, v) => {
                let want = reference.1.try_push(Rank(r), v);
                for (be, q) in rest.iter_mut() {
                    let got = q.try_push(Rank(r), v);
                    // PifoFull is PartialEq over (rank, item, capacity):
                    // rejections must round-trip identically.
                    prop_assert_eq!(&got, &want, "admission diverges on {}", be);
                }
            }
            Op::Pop => {
                let want = reference.1.pop();
                for (be, q) in rest.iter_mut() {
                    prop_assert_eq!(q.pop(), want, "pop diverges on {}", be);
                }
            }
        }
        let want_len = reference.1.len();
        let want_peek = reference.1.peek().map(|(r, v)| (r, *v));
        for (be, q) in rest.iter_mut() {
            prop_assert_eq!(q.len(), want_len, "len diverges on {}", be);
            prop_assert_eq!(
                q.peek().map(|(r, v)| (r, *v)),
                want_peek,
                "peek diverges on {}",
                be
            );
        }
    }
    // The full inspection view agrees element-for-element…
    let want_view: Vec<(Rank, u32)> = reference.1.iter_in_order().map(|(r, v)| (r, *v)).collect();
    for (be, q) in rest.iter_mut() {
        let view: Vec<(Rank, u32)> = q.iter_in_order().map(|(r, v)| (r, *v)).collect();
        prop_assert_eq!(&view, &want_view, "iter_in_order diverges on {}", be);
    }
    // …and so does the drained tail (byte-identical dequeue trace).
    loop {
        let want = reference.1.pop();
        for (be, q) in rest.iter_mut() {
            prop_assert_eq!(q.pop(), want, "drain diverges on {}", be);
        }
        if want.is_none() {
            break;
        }
    }
}

proptest! {
    /// All backends agree on every observable step, unbounded, with ranks
    /// drawn from the full u64 range (stresses the bucket backend's
    /// rebase/overflow machinery).
    #[test]
    fn backends_agree_unbounded(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        assert_backends_agree(None, ops);
    }

    /// All backends agree with ranks in a narrow band (stresses FIFO
    /// tie-breaking within one calendar bucket).
    #[test]
    fn backends_agree_narrow_ranks(ops in proptest::collection::vec(narrow_op_strategy(), 0..300)) {
        assert_backends_agree(None, ops);
    }

    /// All backends admit and reject identically against the same
    /// capacity, and the rejected `PifoFull` carries the same rank, item
    /// and capacity on every backend.
    #[test]
    fn backends_agree_bounded(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        assert_backends_agree(Some(cap), ops);
    }

    /// Popping everything yields non-decreasing ranks, with FIFO ties —
    /// on every backend.
    #[test]
    fn drain_is_sorted_and_stable(entries in proptest::collection::vec((0u64..50, any::<u32>()), 0..300)) {
        for backend in PifoBackend::ALL {
            let mut q: BoxedPifo<(usize, u32)> = backend.make();
            for (i, (r, v)) in entries.iter().enumerate() {
                q.push(Rank(*r), (i, *v));
            }
            let mut last: Option<(Rank, usize)> = None;
            while let Some((r, (i, _))) = q.pop() {
                if let Some((lr, li)) = last {
                    prop_assert!(r >= lr, "[{}] ranks must be non-decreasing", backend);
                    if r == lr {
                        prop_assert!(i > li, "[{}] equal ranks must pop FIFO", backend);
                    }
                }
                last = Some((r, i));
            }
        }
    }

    /// len() is pushes minus successful pops; capacity is never exceeded.
    #[test]
    fn capacity_is_respected(cap in 1usize..20, ops in proptest::collection::vec(op_strategy(), 0..100)) {
        let mut q: SortedArrayPifo<u32> = SortedArrayPifo::with_capacity(cap);
        let mut expected_len = 0usize;
        for op in ops {
            match op {
                Op::Push(r, v) => {
                    if expected_len < cap {
                        prop_assert!(q.try_push(Rank(r), v).is_ok());
                        expected_len += 1;
                    } else {
                        prop_assert!(q.try_push(Rank(r), v).is_err());
                    }
                }
                Op::Pop => {
                    let got = q.pop();
                    prop_assert_eq!(got.is_some(), expected_len > 0);
                    expected_len = expected_len.saturating_sub(1);
                }
            }
            prop_assert_eq!(q.len(), expected_len);
            prop_assert!(q.len() <= cap);
        }
    }
}

// Tree-level properties: for a work-conserving tree (no shapers), the
// number of dequeued packets always equals the number enqueued, the tree
// drains completely, and per-node PIFO occupancies match subtree packet
// counts throughout.
proptest! {
    #[test]
    fn two_level_tree_conserves_packets(
        flows in proptest::collection::vec(0u32..4, 1..100),
    ) {
        use pifo_core::transaction::FnTransaction;

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        for backend in PifoBackend::ALL {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("root", fifo());
            let l = b.add_child(root, "L", fifo());
            let r = b.add_child(root, "R", fifo());
            let mut tree = b.build(Box::new(move |p: &Packet| {
                if p.flow.0 < 2 { l } else { r }
            })).unwrap();

            let n = flows.len();
            for (i, f) in flows.iter().enumerate() {
                let pkt = Packet::new(i as u64, FlowId(*f), 100, Nanos(i as u64));
                tree.enqueue(pkt, Nanos(i as u64)).unwrap();
                prop_assert_eq!(tree.sched_pifo_len(root), i + 1);
                prop_assert_eq!(
                    tree.sched_pifo_len(l) + tree.sched_pifo_len(r),
                    i + 1
                );
            }
            let mut got = 0;
            while tree.dequeue(Nanos(1_000_000)).is_some() {
                got += 1;
                prop_assert_eq!(tree.len(), n - got);
            }
            prop_assert_eq!(got, n, "tree must drain fully on {}", backend);
            prop_assert_eq!(tree.sched_pifo_len(root), 0);
            prop_assert_eq!(tree.sched_pifo_len(l), 0);
            prop_assert_eq!(tree.sched_pifo_len(r), 0);
        }
    }

    /// With a shaper that delays every element by a bounded amount, no
    /// packet is lost: everything eventually drains once time passes the
    /// last release, and nothing drains before its release time.
    #[test]
    fn shaped_tree_conserves_packets(
        delays in proptest::collection::vec(1u64..1000, 1..50),
    ) {
        use pifo_core::transaction::FnTransaction;

        struct PerPacketDelay { delays: Vec<u64>, i: usize }
        impl ShapingTransaction for PerPacketDelay {
            fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
                let d = self.delays[self.i % self.delays.len()];
                self.i += 1;
                Nanos(ctx.now.as_nanos() + d)
            }
        }

        let fifo = || -> Box<dyn SchedulingTransaction> {
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| Rank(ctx.packet.arrival.as_nanos())))
        };
        for backend in PifoBackend::ALL {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("root", fifo());
            let leaf = b.add_child(root, "leaf", fifo());
            let max_delay = *delays.iter().max().unwrap();
            let n = delays.len();
            b.set_shaper(leaf, Box::new(PerPacketDelay { delays: delays.clone(), i: 0 }));
            let mut tree = b.build(Box::new(move |_| leaf)).unwrap();

            // All packets arrive at t=0; every release is at t >= 1.
            for i in 0..n {
                tree.enqueue(
                    Packet::new(i as u64, FlowId(0), 100, Nanos(0)),
                    Nanos(0),
                ).unwrap();
            }
            // Nothing can drain before the earliest possible release (t >= 1).
            prop_assert!(tree.dequeue(Nanos(0)).is_none());

            // After the horizon, everything drains.
            let horizon = Nanos(max_delay + 1);
            let mut got = 0;
            while tree.dequeue(horizon).is_some() {
                got += 1;
            }
            prop_assert_eq!(got, n, "shaped tree must drain fully on {}", backend);
            prop_assert_eq!(tree.shaped_len(), 0);
        }
    }
}
