//! Golden caret-snippet regressions for the front-end's diagnostics.
//!
//! Each test pins the *entire* rendered snippet — message, `-->` line:col
//! locus, source line, and caret placement — so a regression in any layer
//! (lexer span, parser recovery point, checker anchor, renderer margin
//! arithmetic) shows up as a one-line diff.
//!
//! Historical bug pinned here: the old single-pass parser reported many
//! grammar errors at end-of-input rather than at the offending token
//! (it had already consumed past it). The staged front-end anchors every
//! error at the token that broke the rule; only genuinely missing input
//! (e.g. a missing final `;`) points past the last token.
//!
//! Every rendered snippet is also written to
//! `$CARGO_TARGET_TMPDIR/domino-diagnostics/` so CI can upload the whole
//! set as an artifact when this suite fails.

use domino_lite::{parse, ParseError, Span};
use std::fs;
use std::path::PathBuf;

/// Write `rendered` into the CI artifact directory (best effort — the
/// assertions below are the actual test).
fn save_artifact(name: &str, rendered: &str) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("domino-diagnostics");
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), rendered);
    }
}

fn check_golden(name: &str, src: &str, expected: &str) -> ParseError {
    let err = match parse(src) {
        Ok(_) => panic!("{name}: program unexpectedly accepted"),
        Err(e) => e,
    };
    let rendered = err.render();
    save_artifact(name, &rendered);
    assert_eq!(rendered, expected, "{name}: rendered snippet drifted");
    err
}

#[test]
fn missing_semicolon_points_past_the_last_token() {
    // The one legitimate end-of-input diagnostic: the input really is
    // missing something, so the caret sits one past the final token.
    let err = check_golden(
        "missing_semicolon",
        "p.rank = 1",
        "\
error: expected ';', found end of input
 --> 1:11
  |
1 | p.rank = 1
  |           ^",
    );
    assert_eq!(err.span(), Span::point(10));
}

#[test]
fn bad_init_anchors_at_the_offending_token_not_eof() {
    // Regression for the historical bug: the error is at the `;` where an
    // integer was required — NOT at end of input.
    let err = check_golden(
        "bad_init",
        "state x = ;",
        "\
error: expected integer, found ';'
 --> 1:11
  |
1 | state x = ;
  |           ^",
    );
    assert_eq!(err.span(), Span::new(10, 11));
    assert_eq!((err.line(), err.col()), (1, 11));
}

#[test]
fn unterminated_block_anchors_at_the_open_brace() {
    // Another historically end-of-input error: a `{` that is never
    // closed now points back at the brace that opened the block.
    check_golden(
        "unterminated_block",
        "p.rank = 0;\nif (p.rank > 0) {\np.rank = 1;",
        "\
error: unterminated block (opened here)
 --> 2:17
  |
2 | if (p.rank > 0) {
  |                 ^",
    );
}

#[test]
fn lexer_bad_character() {
    check_golden(
        "bad_character",
        "p.rank = $;",
        "\
error: unexpected character '$'
 --> 1:10
  |
1 | p.rank = $;
  |          ^",
    );
}

#[test]
fn checker_undefined_variable_underlines_the_name() {
    check_golden(
        "undefined_variable",
        "p.rank = vt;",
        "\
error: undefined variable 'vt'
 --> 1:10
  |
1 | p.rank = vt;
  |          ^^",
    );
}

#[test]
fn checker_field_read_before_assignment() {
    check_golden(
        "field_before_assignment",
        "p.rank = p.start;",
        "\
error: read of packet field 'p.start' before any assignment ('start' is not an input field)
 --> 1:10
  |
1 | p.rank = p.start;
  |          ^^^^^^^",
    );
}

#[test]
fn checker_atomicity_violation_cites_the_cluster() {
    // §4.3: three mutually-entangled state variables exceed every
    // single-stage atom template. The diagnostic anchors at the first
    // clustered variable's declaration and names the whole cluster.
    check_golden(
        "atomicity_violation",
        "state a = 0;\nstate b = 0;\nstate c = 0;\na = a + b;\nb = b + c;\nc = c + a;\np.rank = a;",
        "\
error: state variables {a, b, c} must update atomically together; no single-stage atom template holds 3 coupled variables (§4.3)
 --> 1:7
  |
1 | state a = 0;
  |       ^",
    );
}

#[test]
fn non_flow_map_key_underlines_the_key() {
    check_golden(
        "non_flow_map_key",
        "statemap m;\np.rank = m[now];",
        "\
error: state maps are keyed by 'flow' only
 --> 2:12
  |
2 | p.rank = m[now];
  |            ^^^",
    );
}

#[test]
fn terse_display_form_is_preserved() {
    // The pre-diagnostic `Display` contract: one line, `parse error at
    // LINE:COL: MESSAGE`. Downstream code (panic messages in the
    // adapters, repro logs) formats errors with `{e}` and must not
    // suddenly receive a five-line snippet.
    let err = parse("state x = ;").unwrap_err();
    assert_eq!(
        err.to_string(),
        "parse error at 1:11: expected integer, found ';'"
    );
    let err = parse("p.rank = vt;").unwrap_err();
    assert_eq!(
        err.to_string(),
        "parse error at 1:10: undefined variable 'vt'"
    );
}

#[test]
fn every_front_end_error_renders_with_a_caret() {
    // Shape invariant across a grab-bag of malformed programs from all
    // three stages: whatever the message, the render ends in >= 1 caret
    // and names a real line:col.
    let broken = [
        "state",
        "state x",
        "state x =",
        "state x = 5",
        "if (1 > 0) {",
        "p.rank = ;",
        "p.rank = (1 + 2;",
        "p.rank = 99999999999999999999;",
        "p.rank = 1; trailing",
        "min(1, 2);",
        "p.rank = m[flow];",
        "ghost = 1;",
        "statemap m;\nm = 1;",
        "param k = 1;\nk = 2;",
        "@dequeue { virtual_time = rank; }",
    ];
    for src in broken {
        let err = parse(src).unwrap_err();
        let rendered = err.render();
        assert!(
            rendered.lines().last().unwrap().trim_end().ends_with('^'),
            "{src:?} render has no caret:\n{rendered}"
        );
        assert!(rendered.contains(&format!("--> {}:{}", err.line(), err.col())));
        assert!(err.line() >= 1 && err.col() >= 1, "{src:?}");
    }
}
