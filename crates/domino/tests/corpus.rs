//! A corpus of transaction programs beyond the paper's figures,
//! exercising every rung of the atom ladder and the compiler's reject
//! path — the kind of programs an operator would actually write against
//! this substrate (§8: "they could create their own").

use domino_lite::ast::AtomKind;
use domino_lite::{analyze, compile, parse, parse_unchecked, DominoScheduling, Interp};
use pifo_core::prelude::*;

fn required(src: &str) -> AtomKind {
    analyze(&parse(src).expect("parses"))
        .expect("analyzes")
        .required_atom
}

/// Strict priority / SJF / EDF style one-liners: pure field reads.
#[test]
fn one_line_priorities_are_stateless() {
    for src in [
        "p.rank = p.class;",
        "p.rank = p.flow_size;",
        "p.rank = p.remaining;",
        "p.rank = p.deadline;",
        "p.rank = p.attained;",
    ] {
        assert_eq!(required(src), AtomKind::Stateless, "{src}");
    }
}

/// A packet counter per switch: classic RAW.
#[test]
fn packet_counter_is_raw() {
    let src = "state total = 0;\ntotal = total + 1;\np.rank = total;";
    assert_eq!(required(src), AtomKind::ReadAddWrite);
    // And it runs.
    let mut tx = DominoScheduling::new("count", Interp::new(parse(src).unwrap()));
    let p = Packet::new(0, FlowId(0), 64, Nanos(0));
    let ctx = EnqCtx {
        packet: &p,
        now: Nanos(0),
        flow: p.flow,
    };
    assert_eq!(tx.rank(&ctx), Rank(1));
    assert_eq!(tx.rank(&ctx), Rank(2));
}

/// Byte counter gated on a header test — PRAW territory.
#[test]
fn conditional_byte_counter_is_praw() {
    let src = "state bytes = 0;\nif (p.class == 0) { bytes = bytes + p.length; }\np.rank = bytes;";
    assert_eq!(required(src), AtomKind::PredRaw);
    assert!(compile(&parse(src).unwrap(), AtomKind::ReadAddWrite).is_err());
    assert!(compile(&parse(src).unwrap(), AtomKind::PredRaw).is_ok());
}

/// Two-armed additive update (sample either way): IfElseRAW.
#[test]
fn two_armed_update_is_ifelseraw() {
    let src = "state acc = 0;\nif (p.length > 500) { acc = acc + 2; } else { acc = acc + 1; }\np.rank = acc;";
    assert_eq!(required(src), AtomKind::IfElseRaw);
}

/// Flowlet-style reset: a gap test resets per-flow state — the nested
/// conditional shape from the Domino paper's running example.
#[test]
fn flowlet_gap_reset_is_nested() {
    let src = r#"
statemap last_seen;
if (now - last_seen[flow] > 1000) {
    p.new_flowlet = 1;
} else {
    p.new_flowlet = 0;
}
last_seen[flow] = now;
p.rank = p.new_flowlet;
"#;
    // last_seen is written unconditionally with a stateless value, but
    // it is also *read* in the guard: self-coupled, non-additive.
    assert_eq!(required(src), AtomKind::NestedIf);
}

/// An EWMA of queueing delay feeding the rank: coupled pair.
#[test]
fn ewma_with_timestamp_is_pairs() {
    let src = r#"
state ewma = 0;
state last_time = 0;
ewma = (ewma * 7 + (now - last_time)) / 8;
last_time = now;
p.rank = ewma;
"#;
    assert_eq!(required(src), AtomKind::Pairs);
}

/// Three mutually-entangled state variables: beyond every template.
#[test]
fn three_way_entanglement_rejected() {
    let src = r#"
state a = 0;
state b = 0;
state c = 0;
a = a + b;
b = b + c;
c = c + a;
p.rank = a;
"#;
    // parse_unchecked: the stage checker rejects this statically (that is
    // its job — see below); here we pin that the analysis itself also
    // rejects the unchecked AST.
    let err = analyze(&parse_unchecked(src).unwrap()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no atom template"), "{msg}");

    // And the front-end rejects it before analysis, with a §4.3 span.
    let ferr = parse(src).unwrap_err();
    assert!(ferr.message().contains("atomically"), "{}", ferr.message());
    assert!(ferr.render().contains('^'));
}

/// Division and modulo work and trap on zero divisors at runtime, not
/// at compile time (data-dependent).
#[test]
fn division_semantics() {
    let src = "p.rank = p.length / p.class;";
    let prog = parse(src).unwrap();
    assert_eq!(analyze(&prog).unwrap().required_atom, AtomKind::Stateless);
    let mut i = Interp::new(prog);
    let mut view = domino_lite::PacketView::synthetic(0, 0);
    view.set("length", 100);
    view.set("class", 0);
    assert!(matches!(
        i.run(&mut view),
        Err(domino_lite::RuntimeError::DivByZero)
    ));
    view.set("class", 3);
    i.run(&mut view).unwrap();
    assert_eq!(view.get("rank"), Some(33));
}

/// Programs can be parameterised and instantiated at different operating
/// points without re-parsing (the compiler-once, configure-many flow).
#[test]
fn params_configure_instances() {
    let src =
        "param threshold = 1000;\nif (p.length > threshold) { p.rank = 1; } else { p.rank = 0; }";
    let prog = parse(src).unwrap();
    let mut small = Interp::new(prog.clone());
    small.set_param("threshold", 100);
    let mut large = Interp::new(prog);
    large.set_param("threshold", 10_000);

    let mut view = domino_lite::PacketView::synthetic(0, 0);
    view.set("length", 1_500);
    small.run(&mut view).unwrap();
    assert_eq!(view.get("rank"), Some(1), "1500 > 100");
    large.run(&mut view).unwrap();
    assert_eq!(view.get("rank"), Some(0), "1500 < 10000");
}

/// The whole corpus stays within the published atom vocabulary except
/// the deliberate counterexample — i.e. the substrate is *useful*.
#[test]
fn corpus_compiles_with_pairs() {
    let corpus = [
        "p.rank = p.class;",
        "state total = 0;\ntotal = total + 1;\np.rank = total;",
        "state bytes = 0;\nif (p.class == 0) { bytes = bytes + p.length; }\np.rank = bytes;",
        "statemap last_seen;\nif (now - last_seen[flow] > 1000) { p.x = 1; } else { p.x = 0; }\nlast_seen[flow] = now;\np.rank = p.x;",
        "state ewma = 0;\nstate last_time = 0;\newma = (ewma * 7 + (now - last_time)) / 8;\nlast_time = now;\np.rank = ewma;",
    ];
    for src in corpus {
        compile(&parse(src).unwrap(), AtomKind::Pairs).unwrap_or_else(|e| panic!("{src}: {e}"));
    }
}
