//! Lexer corpus: the exact (token, span) stream of every figure program,
//! pinned. Spans are validated two ways — structurally (monotone,
//! in-bounds, lexeme = source slice) and literally (the `Kind@lo..hi`
//! rendering of Fig 6, plus every figure's full lexeme stream).
//!
//! If a lexer change shifts a single token boundary in any paper figure,
//! one of these goldens moves and the diff shows exactly where.

use domino_lite::{figures, lex, Span, Token, TokenKind};

/// Reconstruct each token's lexeme by slicing the source at its span.
/// `Eof` renders as `<eof>` (its span is the empty point past the end).
fn lexemes(src: &str) -> Vec<String> {
    let toks = lex(src).unwrap();
    validate_spans(src, &toks);
    toks.iter()
        .map(|t| match &t.kind {
            TokenKind::Eof => "<eof>".to_string(),
            _ => src[t.span.lo..t.span.hi].to_string(),
        })
        .collect()
}

/// Structural span invariants every token stream must satisfy:
/// in-bounds, non-empty (except Eof), strictly ordered, non-overlapping,
/// and each span's source slice re-lexes to the token it came from.
fn validate_spans(src: &str, toks: &[Token]) {
    let mut prev_hi = 0;
    for (i, t) in toks.iter().enumerate() {
        assert!(
            t.span.lo <= t.span.hi,
            "token {i}: inverted span {}",
            t.span
        );
        assert!(
            t.span.hi <= src.len(),
            "token {i}: span {} out of bounds",
            t.span
        );
        assert!(
            t.span.lo >= prev_hi,
            "token {i}: span {} overlaps previous (ends at {prev_hi})",
            t.span
        );
        prev_hi = t.span.hi;
        match &t.kind {
            TokenKind::Eof => {
                assert_eq!(i, toks.len() - 1, "Eof must be last");
                assert_eq!(t.span, Span::point(src.len()), "Eof sits past the end");
            }
            TokenKind::Ident(name) => {
                assert_eq!(&src[t.span.lo..t.span.hi], name, "ident lexeme = slice");
            }
            TokenKind::Punct(p) => {
                assert_eq!(&src[t.span.lo..t.span.hi], *p, "punct lexeme = slice");
            }
            TokenKind::Num(v) => {
                let digits: String = src[t.span.lo..t.span.hi]
                    .chars()
                    .filter(|c| *c != '_')
                    .collect();
                assert_eq!(
                    digits.parse::<i64>().ok(),
                    Some(*v),
                    "numeric lexeme re-parses to its value"
                );
            }
        }
    }
}

#[test]
fn every_figure_stream_is_span_consistent() {
    for (name, src) in figures::all_figures() {
        let toks = lex(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        validate_spans(src, &toks);
        assert!(toks.len() > 1, "{name}: non-trivial stream");
    }
}

#[test]
fn stfq_lexeme_stream_is_pinned() {
    assert_eq!(
        lexemes(figures::STFQ_SRC).join(" "),
        "state virtual_time = 0 ; statemap last_finish ; \
         if ( flow in last_finish ) { p . start = max ( virtual_time , last_finish [ flow ] ) ; } \
         else { p . start = virtual_time ; } \
         p . serv = ( p . length * 256 ) / weight ; \
         if ( p . serv < 1 ) { p . serv = 1 ; } \
         last_finish [ flow ] = p . start + p . serv ; \
         p . rank = p . start ; \
         @dequeue { virtual_time = max ( virtual_time , rank ) ; } <eof>"
    );
}

#[test]
fn tbf_lexeme_stream_is_pinned() {
    assert_eq!(
        lexemes(figures::TBF_SRC).join(" "),
        "param r = 10_000_000 ; param B = 1_200_000_000_000 ; \
         state tokens = 0 ; state last_time = 0 ; \
         tokens = min ( tokens + r * ( now - last_time ) , B ) ; \
         if ( p . length_nb <= tokens ) { p . send_time = now ; } \
         else { p . send_time = now + ( p . length_nb - tokens + r - 1 ) / r ; } \
         tokens = tokens - p . length_nb ; last_time = now ; p . rank = p . send_time ; <eof>"
    );
}

#[test]
fn lstf_lexeme_stream_is_pinned() {
    assert_eq!(
        lexemes(figures::LSTF_SRC).join(" "),
        "p . slack = p . slack - p . prev_wait_time ; p . rank = p . slack ; <eof>"
    );
}

#[test]
fn stop_and_go_lexeme_stream_is_pinned() {
    assert_eq!(
        lexemes(figures::STOP_AND_GO_SRC).join(" "),
        "param T = 1000 ; state frame_begin = 0 ; state frame_end = 0 ; \
         if ( now >= frame_end ) { frame_begin = frame_end ; frame_end = frame_begin + T ; } \
         p . rank = frame_end ; p . send_time = frame_end ; <eof>"
    );
}

#[test]
fn min_rate_lexeme_stream_is_pinned() {
    assert_eq!(
        lexemes(figures::MIN_RATE_SRC).join(" "),
        "param min_rate = 1_000_000 ; param BURST = 12_000_000_000_000 ; \
         state tb = 0 ; state last_time = 0 ; \
         tb = tb + min_rate * ( now - last_time ) ; \
         if ( tb > BURST ) { tb = BURST ; } \
         if ( tb > p . length_nb ) { p . over_min = 0 ; tb = tb - p . length_nb ; } \
         else { p . over_min = 1 ; } \
         last_time = now ; p . rank = p . over_min ; <eof>"
    );
}

/// Fig 6 with byte-exact spans: the full `Kind@lo..hi` rendering. The
/// leading newline of the raw-string source is byte 0, which is why the
/// first token starts at 1.
#[test]
fn lstf_spans_are_pinned_byte_for_byte() {
    let rendered: Vec<String> = lex(figures::LSTF_SRC)
        .unwrap()
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert_eq!(
        rendered,
        vec![
            "Ident(p)@1..2",
            "Punct(.)@2..3",
            "Ident(slack)@3..8",
            "Punct(=)@9..10",
            "Ident(p)@11..12",
            "Punct(.)@12..13",
            "Ident(slack)@13..18",
            "Punct(-)@19..20",
            "Ident(p)@21..22",
            "Punct(.)@22..23",
            "Ident(prev_wait_time)@23..37",
            "Punct(;)@37..38",
            "Ident(p)@39..40",
            "Punct(.)@40..41",
            "Ident(rank)@41..45",
            "Punct(=)@46..47",
            "Ident(p)@48..49",
            "Punct(.)@49..50",
            "Ident(slack)@50..55",
            "Punct(;)@55..56",
            "Eof@57..57",
        ]
    );
}

// ------------------------------------------------------------------
// Edge cases beyond the figures.
// ------------------------------------------------------------------

#[test]
fn dequeue_marker_is_one_identifier() {
    let toks = lex("@dequeue { }").unwrap();
    assert_eq!(toks[0].kind, TokenKind::Ident("@dequeue".into()));
    assert_eq!(toks[0].span, Span::new(0, 8));
}

#[test]
fn comments_leave_gaps_not_tokens() {
    let src = "a // one\n+ # two\nb";
    assert_eq!(lexemes(src).join(" "), "a + b <eof>");
    let toks = lex(src).unwrap();
    // `+` sits on line 2, after the first comment.
    assert_eq!(toks[1].span, Span::new(9, 10));
}

#[test]
fn adjacent_operators_split_greedily() {
    // `<=` wins over `<` `=`; `a<=b` has no spaces to anchor on.
    assert_eq!(lexemes("a<=b").join(" "), "a <= b <eof>");
    // `==` then `=`, not three `=`.
    assert_eq!(lexemes("a===b").join(" "), "a == = b <eof>");
    // `!` then `!=`.
    assert_eq!(lexemes("!!=").join(" "), "! != <eof>");
}

#[test]
fn underscored_literals_keep_their_source_spelling() {
    let toks = lex("x = 1_200_000_000_000;").unwrap();
    assert_eq!(toks[2].kind, TokenKind::Num(1_200_000_000_000));
    assert_eq!(toks[2].span, Span::new(4, 21));
}

#[test]
fn whitespace_only_input_is_just_eof() {
    for src in ["", "   ", "\n\n\t ", "// only a comment\n", "# only\n"] {
        let toks = lex(src).unwrap();
        assert_eq!(toks.len(), 1, "{src:?}");
        assert_eq!(toks[0].kind, TokenKind::Eof);
        assert_eq!(toks[0].span, Span::point(src.len()));
    }
}

#[test]
fn token_display_forms_are_stable() {
    // The `Kind@lo..hi` rendering is itself API (other tests and the CI
    // artifact pipeline format streams with it) — pin each variant once.
    let toks = lex("x = 5 ;").unwrap();
    let shown: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
    assert_eq!(
        shown,
        vec![
            "Ident(x)@0..1",
            "Punct(=)@2..3",
            "Num(5)@4..5",
            "Punct(;)@6..7",
            "Eof@7..7",
        ]
    );
}
