//! Differential figure-program tests: every paper figure, run as a
//! *domino-lite program* through the [`DominoScheduling`]/[`DominoShaping`]
//! adapters inside a [`ScheduleTree`], must produce a departure trace
//! bit-identical to the *native Rust* transaction from `pifo-algos` —
//! swept across every exact PIFO backend.
//!
//! This is the end-to-end claim of the compiler front-end: a program that
//! survives lex → parse → check → analyze is not just *classified*
//! correctly, it *schedules* correctly, indistinguishable from the
//! hand-written twin the rest of the workspace validates against the
//! paper.
//!
//! Stop-and-Go uses dense arrivals (inter-arrival < frame length) on
//! purpose: the domino source is the paper's literal single-step frame
//! advance, which diverges from the native tiled implementation only
//! after a multi-frame idle gap (documented on
//! [`domino_lite::figures::STOP_AND_GO_SRC`]).

use domino_lite::{figures, DominoScheduling, DominoShaping};
use pifo_algos::{Lstf, MinRateGuarantee, Stfq, StopAndGo, TokenBucketFilter, WeightTable};
use pifo_core::prelude::*;
use pifo_core::transaction::FnTransaction;

/// A deterministic SplitMix64 — fixed seeds, reproducible traces.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Drive `tree` through `arrivals` (sorted by arrival time, multiples of
/// `step`), attempting one dequeue per `step`, then drain. Returns the
/// full departure trace as `(time, packet id)` pairs.
fn departures(mut tree: ScheduleTree, arrivals: &[Packet], step: u64) -> Vec<(u64, u64)> {
    assert!(step > 0);
    let mut out = Vec::new();
    let mut ai = 0;
    let horizon = arrivals.last().map_or(0, |p| p.arrival.as_nanos());
    let mut t = 0;
    while t <= horizon {
        while ai < arrivals.len() && arrivals[ai].arrival.as_nanos() <= t {
            let p = arrivals[ai].clone();
            tree.enqueue(p, Nanos(t)).unwrap();
            ai += 1;
        }
        if let Some(p) = tree.dequeue(Nanos(t)) {
            out.push((t, p.id.0));
        }
        t += step;
    }
    // Drain the backlog (shaped packets may be held far past the horizon).
    let mut idle = 0;
    while idle < 1_000_000 / step + 64 {
        match tree.dequeue(Nanos(t)) {
            Some(p) => {
                out.push((t, p.id.0));
                idle = 0;
            }
            None => idle += 1,
        }
        t += step;
    }
    assert!(tree.is_empty(), "tree failed to drain");
    assert_eq!(tree.shaped_len(), 0, "shaper failed to release");
    out
}

/// Single-node tree: every packet classified to the root scheduler.
fn sched_tree(backend: PifoBackend, sched: Box<dyn SchedulingTransaction>) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    let root = b.add_root("root", sched);
    b.build(Box::new(move |_| root)).unwrap()
}

/// Two-node tree with a shaper on the leaf; leaf and root schedule FIFO
/// by packet id so the only reordering force is the shaper under test.
fn shaped_tree(backend: PifoBackend, shaper: Box<dyn ShapingTransaction>) -> ScheduleTree {
    let fifo = || -> Box<dyn SchedulingTransaction> {
        Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
            Rank(ctx.packet.id.0)
        }))
    };
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    let root = b.add_root("root", fifo());
    let leaf = b.add_child(root, "leaf", fifo());
    b.set_shaper(leaf, shaper);
    b.build(Box::new(move |_| leaf)).unwrap()
}

fn assert_identical(
    figure: &str,
    backend: PifoBackend,
    domino: Vec<(u64, u64)>,
    native: Vec<(u64, u64)>,
    expected_len: usize,
) {
    assert_eq!(
        domino.len(),
        expected_len,
        "{figure} [{backend}]: trace covers every packet"
    );
    assert_eq!(
        domino, native,
        "{figure} [{backend}]: domino and native departure traces diverge"
    );
}

#[test]
fn stfq_matches_native_across_exact_backends() {
    // Three weighted flows, bursty arrivals, varying lengths.
    let mut rng = Lcg(1);
    let arrivals: Vec<Packet> = (0..60)
        .map(|i| {
            let flow = FlowId(i % 3 + 1);
            let len = 200 + rng.below(1300) as u32;
            Packet::new(i as u64, flow, len, Nanos((i / 3) as u64 * 100))
        })
        .collect();

    for backend in PifoBackend::EXACT {
        let domino_tx = DominoScheduling::new("stfq", figures::stfq())
            .with_weight(FlowId(1), 1)
            .with_weight(FlowId(2), 2)
            .with_weight(FlowId(3), 3);
        let mut weights = WeightTable::new();
        weights.set(FlowId(1), 1);
        weights.set(FlowId(2), 2);
        weights.set(FlowId(3), 3);
        let native_tx = Stfq::new(weights);

        let d = departures(sched_tree(backend, Box::new(domino_tx)), &arrivals, 100);
        let n = departures(sched_tree(backend, Box::new(native_tx)), &arrivals, 100);
        assert_identical("STFQ", backend, d, n, arrivals.len());
    }
}

#[test]
fn lstf_matches_native_across_exact_backends() {
    let mut rng = Lcg(2);
    let arrivals: Vec<Packet> = (0..50)
        .map(|i| {
            let slack = rng.below(6_000) as i64 - 500;
            Packet::new(i as u64, FlowId(i % 4), 400, Nanos(i as u64 * 50)).with_slack(slack)
        })
        .collect();

    for backend in PifoBackend::EXACT {
        let d = departures(
            sched_tree(
                backend,
                Box::new(DominoScheduling::new("lstf", figures::lstf())),
            ),
            &arrivals,
            50,
        );
        let n = departures(sched_tree(backend, Box::new(Lstf)), &arrivals, 50);
        assert_identical("LSTF", backend, d, n, arrivals.len());
    }
}

#[test]
fn tbf_matches_native_across_exact_backends() {
    // 8 Gb/s = 1 B/ns, burst of one 1000 B packet; 12 packets all at t=0
    // force the bucket through its full burst-then-meter cycle.
    let arrivals: Vec<Packet> = (0..12)
        .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(0)))
        .collect();

    for backend in PifoBackend::EXACT {
        let d = departures(
            shaped_tree(
                backend,
                Box::new(DominoShaping::new(
                    "tbf",
                    figures::tbf(8_000_000_000, 1_000),
                )),
            ),
            &arrivals,
            250,
        );
        let n = departures(
            shaped_tree(
                backend,
                Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)),
            ),
            &arrivals,
            250,
        );
        assert_identical("TBF", backend, d, n, arrivals.len());
    }
}

#[test]
fn stop_and_go_matches_native_under_dense_arrivals() {
    // Frames of 1000 ns; arrivals every 100 ns keep every inter-arrival
    // gap below one frame, the regime where the paper's single-step frame
    // advance and the native tiled implementation agree exactly.
    let arrivals: Vec<Packet> = (0..40)
        .map(|i| Packet::new(i, FlowId(i as u32 % 2), 500, Nanos(i * 100)))
        .collect();

    for backend in PifoBackend::EXACT {
        let d = departures(
            shaped_tree(
                backend,
                Box::new(DominoShaping::new("sg", figures::stop_and_go(1_000))),
            ),
            &arrivals,
            100,
        );
        let n = departures(
            shaped_tree(backend, Box::new(StopAndGo::new(Nanos(1_000)))),
            &arrivals,
            100,
        );
        assert_identical("Stop-and-Go", backend, d, n, arrivals.len());
    }
}

#[test]
fn min_rate_matches_native_across_exact_backends() {
    // Single flow (the domino program holds one bucket; the native twin
    // is per-flow — identical when there is exactly one). 8 Gb/s
    // guarantee, 1 KB burst; 1000 B packets every 500 ns make the bucket
    // oscillate around its threshold, exercising both rank bands.
    let arrivals: Vec<Packet> = (0..30)
        .map(|i| Packet::new(i, FlowId(7), 1_000, Nanos(i * 500)))
        .collect();

    for backend in PifoBackend::EXACT {
        let d = departures(
            sched_tree(
                backend,
                Box::new(DominoScheduling::new(
                    "minrate",
                    figures::min_rate(8_000_000_000, 1_000),
                )),
            ),
            &arrivals,
            500,
        );
        let n = departures(
            sched_tree(
                backend,
                Box::new(MinRateGuarantee::new(8_000_000_000, 1_000)),
            ),
            &arrivals,
            500,
        );
        assert_identical("Min-rate", backend, d, n, arrivals.len());
    }
}

/// The documented Stop-and-Go divergence is real: after a multi-frame
/// idle gap the two implementations assign different send times. Pinning
/// the divergence keeps the "dense arrivals only" caveat honest — if
/// someone "fixes" the domino source to tile, this test forces the
/// docs and the equivalence claim to be revisited together.
#[test]
fn stop_and_go_divergence_after_idle_gap_is_real() {
    let mut domino = figures::stop_and_go(1_000);
    let mut native = StopAndGo::new(Nanos(1_000));

    // One packet at t=100 (both: frame [0,1000) -> send 1000), then a
    // 5-frame idle gap.
    for (id, now) in [(0u64, 100u64), (1, 5_500)] {
        let p = Packet::new(id, FlowId(0), 500, Nanos(now));
        let ctx = EnqCtx {
            packet: &p,
            now: Nanos(now),
            flow: p.flow,
        };
        let mut view = domino_lite::PacketView::from_packet(ctx.packet, ctx.now, ctx.flow, 1);
        domino
            .run(&mut view)
            .unwrap_or_else(|e| panic!("domino stop-and-go failed: {e}"));
        let d = view.get("send_time").unwrap();
        let n = native.send_time(&ctx).as_nanos();
        if id == 0 {
            assert_eq!(d as u64, n, "both start in the first frame");
        } else {
            // Native tiles to the frame containing `now` (+1): 6000.
            // The domino source advances one frame past its stale state:
            // 2000. The packet at t=5500 exposes the gap.
            assert_eq!(n, 6_000, "native tiles past the idle gap");
            assert_eq!(d, 2_000, "paper's literal program steps one frame");
        }
    }
}
