//! Grammar fuzzing: a random-AST generator paired with the canonical
//! pretty-printer ([`Program::pretty`]) proves the round-trip property
//!
//! ```text
//! parse_unchecked(pretty(ast)) == ast        (span-insensitive equality)
//! ```
//!
//! plus a no-panic property over arbitrary byte soup and over mutated
//! (truncated/spliced) figure programs. All cases are deterministic under
//! the vendored proptest stub's fixed-seed SplitMix64 runner, so a CI
//! failure prints a case index that reproduces locally bit-for-bit.
//!
//! The generator deliberately produces programs the *stage checker* would
//! reject (undeclared reads, §4.3 violations) — the round trip is a
//! grammar property, so it runs through `parse_unchecked`. The checked
//! `parse` entry point appears only in the no-panic properties, where its
//! job is to return `Err` gracefully, never to crash.

use domino_lite::ast::{BinOp, Expr, ExprKind, LValue, LValueKind, Program, Stmt, StmtKind};
use domino_lite::ast::{MapDecl, StateDecl};
use domino_lite::{figures, parse, parse_unchecked, Span};
use proptest::test_runner::{run_cases, TestRng};

// Fixed name pools: grammar-valid, collision-free with keywords/builtins.
const STATE_NAMES: [&str; 3] = ["s0", "s1", "s2"];
const PARAM_NAMES: [&str; 2] = ["k0", "k1"];
const MAP_NAMES: [&str; 2] = ["m0", "m1"];
const FIELD_NAMES: [&str; 4] = ["rank", "tmp", "start", "x1"];
const BUILTIN_NAMES: [&str; 3] = ["now", "flow", "weight"];
const BIN_OPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::And,
    BinOp::Or,
];

fn pick<'a>(rng: &mut TestRng, pool: &[&'a str]) -> &'a str {
    pool[rng.below(pool.len() as u64) as usize]
}

/// An i64 literal that survives the print → lex round trip. `i64::MIN` is
/// the one excluded value: its printed magnitude overflows the lexer.
fn gen_num(rng: &mut TestRng) -> i64 {
    match rng.below(4) {
        0 => rng.below(10) as i64,
        1 => -(rng.below(1_000) as i64),
        2 => rng.below(1_000_000_000_000) as i64,
        _ => i64::MAX - rng.below(5) as i64,
    }
}

fn gen_expr(rng: &mut TestRng, depth: u64) -> Expr {
    let choice = if depth == 0 {
        rng.below(5)
    } else {
        rng.below(9)
    };
    let kind = match choice {
        0 => ExprKind::Num(gen_num(rng)),
        1 => ExprKind::Var(pick(rng, &STATE_NAMES).to_string()),
        2 => ExprKind::Var(pick(rng, &BUILTIN_NAMES).to_string()),
        3 => ExprKind::Field(pick(rng, &FIELD_NAMES).to_string()),
        4 => match rng.below(2) {
            0 => ExprKind::MapGet(pick(rng, &MAP_NAMES).to_string()),
            _ => ExprKind::MapContains(pick(rng, &MAP_NAMES).to_string()),
        },
        5 => ExprKind::Min(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        6 => ExprKind::Max(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        7 => ExprKind::Not(Box::new(gen_expr(rng, depth - 1))),
        _ => ExprKind::Bin(
            BIN_OPS[rng.below(BIN_OPS.len() as u64) as usize],
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    };
    Expr::dummy(kind)
}

fn gen_lvalue(rng: &mut TestRng) -> LValue {
    let kind = match rng.below(4) {
        0 => LValueKind::Var(pick(rng, &STATE_NAMES).to_string()),
        1 => LValueKind::Var(pick(rng, &PARAM_NAMES).to_string()),
        2 => LValueKind::Field(pick(rng, &FIELD_NAMES).to_string()),
        _ => LValueKind::MapPut(pick(rng, &MAP_NAMES).to_string()),
    };
    LValue::dummy(kind)
}

fn gen_block(rng: &mut TestRng, len: u64, depth: u64) -> Vec<Stmt> {
    (0..rng.below(len + 1))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

fn gen_stmt(rng: &mut TestRng, depth: u64) -> Stmt {
    let kind = if depth > 0 && rng.below(3) == 0 {
        StmtKind::If {
            cond: gen_expr(rng, 2),
            then: gen_block(rng, 2, depth - 1),
            otherwise: gen_block(rng, 2, depth - 1),
        }
    } else {
        StmtKind::Assign(gen_lvalue(rng), gen_expr(rng, 3))
    };
    Stmt::dummy(kind)
}

fn gen_program(rng: &mut TestRng) -> Program {
    let mut prog = Program::empty();
    for (i, name) in STATE_NAMES.iter().enumerate() {
        if rng.below(2) == 0 {
            prog.states.push(StateDecl {
                name: name.to_string(),
                init: gen_num(rng),
                span: Span::DUMMY,
            });
        } else if i == 0 {
            // Always declare at least one state so decl syntax is covered.
            prog.states.push(StateDecl {
                name: name.to_string(),
                init: 0,
                span: Span::DUMMY,
            });
        }
    }
    for name in MAP_NAMES {
        if rng.below(2) == 0 {
            prog.maps.push(MapDecl {
                name: name.to_string(),
                span: Span::DUMMY,
            });
        }
    }
    for name in PARAM_NAMES {
        if rng.below(2) == 0 {
            prog.params.push(StateDecl {
                name: name.to_string(),
                init: gen_num(rng),
                span: Span::DUMMY,
            });
        }
    }
    prog.body = gen_block(rng, 4, 3);
    if rng.below(2) == 0 {
        prog.has_dequeue = true;
        prog.dequeue_body = gen_block(rng, 2, 2);
    }
    prog
}

/// The tentpole property: printing any AST and re-parsing it yields the
/// same AST (spans aside). One direction proves the printer emits only
/// valid grammar; the other proves the parser loses no structure.
#[test]
fn pretty_then_parse_is_identity() {
    run_cases(|rng| {
        let prog = gen_program(rng);
        let src = prog.pretty();
        let reparsed = parse_unchecked(&src).unwrap_or_else(|e| {
            panic!("pretty output failed to parse:\n{src}\n{e}\n{}", e.render())
        });
        assert_eq!(reparsed, prog, "round-trip mismatch for:\n{src}");
    });
}

/// Printing is a fixpoint: pretty(parse(pretty(p))) == pretty(p). This is
/// what makes `pretty` *canonical* and not merely invertible.
#[test]
fn pretty_is_a_fixpoint() {
    run_cases(|rng| {
        let prog = gen_program(rng);
        let once = prog.pretty();
        let twice = parse_unchecked(&once).unwrap().pretty();
        assert_eq!(once, twice);
    });
}

/// The figure programs themselves round-trip through the printer.
#[test]
fn figures_round_trip_through_pretty() {
    for (name, src) in figures::all_figures() {
        let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = parse_unchecked(&prog.pretty())
            .unwrap_or_else(|e| panic!("{name} pretty output failed to parse: {e}"));
        assert_eq!(reparsed, prog, "{name}");
        // Canonical source still passes the full checked pipeline.
        parse(&prog.pretty()).unwrap_or_else(|e| panic!("{name} pretty fails check: {e}"));
    }
}

/// Arbitrary byte soup never panics the front-end — worst case is a
/// spanned `Err`. The alphabet is weighted toward grammar-adjacent
/// characters so the fuzz reaches deep into the parser rather than dying
/// in the lexer's first bad-character check, and includes multibyte
/// characters to exercise UTF-8 span arithmetic.
#[test]
fn arbitrary_input_never_panics() {
    const ALPHABET: [char; 48] = [
        'a', 'b', 'p', 's', 'x', '_', '@', '.', ';', ',', '=', '(', ')', '{', '}', '[', ']', '<',
        '>', '!', '&', '|', '+', '-', '*', '/', '%', '0', '1', '9', ' ', '\n', '\t', '#', 'i', 'f',
        'e', 'l', 'n', 'm', 'w', 'r', 'k', '§', 'é', '→', '🦀', '\u{0}',
    ];
    run_cases(|rng| {
        let len = rng.below(120);
        let src: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
            .collect();
        // Ok or Err both fine; every Err must still render a snippet.
        if let Err(e) = parse(&src) {
            let rendered = e.render();
            assert!(rendered.contains('^'), "{src:?}:\n{rendered}");
        }
    });
}

/// Figure programs truncated at a random point and spliced onto a random
/// tail of another figure: structurally plausible garbage, never a panic.
#[test]
fn mutated_figures_never_panic() {
    let figs = figures::all_figures();
    run_cases(|rng| {
        let (_, head_src) = figs[rng.below(figs.len() as u64) as usize];
        let (_, tail_src) = figs[rng.below(figs.len() as u64) as usize];
        let mut cut = rng.below(head_src.len() as u64 + 1) as usize;
        while !head_src.is_char_boundary(cut) {
            cut -= 1;
        }
        let mut start = rng.below(tail_src.len() as u64 + 1) as usize;
        while !tail_src.is_char_boundary(start) {
            start -= 1;
        }
        let spliced = format!("{}{}", &head_src[..cut], &tail_src[start..]);
        if let Err(e) = parse(&spliced) {
            assert!(e.line() >= 1 && e.col() >= 1);
        }
    });
}

/// Deep but bounded nesting parses; pathological nesting is a clean
/// spanned error (the parser's depth guard), not a stack overflow.
#[test]
fn nesting_limit_is_a_clean_error() {
    // The guard bounds *recursion depth*, which grows faster than paren
    // depth (expr → unary → primary each descend); 20 parens is well
    // inside the limit, 300 is well beyond it.
    for depth in [1usize, 8, 20] {
        let src = format!("p.rank = {}1{};", "(".repeat(depth), ")".repeat(depth));
        parse(&src).unwrap_or_else(|e| panic!("depth {depth} should parse: {e}"));
    }
    let src = format!("p.rank = {}1{};", "(".repeat(300), ")".repeat(300));
    let err = parse(&src).unwrap_err();
    assert!(err.message().contains("nesting"), "{err}");
}
