//! Adapters exposing interpreted domino-lite programs as `pifo-core`
//! scheduling/shaping transactions — so an algorithm *written in the
//! paper's language* can drive a PIFO tree, a simulated port, or the
//! hardware mesh interchangeably with its native Rust twin.

use crate::interp::{Interp, PacketView};
use pifo_core::prelude::*;
use std::collections::HashMap;

/// A scheduling transaction backed by a domino-lite program.
///
/// The program must assign `p.rank`. Negative ranks clamp to 0 (LSTF's
/// late packets are maximally urgent; u64 ranks have no sign).
///
/// # Panics
///
/// Runtime errors (overflow, undefined reads) panic: a mis-programmed
/// transaction in real hardware would silently corrupt scheduling, so the
/// model fails loudly instead. Validate programs with
/// [`crate::pipeline::compile`] first.
pub struct DominoScheduling {
    interp: Interp,
    label: String,
    weights: HashMap<FlowId, u64>,
    default_weight: u64,
}

impl DominoScheduling {
    /// Wrap `interp` under a display `label`.
    pub fn new(label: &str, interp: Interp) -> Self {
        DominoScheduling {
            interp,
            label: label.to_string(),
            weights: HashMap::new(),
            default_weight: 1,
        }
    }

    /// Set the `weight` builtin for one flow.
    pub fn with_weight(mut self, flow: FlowId, weight: u64) -> Self {
        assert!(weight > 0, "weight must be positive");
        self.weights.insert(flow, weight);
        self
    }

    /// Set the `weight` builtin for unlisted flows.
    pub fn with_default_weight(mut self, weight: u64) -> Self {
        assert!(weight > 0, "weight must be positive");
        self.default_weight = weight;
        self
    }

    /// Access the interpreter (state inspection in tests).
    pub fn interp(&self) -> &Interp {
        &self.interp
    }

    fn view(&self, ctx: &EnqCtx<'_>) -> PacketView {
        let w = self
            .weights
            .get(&ctx.flow)
            .copied()
            .unwrap_or(self.default_weight);
        PacketView::from_packet(ctx.packet, ctx.now, ctx.flow, w)
    }
}

impl SchedulingTransaction for DominoScheduling {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        let mut view = self.view(ctx);
        self.interp
            .run(&mut view)
            .unwrap_or_else(|e| panic!("domino program '{}' failed: {e}", self.label));
        let r = view
            .get("rank")
            .unwrap_or_else(|| panic!("domino program '{}' never set p.rank", self.label));
        Rank(r.max(0) as u64)
    }

    fn on_dequeue(&mut self, rank: Rank, _ctx: &DeqCtx) {
        let r = i64::try_from(rank.value()).unwrap_or(i64::MAX);
        self.interp
            .run_dequeue(r)
            .unwrap_or_else(|e| panic!("domino @dequeue of '{}' failed: {e}", self.label));
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A shaping transaction backed by a domino-lite program.
///
/// The program must assign `p.send_time` (or `p.rank`, which Fig 4c sets
/// to the send time). Values before `now` are legal (release immediately).
pub struct DominoShaping {
    interp: Interp,
    label: String,
}

impl DominoShaping {
    /// Wrap `interp` under a display `label`.
    pub fn new(label: &str, interp: Interp) -> Self {
        DominoShaping {
            interp,
            label: label.to_string(),
        }
    }

    /// Access the interpreter.
    pub fn interp(&self) -> &Interp {
        &self.interp
    }
}

impl ShapingTransaction for DominoShaping {
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
        let mut view = PacketView::from_packet(ctx.packet, ctx.now, ctx.flow, 1);
        self.interp
            .run(&mut view)
            .unwrap_or_else(|e| panic!("domino program '{}' failed: {e}", self.label));
        let t = view
            .get("send_time")
            .or_else(|| view.get("rank"))
            .unwrap_or_else(|| panic!("domino program '{}' never set p.send_time", self.label));
        Nanos(t.max(0) as u64)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: p.flow,
        }
    }

    #[test]
    fn stfq_adapter_matches_figure_semantics() {
        let mut tx = DominoScheduling::new("stfq", figures::stfq()).with_weight(FlowId(1), 2);
        let p = Packet::new(0, FlowId(1), 1000, Nanos(0));
        assert_eq!(tx.rank(&ctx(&p, 0)), Rank(0));
        // weight 2: finish advances by (1000*256)/2.
        assert_eq!(tx.rank(&ctx(&p, 1)), Rank(128_000));
    }

    #[test]
    fn stfq_adapter_dequeue_advances_virtual_time() {
        let mut tx = DominoScheduling::new("stfq", figures::stfq());
        let p = Packet::new(0, FlowId(1), 1000, Nanos(0));
        let _ = tx.rank(&ctx(&p, 0));
        tx.on_dequeue(
            Rank(9_999),
            &DeqCtx {
                now: Nanos(5),
                flow: FlowId(1),
            },
        );
        assert_eq!(tx.interp().state_value("virtual_time"), Some(9_999));
    }

    #[test]
    fn shaping_adapter_reads_send_time() {
        let mut tx = DominoShaping::new("tbf", figures::tbf(10_000_000, 1_500));
        let p = Packet::new(0, FlowId(0), 1_500, Nanos(0));
        assert_eq!(tx.send_time(&ctx(&p, 0)), Nanos(0));
        assert_eq!(tx.send_time(&ctx(&p, 0)), Nanos(1_200_000));
    }

    #[test]
    fn negative_rank_clamps_to_zero() {
        let mut tx = DominoScheduling::new("lstf", figures::lstf());
        let p = Packet::new(0, FlowId(0), 100, Nanos(0)).with_slack(-500);
        assert_eq!(tx.rank(&ctx(&p, 0)), Rank(0));
    }

    #[test]
    #[should_panic(expected = "never set p.rank")]
    fn missing_rank_panics() {
        let prog = crate::parser::parse("p.unused = 1;").unwrap();
        let mut tx = DominoScheduling::new("bad", Interp::new(prog));
        let p = Packet::new(0, FlowId(0), 100, Nanos(0));
        let _ = tx.rank(&ctx(&p, 0));
    }
}
