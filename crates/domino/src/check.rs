//! The stage checker: static resolution + §4.3 single-stage atomicity.
//!
//! This is the third front-end stage (lex → parse → **check**), run by
//! [`crate::parser::parse`] before a program ever reaches the
//! interpreter or [`crate::pipeline::analyze`]. It rejects, with spanned
//! caret diagnostics:
//!
//! * **Unresolved identifiers** — a scalar read that names no state,
//!   param, or builtin; `rank` outside `@dequeue`; declarations that
//!   shadow builtins or each other.
//! * **Type confusion** — a state map read as a scalar (`m` instead of
//!   `m[flow]`), a scalar indexed as a map, assignment to a parameter,
//!   assignment to an undeclared scalar.
//! * **Use-before-def packet fields** — reading `p.x` when `x` is
//!   neither one of the [`INPUT_FIELDS`] the simulator populates
//!   ([`crate::interp::PacketView::from_packet`]) nor definitely
//!   assigned on *every* path before the read. The `@dequeue` body
//!   starts with **no** fields defined, mirroring
//!   [`crate::interp::PacketView::synthetic`].
//! * **Multi-stage-atomic state** (§4.3) — more than two state variables
//!   that must update atomically together, which no single-stage atom
//!   template can execute; the same clustering the pipeline analysis
//!   uses ([`crate::pipeline`]), surfaced here with a span on the
//!   offending declaration.
//!
//! A program that passes `check` is guaranteed to interpret without
//! `UndefVar`/`UndefField`/`BadAssign` runtime errors and to survive
//! `analyze`'s cluster-size rejection.

use crate::ast::{Expr, ExprKind, LValue, LValueKind, Program, Stmt, StmtKind};
use crate::diag::{Diagnostic, ParseError, Span};
use crate::pipeline::state_clusters;
use core::fmt;
use std::collections::BTreeSet;

/// Packet fields populated by the simulator before the transaction runs
/// ([`crate::interp::PacketView::from_packet`]); every other field must
/// be assigned before it is read.
pub const INPUT_FIELDS: [&str; 11] = [
    "length",
    "arrival",
    "class",
    "slack",
    "deadline",
    "flow_size",
    "remaining",
    "attained",
    "seq",
    "length_nb",
    "prev_wait_time",
];

/// Builtin value names that cannot be declared as state/map/param.
const BUILTINS: [&str; 4] = ["now", "flow", "weight", "rank"];

/// Keywords and structural names that cannot be declared either.
const RESERVED: [&str; 10] = [
    "state", "statemap", "param", "if", "else", "in", "min", "max", "p", "pkt",
];

/// A stage-checking error: the same spanned [`Diagnostic`] currency as
/// [`ParseError`], with a `check error` one-liner `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The underlying spanned diagnostic.
    pub diagnostic: Diagnostic,
}

impl CheckError {
    fn new(src: &str, span: Span, message: impl Into<String>) -> CheckError {
        CheckError {
            diagnostic: Diagnostic::new(src, span, message),
        }
    }

    /// What went wrong.
    pub fn message(&self) -> &str {
        &self.diagnostic.message
    }

    /// Byte span of the offending region.
    pub fn span(&self) -> Span {
        self.diagnostic.span
    }

    /// 1-based line.
    pub fn line(&self) -> usize {
        self.diagnostic.line
    }

    /// 1-based column.
    pub fn col(&self) -> usize {
        self.diagnostic.col
    }

    /// The caret-underlined snippet.
    pub fn render(&self) -> String {
        self.diagnostic.render()
    }

    /// Convert into the [`ParseError`] the staged `parse` entry point
    /// returns, preserving the diagnostic unchanged.
    pub fn into_parse_error(self) -> ParseError {
        ParseError {
            diagnostic: self.diagnostic,
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "check error at {}:{}: {}",
            self.diagnostic.line, self.diagnostic.col, self.diagnostic.message
        )
    }
}

impl std::error::Error for CheckError {}

struct Checker<'a> {
    src: &'a str,
    prog: &'a Program,
    /// Are we inside the `@dequeue` body (where `rank` is live and no
    /// input fields exist)?
    in_dequeue: bool,
}

impl<'a> Checker<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> CheckError {
        CheckError::new(self.src, span, msg)
    }

    fn is_scalar_state(&self, name: &str) -> bool {
        self.prog.states.iter().any(|s| s.name == name)
    }

    fn is_map(&self, name: &str) -> bool {
        self.prog.maps.iter().any(|m| m.name == name)
    }

    fn check_decls(&self) -> Result<(), CheckError> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let decls = self
            .prog
            .states
            .iter()
            .map(|s| (s.name.as_str(), s.span, "state"))
            .chain(
                self.prog
                    .maps
                    .iter()
                    .map(|m| (m.name.as_str(), m.span, "statemap")),
            )
            .chain(
                self.prog
                    .params
                    .iter()
                    .map(|p| (p.name.as_str(), p.span, "param")),
            );
        for (name, span, _what) in decls {
            if BUILTINS.contains(&name) || RESERVED.contains(&name) {
                return Err(self.err(
                    span,
                    format!("'{name}' is a builtin name and cannot be declared"),
                ));
            }
            if !seen.insert(name) {
                return Err(self.err(span, format!("duplicate declaration of '{name}'")));
            }
        }
        Ok(())
    }

    /// Check an expression; `defined` is the set of packet fields known
    /// to be assigned on every path reaching this point.
    fn check_expr(&self, e: &Expr, defined: &BTreeSet<String>) -> Result<(), CheckError> {
        match &e.kind {
            ExprKind::Num(_) => Ok(()),
            ExprKind::Var(name) => {
                if self.is_scalar_state(name) || self.prog.is_param(name) {
                    return Ok(());
                }
                if self.is_map(name) {
                    return Err(self.err(
                        e.span,
                        format!("'{name}' is a state map; read it as '{name}[flow]'"),
                    ));
                }
                match name.as_str() {
                    "now" | "flow" | "weight" => Ok(()),
                    "rank" if self.in_dequeue => Ok(()),
                    "rank" => {
                        Err(self.err(e.span, "'rank' is only available inside the @dequeue body"))
                    }
                    _ => Err(self.err(e.span, format!("undefined variable '{name}'"))),
                }
            }
            ExprKind::Field(f) => {
                if defined.contains(f) {
                    return Ok(());
                }
                if !self.in_dequeue && INPUT_FIELDS.contains(&f.as_str()) {
                    return Ok(());
                }
                if self.in_dequeue {
                    Err(self.err(
                        e.span,
                        format!(
                            "read of packet field 'p.{f}' in @dequeue before any assignment \
                             (the departing packet's fields are not visible there)"
                        ),
                    ))
                } else {
                    Err(self.err(
                        e.span,
                        format!(
                            "read of packet field 'p.{f}' before any assignment \
                             ('{f}' is not an input field)"
                        ),
                    ))
                }
            }
            ExprKind::MapGet(m) | ExprKind::MapContains(m) => {
                if self.is_map(m) {
                    return Ok(());
                }
                if self.is_scalar_state(m) || self.prog.is_param(m) {
                    return Err(self.err(
                        e.span,
                        format!("'{m}' is a scalar, not a state map; drop the '[flow]'"),
                    ));
                }
                Err(self.err(
                    e.span,
                    format!("undefined state map '{m}'; declare it with 'statemap {m};'"),
                ))
            }
            ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Bin(_, a, b) => {
                self.check_expr(a, defined)?;
                self.check_expr(b, defined)
            }
            ExprKind::Not(a) => self.check_expr(a, defined),
        }
    }

    fn check_lvalue(&self, lv: &LValue) -> Result<(), CheckError> {
        match &lv.kind {
            LValueKind::Var(name) => {
                if self.is_scalar_state(name) {
                    return Ok(());
                }
                if self.prog.is_param(name) {
                    return Err(self.err(
                        lv.span,
                        format!("cannot assign to parameter '{name}' (params are constants)"),
                    ));
                }
                if self.is_map(name) {
                    return Err(self.err(
                        lv.span,
                        format!("assignments to state map '{name}' must go through '{name}[flow]'"),
                    ));
                }
                Err(self.err(
                    lv.span,
                    format!(
                        "cannot assign to undeclared variable '{name}'; \
                         declare it with 'state {name} = 0;' or write a packet field 'p.{name}'"
                    ),
                ))
            }
            LValueKind::MapPut(m) => {
                if self.is_map(m) {
                    return Ok(());
                }
                if self.is_scalar_state(m) || self.prog.is_param(m) {
                    return Err(self.err(
                        lv.span,
                        format!("'{m}' is a scalar, not a state map; drop the '[flow]'"),
                    ));
                }
                Err(self.err(
                    lv.span,
                    format!("undefined state map '{m}'; declare it with 'statemap {m};'"),
                ))
            }
            LValueKind::Field(_) => Ok(()),
        }
    }

    /// Definite-assignment walk: returns with `defined` grown by the
    /// fields every path through `stmts` assigns.
    fn check_block(
        &self,
        stmts: &[Stmt],
        defined: &mut BTreeSet<String>,
    ) -> Result<(), CheckError> {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign(lv, e) => {
                    self.check_expr(e, defined)?;
                    self.check_lvalue(lv)?;
                    if let LValueKind::Field(f) = &lv.kind {
                        defined.insert(f.clone());
                    }
                }
                StmtKind::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    self.check_expr(cond, defined)?;
                    let mut then_defs = defined.clone();
                    self.check_block(then, &mut then_defs)?;
                    let mut else_defs = defined.clone();
                    self.check_block(otherwise, &mut else_defs)?;
                    // A field is definitely assigned after the `if` only
                    // when *both* branches assign it.
                    defined.extend(
                        then_defs
                            .intersection(&else_defs)
                            .cloned()
                            .collect::<Vec<_>>(),
                    );
                }
            }
        }
        Ok(())
    }

    /// The §4.3 single-stage atomicity rule, on the same clustering the
    /// pipeline analysis uses: >2 coupled state variables fit no atom
    /// template. Anchored at the declaration of the first offending
    /// variable.
    fn check_atomicity(&self) -> Result<(), CheckError> {
        for cluster in state_clusters(self.prog).clusters {
            if cluster.len() > 2 {
                let first = cluster.iter().next().expect("non-empty cluster");
                let span = self
                    .prog
                    .states
                    .iter()
                    .find(|s| s.name == *first)
                    .map(|s| s.span)
                    .or_else(|| {
                        self.prog
                            .maps
                            .iter()
                            .find(|m| m.name == *first)
                            .map(|m| m.span)
                    })
                    .unwrap_or(Span::DUMMY);
                let vars: Vec<String> = cluster.iter().cloned().collect();
                return Err(self.err(
                    span,
                    format!(
                        "state variables {{{}}} must update atomically together; \
                         no single-stage atom template holds {} coupled variables (§4.3)",
                        vars.join(", "),
                        vars.len()
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Stage-check `prog` (parsed from `src`; `src` is only used to render
/// diagnostics). See the module docs for the rules enforced.
pub fn check(src: &str, prog: &Program) -> Result<(), CheckError> {
    let mut ck = Checker {
        src,
        prog,
        in_dequeue: false,
    };
    ck.check_decls()?;
    let mut defined = BTreeSet::new();
    ck.check_block(&prog.body, &mut defined)?;
    ck.in_dequeue = true;
    let mut deq_defined = BTreeSet::new();
    ck.check_block(&prog.dequeue_body, &mut deq_defined)?;
    ck.in_dequeue = false;
    ck.check_atomicity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_unchecked};

    fn check_src(src: &str) -> Result<(), CheckError> {
        let prog = parse_unchecked(src).unwrap();
        check(src, &prog)
    }

    fn err(src: &str) -> CheckError {
        check_src(src).unwrap_err()
    }

    #[test]
    fn accepts_well_formed_programs() {
        check_src("state vt = 0;\np.rank = vt + p.length;").unwrap();
        check_src("statemap m;\nif (flow in m) { p.rank = m[flow]; } else { p.rank = 0; }")
            .unwrap();
        check_src("param r = 5;\np.rank = r * now + weight;").unwrap();
        check_src("state vt = 0;\np.rank = vt;\n@dequeue { vt = max(vt, rank); }").unwrap();
    }

    #[test]
    fn undefined_variable_is_spanned() {
        let src = "p.rank = nope;";
        let e = err(src);
        assert!(e.message().contains("undefined variable 'nope'"), "{e}");
        assert_eq!(&src[e.span().lo..e.span().hi], "nope");
        assert!(e.render().contains("^^^^"), "{}", e.render());
    }

    #[test]
    fn map_read_as_scalar_is_type_confusion() {
        let e = err("statemap m;\np.rank = m;");
        assert!(e.message().contains("read it as 'm[flow]'"), "{e}");
    }

    #[test]
    fn scalar_indexed_as_map_is_type_confusion() {
        let e = err("state s = 0;\np.rank = s[flow];");
        assert!(e.message().contains("drop the '[flow]'"), "{e}");
        let e = err("state s = 0;\ns[flow] = 1;");
        assert!(e.message().contains("drop the '[flow]'"), "{e}");
    }

    #[test]
    fn undeclared_map_is_rejected() {
        let e = err("p.rank = ghost[flow];");
        assert!(e.message().contains("statemap ghost;"), "{e}");
        let e = err("ghost[flow] = 1;");
        assert!(e.message().contains("statemap ghost;"), "{e}");
        let e = err("if (flow in ghost) { p.rank = 1; } else { p.rank = 0; }");
        assert!(e.message().contains("undefined state map"), "{e}");
    }

    #[test]
    fn use_before_def_field_is_rejected() {
        let src = "p.rank = p.start;";
        let e = err(src);
        assert!(e.message().contains("before any assignment"), "{e}");
        assert_eq!(&src[e.span().lo..e.span().hi], "p.start");
        // Assigned first: fine.
        check_src("p.start = 1;\np.rank = p.start;").unwrap();
    }

    #[test]
    fn input_fields_are_predefined() {
        for f in INPUT_FIELDS {
            check_src(&format!("p.rank = p.{f};")).unwrap();
        }
    }

    #[test]
    fn branch_assignment_must_cover_both_arms() {
        // Only the then-branch assigns p.start: not definite.
        let e = err("if (p.length > 0) { p.start = 1; } else { p.rank = 0; }\np.rank = p.start;");
        assert!(e.message().contains("p.start"), "{e}");
        // Both branches assign: definite.
        check_src("if (p.length > 0) { p.start = 1; } else { p.start = 2; }\np.rank = p.start;")
            .unwrap();
        // Reads inside a branch see earlier same-branch assignments.
        check_src("if (p.length > 0) { p.start = 1; p.rank = p.start; } else { p.rank = 0; }")
            .unwrap();
    }

    #[test]
    fn rank_only_in_dequeue() {
        let e = err("p.rank = rank;");
        assert!(e.message().contains("@dequeue"), "{e}");
        check_src("state vt = 0;\np.rank = vt;\n@dequeue { vt = rank; }").unwrap();
    }

    #[test]
    fn dequeue_has_no_input_fields() {
        let e = err("state vt = 0;\np.rank = vt;\n@dequeue { vt = p.length; }");
        assert!(e.message().contains("@dequeue"), "{e}");
        // But fields assigned inside @dequeue are readable there.
        check_src("state vt = 0;\np.rank = vt;\n@dequeue { p.t = rank; vt = p.t; }").unwrap();
    }

    #[test]
    fn assign_to_param_or_undeclared_rejected() {
        let e = err("param r = 5;\nr = 6;");
        assert!(e.message().contains("parameter 'r'"), "{e}");
        let e = err("x = 6;");
        assert!(e.message().contains("state x = 0;"), "{e}");
        let e = err("statemap m;\nm = 6;");
        assert!(e.message().contains("m[flow]"), "{e}");
    }

    #[test]
    fn duplicate_and_builtin_decls_rejected() {
        let e = err("state x = 0;\nparam x = 1;\np.rank = x;");
        assert!(e.message().contains("duplicate declaration"), "{e}");
        let e = err("state now = 0;\np.rank = now;");
        assert!(e.message().contains("builtin"), "{e}");
        let e = err("statemap min;\np.rank = 0;");
        assert!(e.message().contains("builtin"), "{e}");
    }

    #[test]
    fn three_way_coupling_rejected_statically() {
        let src = "state a = 0;\nstate b = 0;\nstate c = 0;\na = b + 1;\nb = c + 1;\nc = a + 1;\np.rank = a;";
        let e = err(src);
        assert!(e.message().contains("§4.3"), "{e}");
        assert!(e.message().contains("{a, b, c}"), "{e}");
        // Anchored at a declaration, with a caret snippet.
        assert_eq!(&src[e.span().lo..e.span().hi], "a");
        assert_eq!(e.line(), 1);
        assert!(e.render().contains("state a = 0;"), "{}", e.render());
    }

    #[test]
    fn parse_runs_the_checker() {
        // The staged entry point surfaces check errors as ParseError with
        // the identical diagnostic.
        let src = "p.rank = nope;";
        let pe = parse(src).unwrap_err();
        let ce = err(src);
        assert_eq!(pe.diagnostic, ce.diagnostic);
        assert_eq!(pe.span(), ce.span());
    }

    #[test]
    fn checked_programs_interp_cleanly() {
        // The guarantee the module docs promise: check-accepted programs
        // never hit UndefVar/UndefField/BadAssign at runtime.
        use crate::interp::{Interp, PacketView};
        let src = "statemap m;\nstate vt = 0;\nif (flow in m) { p.start = m[flow]; } \
                   else { p.start = vt; }\np.rank = max(p.start, vt);\n\
                   @dequeue { vt = max(vt, rank); }";
        let prog = parse(src).unwrap();
        let mut i = Interp::new(prog);
        let mut pkt = PacketView::synthetic(1, 10);
        i.run(&mut pkt).unwrap();
        i.run_dequeue(pkt.get("rank").unwrap()).unwrap();
    }
}
