//! Deterministic integer interpreter for domino-lite programs.
//!
//! Execution is the *serial* semantics packet transactions guarantee
//! (§2.1/§4.1): one packet at a time, state updates visible to the next
//! packet. All arithmetic is checked `i64`; overflow and division by zero
//! are runtime errors, never silent wraps — a hardware rank computation
//! has fixed-width behaviour, and we would rather fail loudly in tests
//! than mis-sort quietly.

use crate::ast::{BinOp, Expr, ExprKind, LValueKind, Program, Stmt, StmtKind};
use core::fmt;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// Runtime failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Division or modulo by zero.
    DivByZero,
    /// Checked arithmetic overflowed.
    Overflow(String),
    /// Read of an undeclared variable.
    UndefVar(String),
    /// Read of a packet field never set.
    UndefField(String),
    /// Assignment to something that is not assignable (e.g. a param).
    BadAssign(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivByZero => write!(f, "division by zero"),
            RuntimeError::Overflow(e) => write!(f, "arithmetic overflow in {e}"),
            RuntimeError::UndefVar(v) => write!(f, "undefined variable '{v}'"),
            RuntimeError::UndefField(v) => write!(f, "undefined packet field 'p.{v}'"),
            RuntimeError::BadAssign(v) => write!(f, "cannot assign to '{v}'"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The packet as the transaction sees it: named integer fields plus the
/// execution builtins (`now`, `flow`, `weight`).
#[derive(Debug, Clone)]
pub struct PacketView {
    fields: HashMap<String, i64>,
    /// The flow id at this node (`flow` builtin).
    pub flow: i64,
    /// Wall-clock time (`now` builtin), nanoseconds.
    pub now: i64,
    /// The flow's configured weight (`weight` builtin).
    pub weight: i64,
}

impl PacketView {
    /// Build from a `pifo-core` packet. Standard fields are populated;
    /// `prev_wait_time` defaults to 0 (the simulator overrides it when
    /// modelling LSTF's in-band tags).
    pub fn from_packet(p: &Packet, now: Nanos, flow: FlowId, weight: u64) -> Self {
        let mut fields = HashMap::new();
        fields.insert("length".into(), p.length as i64);
        fields.insert("arrival".into(), p.arrival.as_nanos() as i64);
        fields.insert("class".into(), p.class as i64);
        fields.insert("slack".into(), p.slack);
        fields.insert("deadline".into(), p.deadline.as_nanos() as i64);
        fields.insert("flow_size".into(), p.flow_size as i64);
        fields.insert("remaining".into(), p.remaining as i64);
        fields.insert("attained".into(), p.attained as i64);
        fields.insert("seq".into(), p.seq_in_flow as i64);
        // Length in nanobits (1e-9 bit): the natural unit for token
        // buckets at integer precision (see pifo-algos::tbf).
        if let Some(nb) = (p.length as i64).checked_mul(8_000_000_000) {
            fields.insert("length_nb".into(), nb);
        }
        fields.insert("prev_wait_time".into(), 0);
        PacketView {
            fields,
            flow: flow.0 as i64,
            now: now.as_nanos() as i64,
            weight: weight as i64,
        }
    }

    /// An empty view for tests.
    pub fn synthetic(flow: i64, now: i64) -> Self {
        PacketView {
            fields: HashMap::new(),
            flow,
            now,
            weight: 1,
        }
    }

    /// Set (or override) a field.
    pub fn set(&mut self, name: &str, v: i64) {
        self.fields.insert(name.to_string(), v);
    }

    /// Read a field.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.fields.get(name).copied()
    }
}

/// Interpreter state for one transaction instance.
#[derive(Debug, Clone)]
pub struct Interp {
    program: Program,
    state: HashMap<String, i64>,
    maps: HashMap<String, HashMap<i64, i64>>,
    params: HashMap<String, i64>,
}

impl Interp {
    /// Instantiate with declared initial values.
    pub fn new(program: Program) -> Self {
        let state = program
            .states
            .iter()
            .map(|s| (s.name.clone(), s.init))
            .collect();
        let maps = program
            .maps
            .iter()
            .map(|m| (m.name.clone(), HashMap::new()))
            .collect();
        let params = program
            .params
            .iter()
            .map(|p| (p.name.clone(), p.init))
            .collect();
        Interp {
            program,
            state,
            maps,
            params,
        }
    }

    /// Override a parameter (e.g. instantiate a TBF at a specific rate).
    ///
    /// # Panics
    ///
    /// Panics if the program declares no such parameter.
    pub fn set_param(&mut self, name: &str, v: i64) {
        assert!(
            self.params.contains_key(name),
            "program declares no param '{name}'"
        );
        self.params.insert(name.to_string(), v);
    }

    /// Override a state variable's current value (used to seed state that
    /// depends on params, e.g. a token bucket starting full).
    ///
    /// # Panics
    ///
    /// Panics if the program declares no such state variable.
    pub fn set_state(&mut self, name: &str, v: i64) {
        assert!(
            self.state.contains_key(name),
            "program declares no state '{name}'"
        );
        self.state.insert(name.to_string(), v);
    }

    /// Current value of a state scalar.
    pub fn state_value(&self, name: &str) -> Option<i64> {
        self.state.get(name).copied()
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Execute the per-packet body, mutating `pkt` and the state.
    pub fn run(&mut self, pkt: &mut PacketView) -> Result<(), RuntimeError> {
        let body = self.program.body.clone();
        self.exec_block(&body, pkt, None)
    }

    /// Execute the `@dequeue` hook (if any) with the departing element's
    /// rank available as `rank`.
    pub fn run_dequeue(&mut self, rank: i64) -> Result<(), RuntimeError> {
        if self.program.dequeue_body.is_empty() {
            return Ok(());
        }
        let body = self.program.dequeue_body.clone();
        let mut dummy = PacketView::synthetic(0, 0);
        self.exec_block(&body, &mut dummy, Some(rank))
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        pkt: &mut PacketView,
        rank: Option<i64>,
    ) -> Result<(), RuntimeError> {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign(lv, e) => {
                    let v = self.eval(e, pkt, rank)?;
                    match &lv.kind {
                        LValueKind::Var(name) => {
                            if !self.state.contains_key(name.as_str()) {
                                return Err(RuntimeError::BadAssign(name.clone()));
                            }
                            self.state.insert(name.clone(), v);
                        }
                        LValueKind::Field(name) => {
                            pkt.set(name, v);
                        }
                        LValueKind::MapPut(name) => {
                            let m = self
                                .maps
                                .get_mut(name.as_str())
                                .ok_or_else(|| RuntimeError::BadAssign(name.clone()))?;
                            m.insert(pkt.flow, v);
                        }
                    }
                }
                StmtKind::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    if self.eval(cond, pkt, rank)? != 0 {
                        self.exec_block(then, pkt, rank)?;
                    } else {
                        self.exec_block(otherwise, pkt, rank)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, pkt: &PacketView, rank: Option<i64>) -> Result<i64, RuntimeError> {
        match &e.kind {
            ExprKind::Num(v) => Ok(*v),
            ExprKind::Var(name) => {
                if let Some(v) = self.state.get(name.as_str()) {
                    return Ok(*v);
                }
                if let Some(v) = self.params.get(name.as_str()) {
                    return Ok(*v);
                }
                match name.as_str() {
                    "now" => Ok(pkt.now),
                    "flow" => Ok(pkt.flow),
                    "weight" => Ok(pkt.weight),
                    "rank" => rank.ok_or_else(|| RuntimeError::UndefVar(name.clone())),
                    _ => Err(RuntimeError::UndefVar(name.clone())),
                }
            }
            ExprKind::Field(name) => pkt
                .get(name)
                .ok_or_else(|| RuntimeError::UndefField(name.clone())),
            ExprKind::MapGet(name) => {
                let m = self
                    .maps
                    .get(name.as_str())
                    .ok_or_else(|| RuntimeError::UndefVar(name.clone()))?;
                Ok(m.get(&pkt.flow).copied().unwrap_or(0))
            }
            ExprKind::MapContains(name) => {
                let m = self
                    .maps
                    .get(name.as_str())
                    .ok_or_else(|| RuntimeError::UndefVar(name.clone()))?;
                Ok(m.contains_key(&pkt.flow) as i64)
            }
            ExprKind::Min(a, b) => Ok(self.eval(a, pkt, rank)?.min(self.eval(b, pkt, rank)?)),
            ExprKind::Max(a, b) => Ok(self.eval(a, pkt, rank)?.max(self.eval(b, pkt, rank)?)),
            ExprKind::Not(a) => Ok((self.eval(a, pkt, rank)? == 0) as i64),
            ExprKind::Bin(op, a, b) => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let l = self.eval(a, pkt, rank)?;
                    if l == 0 {
                        return Ok(0);
                    }
                    return Ok((self.eval(b, pkt, rank)? != 0) as i64);
                }
                if *op == BinOp::Or {
                    let l = self.eval(a, pkt, rank)?;
                    if l != 0 {
                        return Ok(1);
                    }
                    return Ok((self.eval(b, pkt, rank)? != 0) as i64);
                }
                let l = self.eval(a, pkt, rank)?;
                let r = self.eval(b, pkt, rank)?;
                let overflow = || RuntimeError::Overflow(format!("{l} {op} {r}"));
                match op {
                    BinOp::Add => l.checked_add(r).ok_or_else(overflow),
                    BinOp::Sub => l.checked_sub(r).ok_or_else(overflow),
                    BinOp::Mul => l.checked_mul(r).ok_or_else(overflow),
                    BinOp::Div => {
                        if r == 0 {
                            Err(RuntimeError::DivByZero)
                        } else {
                            l.checked_div(r).ok_or_else(overflow)
                        }
                    }
                    BinOp::Mod => {
                        if r == 0 {
                            Err(RuntimeError::DivByZero)
                        } else {
                            l.checked_rem(r).ok_or_else(overflow)
                        }
                    }
                    BinOp::Lt => Ok((l < r) as i64),
                    BinOp::Le => Ok((l <= r) as i64),
                    BinOp::Gt => Ok((l > r) as i64),
                    BinOp::Ge => Ok((l >= r) as i64),
                    BinOp::Eq => Ok((l == r) as i64),
                    BinOp::Ne => Ok((l != r) as i64),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_unchecked};

    fn run_once(src: &str, pkt: &mut PacketView) -> Interp {
        let mut i = Interp::new(parse(src).unwrap());
        i.run(pkt).unwrap();
        i
    }

    #[test]
    fn assign_and_arithmetic() {
        let mut pkt = PacketView::synthetic(1, 100);
        pkt.set("length", 1000);
        run_once("p.rank = p.length * 2 + now;", &mut pkt);
        assert_eq!(pkt.get("rank"), Some(2100));
    }

    #[test]
    fn state_persists_across_packets() {
        let mut i =
            Interp::new(parse("state count = 0;\ncount = count + 1;\np.rank = count;").unwrap());
        let mut pkt = PacketView::synthetic(0, 0);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(1));
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(2));
        assert_eq!(i.state_value("count"), Some(2));
    }

    #[test]
    fn map_keyed_by_flow() {
        let src = "statemap seen;\nseen[flow] = seen[flow] + 1;\np.rank = seen[flow];";
        let mut i = Interp::new(parse(src).unwrap());
        let mut p1 = PacketView::synthetic(1, 0);
        let mut p2 = PacketView::synthetic(2, 0);
        i.run(&mut p1).unwrap();
        i.run(&mut p1).unwrap();
        i.run(&mut p2).unwrap();
        assert_eq!(p1.get("rank"), Some(2));
        assert_eq!(p2.get("rank"), Some(1));
    }

    #[test]
    fn membership_distinguishes_unset_from_zero() {
        let src = "statemap m;\nif (flow in m) { p.rank = 1; } else { p.rank = 0; }\nm[flow] = 0;";
        let mut i = Interp::new(parse(src).unwrap());
        let mut pkt = PacketView::synthetic(7, 0);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(0), "first visit: not in map");
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(1), "second visit: present (value 0)");
    }

    #[test]
    fn if_else_branches() {
        let src = "if (p.length > 100) { p.rank = 1; } else { p.rank = 2; }";
        let mut pkt = PacketView::synthetic(0, 0);
        pkt.set("length", 50);
        run_once(src, &mut pkt);
        assert_eq!(pkt.get("rank"), Some(2));
        pkt.set("length", 500);
        run_once(src, &mut pkt);
        assert_eq!(pkt.get("rank"), Some(1));
    }

    #[test]
    fn min_max_and_builtins() {
        let mut pkt = PacketView::synthetic(3, 42);
        pkt.weight = 4;
        run_once("p.rank = min(now, 50) + max(flow, weight);", &mut pkt);
        assert_eq!(pkt.get("rank"), Some(42 + 4));
    }

    #[test]
    fn dequeue_hook_sees_rank() {
        let src = "state vt = 0;\np.rank = vt;\n@dequeue { vt = max(vt, rank); }";
        let mut i = Interp::new(parse(src).unwrap());
        i.run_dequeue(55).unwrap();
        assert_eq!(i.state_value("vt"), Some(55));
        i.run_dequeue(12).unwrap();
        assert_eq!(i.state_value("vt"), Some(55), "max keeps the larger");
    }

    #[test]
    fn div_by_zero_is_error() {
        let mut i = Interp::new(parse("p.rank = 1 / 0;").unwrap());
        let mut pkt = PacketView::synthetic(0, 0);
        assert_eq!(i.run(&mut pkt), Err(RuntimeError::DivByZero));
    }

    #[test]
    fn overflow_is_error() {
        let mut i = Interp::new(parse("p.rank = 9_223_372_036_854_775_807 + 1;").unwrap());
        let mut pkt = PacketView::synthetic(0, 0);
        assert!(matches!(i.run(&mut pkt), Err(RuntimeError::Overflow(_))));
    }

    #[test]
    fn undefined_reads_are_errors() {
        // parse_unchecked: the stage checker rejects these statically;
        // this pins the interpreter's own dynamic backstop.
        let mut i = Interp::new(parse_unchecked("p.rank = nope;").unwrap());
        assert_eq!(
            i.run(&mut PacketView::synthetic(0, 0)),
            Err(RuntimeError::UndefVar("nope".into()))
        );
        let mut i = Interp::new(parse_unchecked("p.rank = p.nope;").unwrap());
        assert_eq!(
            i.run(&mut PacketView::synthetic(0, 0)),
            Err(RuntimeError::UndefField("nope".into()))
        );
    }

    #[test]
    fn cannot_assign_params_or_undeclared() {
        let mut i = Interp::new(parse_unchecked("param r = 5;\nr = 6;").unwrap());
        assert_eq!(
            i.run(&mut PacketView::synthetic(0, 0)),
            Err(RuntimeError::BadAssign("r".into()))
        );
    }

    #[test]
    fn set_param_overrides() {
        let mut i = Interp::new(parse("param r = 5;\np.rank = r;").unwrap());
        i.set_param("r", 99);
        let mut pkt = PacketView::synthetic(0, 0);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(99));
    }

    #[test]
    fn short_circuit_avoids_division() {
        // `0 && (1/0)` must not evaluate the division.
        let mut pkt = PacketView::synthetic(0, 0);
        run_once(
            "if (0 && (1 / 0) > 0) { p.rank = 1; } else { p.rank = 2; }",
            &mut pkt,
        );
        assert_eq!(pkt.get("rank"), Some(2));
    }

    #[test]
    fn packet_view_from_packet_populates_fields() {
        let p = Packet::new(1, FlowId(3), 1500, Nanos(77))
            .with_slack(-5)
            .with_flow_size(9000);
        let v = PacketView::from_packet(&p, Nanos(100), FlowId(3), 7);
        assert_eq!(v.get("length"), Some(1500));
        assert_eq!(v.get("arrival"), Some(77));
        assert_eq!(v.get("slack"), Some(-5));
        assert_eq!(v.get("flow_size"), Some(9000));
        assert_eq!(v.get("length_nb"), Some(1500 * 8_000_000_000));
        assert_eq!(v.now, 100);
        assert_eq!(v.flow, 3);
        assert_eq!(v.weight, 7);
    }
}
