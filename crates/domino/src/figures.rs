//! The paper's transaction figures as domino-lite programs.
//!
//! Each constant is the (lightly de-sugared) source of one figure; each
//! constructor instantiates an [`Interp`] with concrete parameters. The
//! test suites in `pifo-bench` and `tests/` check these programs against
//! the native Rust transactions in `pifo-algos`, packet for packet.

use crate::interp::Interp;
use crate::parser::parse;

/// Fig 1 — STFQ. Fixed-point `length/weight` uses 8 fractional bits
/// (`* 256`), matching `pifo_algos::Stfq`'s `VT_SHIFT`. The
/// `virtual_time` update runs in the `@dequeue` hook, as §2.1 specifies
/// ("tracks the virtual start time of the last dequeued packet").
pub const STFQ_SRC: &str = r#"
state virtual_time = 0;
statemap last_finish;

if (flow in last_finish) {
    p.start = max(virtual_time, last_finish[flow]);
} else {
    p.start = virtual_time;
}
p.serv = (p.length * 256) / weight;
if (p.serv < 1) { p.serv = 1; }
last_finish[flow] = p.start + p.serv;
p.rank = p.start;

@dequeue {
    virtual_time = max(virtual_time, rank);
}
"#;

/// Fig 4c — Token Bucket Filter. Token units are *nanobits* (1e-9 bit):
/// at `r` bits/second one nanosecond adds exactly `r` tokens, so the
/// refill path needs no division; the wait computation uses ceiling
/// division (the packet cannot leave before its last token).
pub const TBF_SRC: &str = r#"
param r = 10_000_000;
param B = 1_200_000_000_000;
state tokens = 0;
state last_time = 0;

tokens = min(tokens + r * (now - last_time), B);
if (p.length_nb <= tokens) {
    p.send_time = now;
} else {
    p.send_time = now + (p.length_nb - tokens + r - 1) / r;
}
tokens = tokens - p.length_nb;
last_time = now;
p.rank = p.send_time;
"#;

/// Fig 6 — LSTF. `prev_wait_time` is the in-band tag carried from the
/// previous switch (§3.1); stateless.
pub const LSTF_SRC: &str = r#"
p.slack = p.slack - p.prev_wait_time;
p.rank = p.slack;
"#;

/// Fig 7 — Stop-and-Go. Note this is the paper's *literal* single-step
/// frame advance: after an idle gap longer than one frame the state
/// catches up one frame per arriving packet, briefly assigning past
/// departure times. `pifo_algos::StopAndGo` tiles time instead; the
/// difference is observable only after multi-frame idle gaps (see
/// `tests/figure_equivalence.rs`, which pins both the dense-arrival
/// equivalence and the post-idle divergence).
pub const STOP_AND_GO_SRC: &str = r#"
param T = 1000;
state frame_begin = 0;
state frame_end = 0;

if (now >= frame_end) {
    frame_begin = frame_end;
    frame_end = frame_begin + T;
}
p.rank = frame_end;
p.send_time = frame_end;
"#;

/// Fig 8 — minimum rate guarantees. One token bucket (this program
/// instantiates per-flow at the tree level, exactly like Fig 8 which is
/// written for a single flow's opportunity stream).
pub const MIN_RATE_SRC: &str = r#"
param min_rate = 1_000_000;
param BURST = 12_000_000_000_000;
state tb = 0;
state last_time = 0;

tb = tb + min_rate * (now - last_time);
if (tb > BURST) { tb = BURST; }
if (tb > p.length_nb) {
    p.over_min = 0;
    tb = tb - p.length_nb;
} else {
    p.over_min = 1;
}
last_time = now;
p.rank = p.over_min;
"#;

const NANOBITS_PER_BYTE: i64 = 8 * 1_000_000_000;

/// Fig 1 instantiated.
pub fn stfq() -> Interp {
    Interp::new(parse(STFQ_SRC).expect("STFQ_SRC parses"))
}

/// Fig 4c instantiated at `rate_bps` / `burst_bytes`, bucket starting
/// full (matching `pifo_algos::TokenBucketFilter`).
pub fn tbf(rate_bps: i64, burst_bytes: i64) -> Interp {
    let mut i = Interp::new(parse(TBF_SRC).expect("TBF_SRC parses"));
    let burst_nb = burst_bytes * NANOBITS_PER_BYTE;
    i.set_param("r", rate_bps);
    i.set_param("B", burst_nb);
    i.set_state("tokens", burst_nb);
    i
}

/// Fig 6 instantiated.
pub fn lstf() -> Interp {
    Interp::new(parse(LSTF_SRC).expect("LSTF_SRC parses"))
}

/// Fig 7 instantiated with frames of `frame_ns`.
pub fn stop_and_go(frame_ns: i64) -> Interp {
    let mut i = Interp::new(parse(STOP_AND_GO_SRC).expect("STOP_AND_GO_SRC parses"));
    i.set_param("T", frame_ns);
    i.set_state("frame_end", frame_ns);
    i
}

/// Fig 8 instantiated at `rate_bps` / `burst_bytes`, bucket starting full
/// (matching `pifo_algos::MinRateGuarantee`).
pub fn min_rate(rate_bps: i64, burst_bytes: i64) -> Interp {
    let mut i = Interp::new(parse(MIN_RATE_SRC).expect("MIN_RATE_SRC parses"));
    let burst_nb = burst_bytes * NANOBITS_PER_BYTE;
    i.set_param("min_rate", rate_bps);
    i.set_param("BURST", burst_nb);
    i.set_state("tb", burst_nb);
    i
}

/// All figure programs with their names — driven by the `repro domino`
/// experiment (X4).
pub fn all_figures() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Fig 1: STFQ", STFQ_SRC),
        ("Fig 4c: Token Bucket Filter", TBF_SRC),
        ("Fig 6: LSTF", LSTF_SRC),
        ("Fig 7: Stop-and-Go", STOP_AND_GO_SRC),
        ("Fig 8: Min-rate guarantee", MIN_RATE_SRC),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomKind;
    use crate::interp::PacketView;
    use crate::pipeline::{analyze, compile};

    #[test]
    fn all_figures_parse() {
        for (name, src) in all_figures() {
            parse(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }

    #[test]
    fn all_figures_compile_with_pairs() {
        // §4.1's claim: the paper's transactions run at line rate given
        // the Domino atom vocabulary (Pairs being the largest).
        for (name, src) in all_figures() {
            let prog = parse(src).unwrap();
            compile(&prog, AtomKind::Pairs).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
        }
    }

    #[test]
    fn stfq_requires_pairs_exactly() {
        // The Domino result the paper quotes: Fig 1 runs with Pairs…
        let prog = parse(STFQ_SRC).unwrap();
        let report = analyze(&prog).unwrap();
        assert_eq!(report.required_atom, AtomKind::Pairs);
        // …and is rejected by anything weaker.
        assert!(compile(&prog, AtomKind::NestedIf).is_err());
    }

    #[test]
    fn lstf_is_stateless() {
        let prog = parse(LSTF_SRC).unwrap();
        assert_eq!(analyze(&prog).unwrap().required_atom, AtomKind::Stateless);
    }

    #[test]
    fn stfq_first_packets_rank_zero_then_advance() {
        let mut i = stfq();
        let mut pkt = PacketView::synthetic(1, 0);
        pkt.set("length", 1000);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(0));
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(1000 * 256));
    }

    #[test]
    fn tbf_delays_after_burst() {
        let mut i = tbf(10_000_000, 1_500); // 10 Mb/s, one-packet burst
        let mut pkt = PacketView::synthetic(0, 0);
        pkt.set("length_nb", 1_500 * NANOBITS_PER_BYTE);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("send_time"), Some(0));
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("send_time"), Some(1_200_000), "1.2 ms at 10 Mb/s");
    }

    #[test]
    fn stop_and_go_frames() {
        let mut i = stop_and_go(1_000);
        let mut pkt = PacketView::synthetic(0, 10);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(1_000));
        let mut pkt = PacketView::synthetic(0, 1_001);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("rank"), Some(2_000));
    }

    #[test]
    fn min_rate_flags_hog() {
        let mut i = min_rate(8_000_000_000, 1_000); // 1 B/ns, 1 KB burst
        let mut pkt = PacketView::synthetic(0, 0);
        pkt.set("length_nb", 1_000 * NANOBITS_PER_BYTE);
        i.run(&mut pkt).unwrap();
        // Burst exactly equals the packet: `tb > p.size` is false.
        assert_eq!(pkt.get("over_min"), Some(1));
        // After 2000 ns the bucket holds 1 KB (capped): strictly greater
        // than a 999 B packet.
        let mut pkt = PacketView::synthetic(0, 2_000);
        pkt.set("length_nb", 999 * NANOBITS_PER_BYTE);
        i.run(&mut pkt).unwrap();
        assert_eq!(pkt.get("over_min"), Some(0));
    }
}
