//! Spans and caret diagnostics — the error currency of the front-end.
//!
//! Every stage of the compiler (lexer, parser, stage checker) reports
//! failures through the same [`Diagnostic`] type: a message anchored to a
//! byte-offset [`Span`] into the original source, rendered as a
//! caret-underlined snippet. [`ParseError`] is the thin public wrapper
//! the staged [`crate::parser::parse`] entry point returns; the checker's
//! [`crate::check::CheckError`] wraps the same `Diagnostic` and converts
//! into a `ParseError` when surfaced through `parse`.

use core::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
///
/// Spans are *positions*, not semantics: AST equality
/// ([`crate::ast::Expr`] etc.) deliberately ignores them so that
/// `parse(pretty(ast)) == ast` holds for the grammar round-trip property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub lo: usize,
    /// End byte offset (exclusive).
    pub hi: usize,
}

impl Span {
    /// The placeholder span used by hand-built ASTs (tests, generators).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// A span covering `lo..hi`.
    pub fn new(lo: usize, hi: usize) -> Span {
        debug_assert!(lo <= hi, "span lo {lo} > hi {hi}");
        Span { lo, hi }
    }

    /// A zero-width span at `at` (end-of-input positions).
    pub fn point(at: usize) -> Span {
        Span { lo: at, hi: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Width in bytes.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True for zero-width spans.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A compiler message anchored to a source location, able to render a
/// rustc-style caret snippet:
///
/// ```text
/// error: expected ';', found '}'
///  --> 1:12
///   |
/// 1 | p.rank = 1 }
///   |            ^
/// ```
///
/// The source line is captured at construction time, so a `Diagnostic`
/// stays renderable after the source string is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Byte span of the offending region.
    pub span: Span,
    /// 1-based line of `span.lo`.
    pub line: usize,
    /// 1-based column (in characters) of `span.lo`.
    pub col: usize,
    /// The full text of the source line containing `span.lo`.
    source_line: String,
    /// Number of characters to underline (always at least 1).
    underline: usize,
}

impl Diagnostic {
    /// Build a diagnostic for `span` in `src`. The span is clamped to the
    /// source length, so positions from any front-end stage are safe.
    pub fn new(src: &str, span: Span, message: impl Into<String>) -> Diagnostic {
        let lo = span.lo.min(src.len());
        let hi = span.hi.clamp(lo, src.len());
        let line_start = src[..lo].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[lo..].find('\n').map_or(src.len(), |i| lo + i);
        let line = src[..lo].matches('\n').count() + 1;
        let col = src[line_start..lo].chars().count() + 1;
        // Underline the part of the span on its first line, at least one
        // caret (zero-width spans — e.g. end-of-input — still point).
        let underline = src[lo..hi.min(line_end)].chars().count().max(1);
        Diagnostic {
            message: message.into(),
            span: Span::new(lo, hi),
            line,
            col,
            source_line: src[line_start..line_end].to_string(),
            underline,
        }
    }

    /// The caret-underlined snippet (see the type-level example).
    pub fn render(&self) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        // Columns are in characters; rebuild the left margin from the
        // actual line content so tabs keep their width.
        let margin: String = self
            .source_line
            .chars()
            .take(self.col - 1)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        format!(
            "error: {msg}\n\
             {pad}--> {line}:{col}\n\
             {pad} |\n\
             {gutter} | {src}\n\
             {pad} | {margin}{carets}",
            msg = self.message,
            line = self.line,
            col = self.col,
            src = self.source_line,
            carets = "^".repeat(self.underline),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A front-end error (lexing or parsing, and — via [`crate::parser::parse`] —
/// stage-checking) with full position information.
///
/// `Display` keeps the historical terse one-liner
/// (`parse error at LINE:COL: MESSAGE`); call [`ParseError::render`] for
/// the caret snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The underlying spanned diagnostic.
    pub diagnostic: Diagnostic,
}

impl ParseError {
    /// Build from a source span.
    pub fn new(src: &str, span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            diagnostic: Diagnostic::new(src, span, message),
        }
    }

    /// What went wrong.
    pub fn message(&self) -> &str {
        &self.diagnostic.message
    }

    /// Byte span of the offending region.
    pub fn span(&self) -> Span {
        self.diagnostic.span
    }

    /// 1-based line.
    pub fn line(&self) -> usize {
        self.diagnostic.line
    }

    /// 1-based column.
    pub fn col(&self) -> usize {
        self.diagnostic.col
    }

    /// The caret-underlined snippet.
    pub fn render(&self) -> String {
        self.diagnostic.render()
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.diagnostic.line, self.diagnostic.col, self.diagnostic.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_algebra() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(Span::point(7).is_empty());
        assert_eq!(Span::point(7).to_string(), "7..7");
    }

    #[test]
    fn diagnostic_locates_line_and_col() {
        let src = "state x = 0;\np.rank = $;\n";
        let at = src.find('$').unwrap();
        let d = Diagnostic::new(src, Span::new(at, at + 1), "unexpected character '$'");
        assert_eq!((d.line, d.col), (2, 10));
        let r = d.render();
        assert!(r.contains("2 | p.rank = $;"), "{r}");
        assert!(r.lines().last().unwrap().ends_with("         ^"), "{r}");
    }

    #[test]
    fn render_matches_golden_shape() {
        let src = "p.rank = 1 }";
        let d = Diagnostic::new(src, Span::new(11, 12), "expected ';', found '}'");
        let expected = "\
error: expected ';', found '}'
 --> 1:12
  |
1 | p.rank = 1 }
  |            ^";
        assert_eq!(d.render(), expected);
    }

    #[test]
    fn zero_width_span_still_points() {
        let src = "state x";
        let d = Diagnostic::new(src, Span::point(src.len()), "unexpected end of input");
        assert_eq!((d.line, d.col), (1, 8));
        assert!(d.render().ends_with("^"));
    }

    #[test]
    fn multibyte_columns_count_chars() {
        let src = "p.rank = §;";
        let at = src.find('§').unwrap();
        let d = Diagnostic::new(src, Span::new(at, at + '§'.len_utf8()), "bad char");
        assert_eq!(d.col, 10, "column counts characters, not bytes");
        assert_eq!(d.underline, 1, "one caret for one char");
    }

    #[test]
    fn clamps_out_of_range_spans() {
        let d = Diagnostic::new("ab", Span::new(10, 20), "late");
        assert_eq!(d.span, Span::new(2, 2));
        assert_eq!((d.line, d.col), (1, 3));
    }
}
