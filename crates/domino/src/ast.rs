//! Abstract syntax for domino-lite packet transactions.
//!
//! The language is deliberately small — it is the paper's transaction
//! pseudocode (Figs 1, 4c, 6, 7, 8) made executable: integer scalars,
//! per-flow state maps, packet fields, `if/else`, `min`/`max`, and the
//! usual arithmetic/comparison operators. No loops — Domino programs
//! must finish in a bounded pipeline, so the language has no unbounded
//! control flow by construction.
//!
//! Every node carries the byte [`Span`] of the source region it was
//! parsed from, so downstream passes ([`mod@crate::check`],
//! [`crate::pipeline`]) can attach caret diagnostics to the exact
//! offending construct. Equality is **span-insensitive**: two ASTs are
//! `==` when their shapes match, regardless of where they came from.
//! That is what makes the grammar round-trip property
//! `parse(pretty(ast)) == ast` (see `tests/grammar_fuzz.rs`) expressible
//! at all — and the pretty-printer here ([`Program::pretty`], `Display`)
//! is its other half: it emits fully parenthesised canonical source that
//! re-parses to the same tree.

use crate::diag::Span;
use core::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division, traps on zero)
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Expression shapes (see [`Expr`] for the spanned wrapper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// Scalar state variable, parameter, or builtin, e.g. `virtual_time`.
    Var(String),
    /// Packet field, e.g. `p.length`.
    Field(String),
    /// State-map lookup keyed by the packet's flow: `last_finish[flow]`.
    MapGet(String),
    /// Membership test: `flow in last_finish`.
    MapContains(String),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation `!e`.
    Not(Box<Expr>),
}

/// A spanned expression.
///
/// `PartialEq` compares only [`ExprKind`] — spans are positions, not
/// semantics.
#[derive(Debug, Clone, Eq)]
pub struct Expr {
    /// The expression shape.
    pub kind: ExprKind,
    /// Source bytes this expression was parsed from.
    pub span: Span,
}

impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        self.kind == other.kind
    }
}

impl Expr {
    /// Wrap a kind with a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// Wrap a kind with [`Span::DUMMY`] (hand-built ASTs: tests,
    /// generators).
    pub fn dummy(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::DUMMY)
    }
}

/// Assignment-target shapes (see [`LValue`] for the spanned wrapper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValueKind {
    /// Scalar state variable.
    Var(String),
    /// Packet field (scratch fields spring into existence on write).
    Field(String),
    /// State-map entry keyed by the packet's flow.
    MapPut(String),
}

/// A spanned assignment target. `PartialEq` ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct LValue {
    /// The target shape.
    pub kind: LValueKind,
    /// Source bytes of the target.
    pub span: Span,
}

impl PartialEq for LValue {
    fn eq(&self, other: &LValue) -> bool {
        self.kind == other.kind
    }
}

impl LValue {
    /// Wrap a kind with a span.
    pub fn new(kind: LValueKind, span: Span) -> LValue {
        LValue { kind, span }
    }

    /// Wrap a kind with [`Span::DUMMY`].
    pub fn dummy(kind: LValueKind) -> LValue {
        LValue::new(kind, Span::DUMMY)
    }
}

/// Statement shapes (see [`Stmt`] for the spanned wrapper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `lhs = expr;`
    Assign(LValue, Expr),
    /// `if (cond) { then } else { otherwise }`
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Fallback branch (possibly empty).
        otherwise: Vec<Stmt>,
    },
}

/// A spanned statement. `PartialEq` ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct Stmt {
    /// The statement shape.
    pub kind: StmtKind,
    /// Source bytes of the whole statement.
    pub span: Span,
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Stmt) -> bool {
        self.kind == other.kind
    }
}

impl Stmt {
    /// Wrap a kind with a span.
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }

    /// Wrap a kind with [`Span::DUMMY`].
    pub fn dummy(kind: StmtKind) -> Stmt {
        Stmt::new(kind, Span::DUMMY)
    }
}

/// A declared scalar state variable or parameter with its initial value.
/// `PartialEq` ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct StateDecl {
    /// Name.
    pub name: String,
    /// Initial value.
    pub init: i64,
    /// Source bytes of the declaration's name.
    pub span: Span,
}

impl PartialEq for StateDecl {
    fn eq(&self, other: &StateDecl) -> bool {
        self.name == other.name && self.init == other.init
    }
}

/// A declared per-flow state map. `PartialEq` ignores the span.
#[derive(Debug, Clone, Eq)]
pub struct MapDecl {
    /// Name.
    pub name: String,
    /// Source bytes of the declaration's name.
    pub span: Span,
}

impl PartialEq for MapDecl {
    fn eq(&self, other: &MapDecl) -> bool {
        self.name == other.name
    }
}

/// A parsed transaction program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Scalar state declarations (`state x = 0;`).
    pub states: Vec<StateDecl>,
    /// State map declarations (`statemap last_finish;`).
    pub maps: Vec<MapDecl>,
    /// Named constants (`param r = 125;`).
    pub params: Vec<StateDecl>,
    /// The per-packet (enqueue) body.
    pub body: Vec<Stmt>,
    /// Optional `@dequeue { ... }` body, run when the element leaves the
    /// PIFO (STFQ's virtual-time update). Has access to `rank`.
    pub dequeue_body: Vec<Stmt>,
    /// True when the source had an `@dequeue` section, even an empty one
    /// (`@dequeue { }` and no section at all pretty-print differently but
    /// behave identically).
    pub has_dequeue: bool,
}

impl Program {
    /// An empty program (no declarations, no statements).
    pub fn empty() -> Program {
        Program {
            states: vec![],
            maps: vec![],
            params: vec![],
            body: vec![],
            dequeue_body: vec![],
            has_dequeue: false,
        }
    }

    /// Names of all declared scalar state variables.
    pub fn state_names(&self) -> impl Iterator<Item = &str> {
        self.states.iter().map(|s| s.name.as_str())
    }

    /// Names of all declared state maps.
    pub fn map_names(&self) -> impl Iterator<Item = &str> {
        self.maps.iter().map(|m| m.name.as_str())
    }

    /// True if `name` is a declared state scalar or map.
    pub fn is_state(&self, name: &str) -> bool {
        self.states.iter().any(|s| s.name == name) || self.maps.iter().any(|m| m.name == name)
    }

    /// True if `name` is a declared parameter.
    pub fn is_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name)
    }

    /// Canonical source for this program: fully parenthesised, one
    /// statement per line, such that `parse_unchecked(p.pretty())`
    /// yields a `Program` equal (span-insensitively) to `p`. This is the
    /// inverse half of the grammar round-trip property.
    ///
    /// The one non-round-trippable value is `i64::MIN`: it prints as
    /// `-9223372036854775808`, whose magnitude overflows the lexer's
    /// `i64` literal range.
    pub fn pretty(&self) -> String {
        self.to_string()
    }
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], depth: usize) -> fmt::Result {
    if stmts.is_empty() {
        return f.write_str("{ }");
    }
    f.write_str("{\n")?;
    for s in stmts {
        write_stmt(f, s, depth + 1)?;
    }
    write_indent(f, depth)?;
    f.write_str("}")
}

fn write_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, depth: usize) -> fmt::Result {
    write_indent(f, depth)?;
    match &s.kind {
        StmtKind::Assign(lv, e) => writeln!(f, "{lv} = {e};"),
        StmtKind::If {
            cond,
            then,
            otherwise,
        } => {
            write!(f, "if ({cond}) ")?;
            write_block(f, then, depth)?;
            // An `else if` chain parses as `otherwise == [If]`, and a
            // single-statement else block parses the same way — so
            // printing every non-empty else as a block is canonical.
            if !otherwise.is_empty() {
                f.write_str(" else ")?;
                write_block(f, otherwise, depth)?;
            }
            f.write_str("\n")
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LValueKind::Var(v) => f.write_str(v),
            LValueKind::Field(name) => write!(f, "p.{name}"),
            LValueKind::MapPut(m) => write!(f, "{m}[flow]"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Num(v) => write!(f, "{v}"),
            ExprKind::Var(v) => f.write_str(v),
            ExprKind::Field(name) => write!(f, "p.{name}"),
            ExprKind::MapGet(m) => write!(f, "{m}[flow]"),
            ExprKind::MapContains(m) => write!(f, "(flow in {m})"),
            ExprKind::Min(a, b) => write!(f, "min({a}, {b})"),
            ExprKind::Max(a, b) => write!(f, "max({a}, {b})"),
            ExprKind::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            ExprKind::Not(e) => write!(f, "(!{e})"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.states {
            writeln!(f, "state {} = {};", s.name, s.init)?;
        }
        for m in &self.maps {
            writeln!(f, "statemap {};", m.name)?;
        }
        for p in &self.params {
            writeln!(f, "param {} = {};", p.name, p.init)?;
        }
        for s in &self.body {
            write_stmt(f, s, 0)?;
        }
        if self.has_dequeue {
            f.write_str("@dequeue ")?;
            write_block(f, &self.dequeue_body, 0)?;
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// The atom ladder (§4.1): hardware templates ordered by capability, from
/// stateless ALUs up to `Pairs` (the largest atom the Domino paper
/// synthesised, 6000 µm² at 32 nm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomKind {
    /// Pure function of packet fields; no switch state.
    Stateless,
    /// Read-add-write on one state variable: `s = s + e`.
    ReadAddWrite,
    /// Predicated read-add-write: `if (pred) s = s + e`.
    PredRaw,
    /// Two-armed additive update: `if (pred) s += e1 else s += e2`.
    IfElseRaw,
    /// Additive/subtractive with general guarded reset.
    Sub,
    /// Arbitrary nested conditional updates of **one** state variable.
    NestedIf,
    /// Atomic update of **two** mutually dependent state variables.
    Pairs,
}

impl fmt::Display for AtomKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomKind::Stateless => "Stateless",
            AtomKind::ReadAddWrite => "RAW",
            AtomKind::PredRaw => "PRAW",
            AtomKind::IfElseRaw => "IfElseRAW",
            AtomKind::Sub => "Sub",
            AtomKind::NestedIf => "NestedIf",
            AtomKind::Pairs => "Pairs",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_ladder_is_ordered() {
        assert!(AtomKind::Stateless < AtomKind::ReadAddWrite);
        assert!(AtomKind::ReadAddWrite < AtomKind::PredRaw);
        assert!(AtomKind::NestedIf < AtomKind::Pairs);
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::empty();
        p.states.push(StateDecl {
            name: "vt".into(),
            init: 0,
            span: Span::DUMMY,
        });
        p.maps.push(MapDecl {
            name: "last_finish".into(),
            span: Span::DUMMY,
        });
        p.params.push(StateDecl {
            name: "r".into(),
            init: 5,
            span: Span::DUMMY,
        });
        assert!(p.is_state("vt"));
        assert!(p.is_state("last_finish"));
        assert!(!p.is_state("r"));
        assert!(p.is_param("r"));
        assert_eq!(p.state_names().collect::<Vec<_>>(), vec!["vt"]);
        assert_eq!(p.map_names().collect::<Vec<_>>(), vec!["last_finish"]);
    }

    #[test]
    fn display_ops() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(AtomKind::Pairs.to_string(), "Pairs");
    }

    #[test]
    fn equality_ignores_spans() {
        let a = Expr::new(ExprKind::Num(7), Span::new(3, 4));
        let b = Expr::new(ExprKind::Num(7), Span::new(90, 91));
        assert_eq!(a, b);
        let s1 = Stmt::new(
            StmtKind::Assign(LValue::new(LValueKind::Var("x".into()), Span::new(0, 1)), a),
            Span::new(0, 5),
        );
        let s2 = Stmt::dummy(StmtKind::Assign(
            LValue::dummy(LValueKind::Var("x".into())),
            b,
        ));
        assert_eq!(s1, s2);
    }

    #[test]
    fn pretty_prints_canonical_source() {
        let mut p = Program::empty();
        p.states.push(StateDecl {
            name: "tb".into(),
            init: -3,
            span: Span::DUMMY,
        });
        p.body.push(Stmt::dummy(StmtKind::Assign(
            LValue::dummy(LValueKind::Field("rank".into())),
            Expr::dummy(ExprKind::Bin(
                BinOp::Add,
                Box::new(Expr::dummy(ExprKind::Var("tb".into()))),
                Box::new(Expr::dummy(ExprKind::Min(
                    Box::new(Expr::dummy(ExprKind::Num(1))),
                    Box::new(Expr::dummy(ExprKind::MapGet("m".into()))),
                ))),
            )),
        )));
        assert_eq!(
            p.pretty(),
            "state tb = -3;\np.rank = (tb + min(1, m[flow]));\n"
        );
    }
}
