//! Abstract syntax for domino-lite packet transactions.
//!
//! The language is deliberately small — it is the paper's transaction
//! pseudocode (Figs 1, 4c, 6, 7, 8) made executable: integer scalars,
//! per-flow state maps, packet fields, `if/else`, `min`/`max`, and the
//! usual arithmetic/comparison operators. No loops — Domino programs
//! must finish in a bounded pipeline, so the language has no unbounded
//! control flow by construction.

use core::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division, traps on zero)
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Scalar state variable or parameter, e.g. `virtual_time`.
    Var(String),
    /// Packet field, e.g. `p.length`.
    Field(String),
    /// State-map lookup keyed by the packet's flow: `last_finish[flow]`.
    MapGet(String),
    /// Membership test: `flow in last_finish`.
    MapContains(String),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation `!e`.
    Not(Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// Scalar state variable.
    Var(String),
    /// Packet field (scratch fields spring into existence on write).
    Field(String),
    /// State-map entry keyed by the packet's flow.
    MapPut(String),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lhs = expr;`
    Assign(LValue, Expr),
    /// `if (cond) { then } else { otherwise }`
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Fallback branch (possibly empty).
        otherwise: Vec<Stmt>,
    },
}

/// A declared scalar state variable with its initial value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDecl {
    /// Name.
    pub name: String,
    /// Initial value.
    pub init: i64,
}

/// A parsed transaction program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Scalar state declarations (`state x = 0;`).
    pub states: Vec<StateDecl>,
    /// State map declarations (`statemap last_finish;`).
    pub maps: Vec<String>,
    /// Named constants (`param r = 125;`).
    pub params: Vec<StateDecl>,
    /// The per-packet (enqueue) body.
    pub body: Vec<Stmt>,
    /// Optional `@dequeue { ... }` body, run when the element leaves the
    /// PIFO (STFQ's virtual-time update). Has access to `rank`.
    pub dequeue_body: Vec<Stmt>,
}

impl Program {
    /// Names of all declared scalar state variables.
    pub fn state_names(&self) -> impl Iterator<Item = &str> {
        self.states.iter().map(|s| s.name.as_str())
    }

    /// True if `name` is a declared state scalar or map.
    pub fn is_state(&self, name: &str) -> bool {
        self.states.iter().any(|s| s.name == name) || self.maps.iter().any(|m| m == name)
    }

    /// True if `name` is a declared parameter.
    pub fn is_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name)
    }
}

/// The atom ladder (§4.1): hardware templates ordered by capability, from
/// stateless ALUs up to `Pairs` (the largest atom the Domino paper
/// synthesised, 6000 µm² at 32 nm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomKind {
    /// Pure function of packet fields; no switch state.
    Stateless,
    /// Read-add-write on one state variable: `s = s + e`.
    ReadAddWrite,
    /// Predicated read-add-write: `if (pred) s = s + e`.
    PredRaw,
    /// Two-armed additive update: `if (pred) s += e1 else s += e2`.
    IfElseRaw,
    /// Additive/subtractive with general guarded reset.
    Sub,
    /// Arbitrary nested conditional updates of **one** state variable.
    NestedIf,
    /// Atomic update of **two** mutually dependent state variables.
    Pairs,
}

impl fmt::Display for AtomKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomKind::Stateless => "Stateless",
            AtomKind::ReadAddWrite => "RAW",
            AtomKind::PredRaw => "PRAW",
            AtomKind::IfElseRaw => "IfElseRAW",
            AtomKind::Sub => "Sub",
            AtomKind::NestedIf => "NestedIf",
            AtomKind::Pairs => "Pairs",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_ladder_is_ordered() {
        assert!(AtomKind::Stateless < AtomKind::ReadAddWrite);
        assert!(AtomKind::ReadAddWrite < AtomKind::PredRaw);
        assert!(AtomKind::NestedIf < AtomKind::Pairs);
    }

    #[test]
    fn program_lookup_helpers() {
        let p = Program {
            states: vec![StateDecl {
                name: "vt".into(),
                init: 0,
            }],
            maps: vec!["last_finish".into()],
            params: vec![StateDecl {
                name: "r".into(),
                init: 5,
            }],
            body: vec![],
            dequeue_body: vec![],
        };
        assert!(p.is_state("vt"));
        assert!(p.is_state("last_finish"));
        assert!(!p.is_state("r"));
        assert!(p.is_param("r"));
        assert_eq!(p.state_names().collect::<Vec<_>>(), vec!["vt"]);
    }

    #[test]
    fn display_ops() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(AtomKind::Pairs.to_string(), "Pairs");
    }
}
