//! The atom-pipeline compiler (§4.1).
//!
//! Domino compiles a packet transaction into a pipeline of *atoms* —
//! small stateful processing units — and **rejects** the transaction if no
//! atom template is strong enough to execute its state updates atomically
//! at line rate. This module reproduces that accept/reject behaviour over
//! the same atom vocabulary, up to the `Pairs` atom the paper cites
//! (§4.1: "the largest of these atoms, called Pairs … the transaction in
//! Figure 1 can be run at 1 GHz … with the Pairs atom").
//!
//! The analysis:
//!
//! 1. **Flatten** branches into guarded assignments (Domino's branch
//!    removal).
//! 2. **Cluster** state variables that must update together: if the
//!    update (or guard) of state `A` reads state `B` (or vice versa), the
//!    hardware must read and write both in one stage — pipelining them
//!    apart would let a later packet read stale state. Clusters are the
//!    connected components of this relation. State read in the
//!    `@dequeue` hook shares the same physical atom, so both bodies count.
//!    (The clustering pass is shared with [`mod@crate::check`], which turns a
//!    too-large cluster into a *spanned* diagnostic before analysis.)
//! 3. **Classify** each cluster against the atom ladder: one variable
//!    with a plain `s = s ± e` is `RAW`/`Sub`; guarded variants need
//!    `PRAW`/`IfElseRAW`; arbitrary single-variable updates need
//!    `NestedIf`; two mutually dependent variables need `Pairs`; three or
//!    more are rejected — no template exists.
//! 4. **Stage** the guarded assignments by data dependency to estimate
//!    pipeline depth.

use crate::ast::{AtomKind, Expr, ExprKind, LValue, LValueKind, Program, Stmt, StmtKind};
use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

/// Why a transaction cannot run at line rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// More than two state variables must update atomically together —
    /// beyond every template in the atom vocabulary.
    TooManyCoupledStateVars(Vec<String>),
    /// The transaction needs a stronger atom than the target provides.
    AtomTooWeak {
        /// What the program needs.
        required: AtomKind,
        /// What the target switch offers.
        available: AtomKind,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyCoupledStateVars(vs) => write!(
                f,
                "state variables {{{}}} must update atomically together; no atom template is that large",
                vs.join(", ")
            ),
            CompileError::AtomTooWeak {
                required,
                available,
            } => write!(
                f,
                "transaction requires the {required} atom but the target only provides {available}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A branch-flattened assignment: `if (guard) lhs = rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedAssign {
    /// Conjunction of branch conditions on the path to this assignment
    /// (`None` = unconditional).
    pub guard: Option<Expr>,
    /// Target.
    pub lhs: LValue,
    /// Value.
    pub rhs: Expr,
}

/// Flatten nested `if/else` into guarded assignments, in program order.
pub fn flatten(stmts: &[Stmt]) -> Vec<GuardedAssign> {
    fn go(stmts: &[Stmt], guard: Option<&Expr>, out: &mut Vec<GuardedAssign>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign(lhs, rhs) => out.push(GuardedAssign {
                    guard: guard.cloned(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }),
                StmtKind::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    let then_guard = conjoin(guard, cond.clone());
                    go(then, Some(&then_guard), out);
                    if !otherwise.is_empty() {
                        let not_cond = Expr::new(ExprKind::Not(Box::new(cond.clone())), cond.span);
                        let else_guard = conjoin(guard, not_cond);
                        go(otherwise, Some(&else_guard), out);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    go(stmts, None, &mut out);
    out
}

fn conjoin(guard: Option<&Expr>, cond: Expr) -> Expr {
    match guard {
        None => cond,
        Some(g) => {
            let span = g.span.to(cond.span);
            Expr::new(
                ExprKind::Bin(crate::ast::BinOp::And, Box::new(g.clone()), Box::new(cond)),
                span,
            )
        }
    }
}

/// Collect the state variables (scalars and maps) read by an expression.
fn state_reads(e: &Expr, prog: &Program, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Var(v) if prog.is_state(v) => {
            out.insert(v.clone());
        }
        ExprKind::MapGet(m) | ExprKind::MapContains(m) => {
            out.insert(m.clone());
        }
        ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Bin(_, a, b) => {
            state_reads(a, prog, out);
            state_reads(b, prog, out);
        }
        ExprKind::Not(a) => state_reads(a, prog, out),
        _ => {}
    }
}

fn lvalue_state(lv: &LValue, prog: &Program) -> Option<String> {
    match &lv.kind {
        LValueKind::Var(v) if prog.is_state(v) => Some(v.clone()),
        LValueKind::MapPut(m) => Some(m.clone()),
        _ => None,
    }
}

/// The result of the state-clustering pass (step 2), shared between
/// [`analyze`] and the [`crate::check`] stage checker.
#[derive(Debug, Clone)]
pub(crate) struct ClusterInfo {
    /// Connected components of the must-update-together relation, each
    /// containing at least one written variable.
    pub clusters: Vec<BTreeSet<String>>,
    /// Every state variable read anywhere in the transaction (directly
    /// or through a packet temporary).
    pub read_anywhere: BTreeSet<String>,
}

/// Cluster the program's state variables (enqueue + dequeue bodies).
pub(crate) fn state_clusters(prog: &Program) -> ClusterInfo {
    // Both bodies access the same physical state atoms.
    let mut flat = flatten(&prog.body);
    flat.extend(flatten(&prog.dequeue_body));

    // Union-find over written state vars plus any state they read.
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<String, String>, x: &str) -> String {
        let p = parent.get(x).cloned().unwrap_or_else(|| x.to_string());
        if p == x {
            parent.insert(x.to_string(), p.clone());
            return p;
        }
        let root = find(parent, &p);
        parent.insert(x.to_string(), root.clone());
        root
    }
    fn union(parent: &mut BTreeMap<String, String>, a: &str, b: &str) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent.insert(ra, rb);
        }
    }

    // State dependencies propagate *through packet temporaries*: in STFQ,
    // `p.start` carries a read of `virtual_time` into the `last_finish`
    // update, so the two variables must share an atom even though no
    // single statement touches both. Track, per field, the set of state
    // variables its current value depends on.
    let mut field_deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let deps_of = |e: &Expr, field_deps: &BTreeMap<String, BTreeSet<String>>| -> BTreeSet<String> {
        let mut direct = BTreeSet::new();
        state_reads(e, prog, &mut direct);
        fn fields_read(e: &Expr, out: &mut BTreeSet<String>) {
            match &e.kind {
                ExprKind::Field(f) => {
                    out.insert(f.clone());
                }
                ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Bin(_, a, b) => {
                    fields_read(a, out);
                    fields_read(b, out);
                }
                ExprKind::Not(a) => fields_read(a, out),
                _ => {}
            }
        }
        let mut fr = BTreeSet::new();
        fields_read(e, &mut fr);
        for f in fr {
            if let Some(ds) = field_deps.get(&f) {
                direct.extend(ds.iter().cloned());
            }
        }
        direct
    };

    let mut written: BTreeSet<String> = BTreeSet::new();
    let mut read_anywhere: BTreeSet<String> = BTreeSet::new();
    for ga in &flat {
        let mut reads = deps_of(&ga.rhs, &field_deps);
        if let Some(g) = &ga.guard {
            reads.extend(deps_of(g, &field_deps));
        }
        read_anywhere.extend(reads.iter().cloned());
        match (&ga.lhs.kind, lvalue_state(&ga.lhs, prog)) {
            (_, Some(w)) => {
                written.insert(w.clone());
                // Materialise a singleton cluster even for blind writes
                // (a written variable always occupies an atom).
                let _ = find(&mut parent, &w);
                for r in &reads {
                    union(&mut parent, &w, r);
                }
            }
            (LValueKind::Field(f), None) => {
                field_deps.insert(f.clone(), reads);
            }
            _ => {}
        }
    }
    // Only clusters containing at least one *written* variable matter;
    // read-only state has no update hazard.
    let mut clusters: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let keys: Vec<String> = parent.keys().cloned().collect();
    for k in keys {
        let root = find(&mut parent, &k);
        clusters.entry(root).or_default().insert(k);
    }
    let clusters: Vec<BTreeSet<String>> = clusters
        .into_values()
        .filter(|c| c.iter().any(|v| written.contains(v)))
        .collect();
    ClusterInfo {
        clusters,
        read_anywhere,
    }
}

/// The analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// The weakest atom that can execute this transaction.
    pub required_atom: AtomKind,
    /// Estimated pipeline depth (stages).
    pub stages: usize,
    /// Number of atoms/ALUs placed (one per flattened assignment, with
    /// each state cluster fused into one).
    pub atoms: usize,
    /// The state-variable clusters, sorted.
    pub clusters: Vec<Vec<String>>,
    /// The atom each cluster needs, parallel to `clusters` (the overall
    /// `required_atom` is their max). [`crate::hwmap`] uses this for
    /// per-stage atom placement.
    pub cluster_atoms: Vec<AtomKind>,
}

/// Analyze a program: cluster state, classify atoms, estimate stages.
pub fn analyze(prog: &Program) -> Result<PipelineReport, CompileError> {
    let mut flat = flatten(&prog.body);
    flat.extend(flatten(&prog.dequeue_body));

    let ClusterInfo {
        clusters,
        read_anywhere,
    } = state_clusters(prog);

    // --- Step 3: classify ----------------------------------------------
    let mut required = AtomKind::Stateless;
    let mut cluster_atoms = Vec::with_capacity(clusters.len());
    for c in &clusters {
        let kind = match c.len() {
            1 => {
                let var = c.iter().next().expect("non-empty");
                classify_single(var, &flat, prog, read_anywhere.contains(var))
            }
            2 => AtomKind::Pairs,
            _ => {
                return Err(CompileError::TooManyCoupledStateVars(
                    c.iter().cloned().collect(),
                ))
            }
        };
        cluster_atoms.push(kind);
        required = required.max(kind);
    }

    // --- Step 4: stage estimate ----------------------------------------
    let (stages, _) = stage_info(&flatten(&prog.body), prog, &clusters);

    Ok(PipelineReport {
        required_atom: required,
        stages,
        atoms: flatten(&prog.body).len(),
        clusters: clusters
            .into_iter()
            .map(|c| c.into_iter().collect())
            .collect(),
        cluster_atoms,
    })
}

/// Classify the update pattern of a single state variable.
///
/// `read_elsewhere` reports whether the variable's value is consumed
/// anywhere in the transaction (directly or through a packet temporary):
/// a read-then-overwrite pair must execute in one atom (the flowlet
/// pattern), whereas a blind overwrite only needs a write port.
fn classify_single(
    var: &str,
    flat: &[GuardedAssign],
    prog: &Program,
    read_elsewhere: bool,
) -> AtomKind {
    use crate::ast::BinOp;
    let updates: Vec<&GuardedAssign> = flat
        .iter()
        .filter(|ga| lvalue_state(&ga.lhs, prog).as_deref() == Some(var))
        .collect();

    // Is an rhs of the form `var + e` / `var - e` with `e` stateless?
    let additive = |rhs: &Expr| -> Option<bool> {
        if let ExprKind::Bin(op, a, b) = &rhs.kind {
            let var_on_left = matches!(&a.kind, ExprKind::Var(v) if v == var)
                || matches!(&a.kind, ExprKind::MapGet(m) if m == var);
            if var_on_left && matches!(op, BinOp::Add | BinOp::Sub) {
                let mut reads = BTreeSet::new();
                state_reads(b, prog, &mut reads);
                reads.remove(var);
                if reads.is_empty() {
                    return Some(*op == BinOp::Sub);
                }
            }
        }
        None
    };

    // Is an rhs free of any state reads (a blind overwrite)?
    let stateless_rhs = |rhs: &Expr| -> bool {
        let mut reads = BTreeSet::new();
        state_reads(rhs, prog, &mut reads);
        reads.is_empty()
    };

    match updates.as_slice() {
        [only] => match (&only.guard, additive(&only.rhs)) {
            (None, Some(false)) => AtomKind::ReadAddWrite,
            (None, Some(true)) => AtomKind::Sub,
            (Some(_), Some(false)) => AtomKind::PredRaw,
            (Some(_), Some(true)) => AtomKind::Sub,
            // Unguarded blind overwrite of a value no one reads back in
            // this transaction: a plain state write (RAW-class port).
            (None, None) if !read_elsewhere && stateless_rhs(&only.rhs) => AtomKind::ReadAddWrite,
            _ => AtomKind::NestedIf,
        },
        [a, b] if a.guard.is_some() && b.guard.is_some() => {
            match (additive(&a.rhs), additive(&b.rhs)) {
                (Some(false), Some(false)) => AtomKind::IfElseRaw,
                (Some(_), Some(_)) => AtomKind::Sub,
                _ => AtomKind::NestedIf,
            }
        }
        _ => AtomKind::NestedIf,
    }
}

/// Longest dependency chain over the flattened body, with each state
/// cluster fused to one node. Also returns the pipeline stage each
/// cluster's fused atom lands in (1-based; clusters only written in the
/// `@dequeue` body have no entry) — [`crate::hwmap`] uses this for atom
/// placement.
pub(crate) fn stage_info(
    flat: &[GuardedAssign],
    prog: &Program,
    clusters: &[BTreeSet<String>],
) -> (usize, BTreeMap<usize, usize>) {
    let cluster_of = |v: &str| -> Option<usize> { clusters.iter().position(|c| c.contains(v)) };
    // Node id per assignment (fused by cluster).
    let mut node_of: Vec<usize> = Vec::new();
    let mut cluster_node: BTreeMap<usize, usize> = BTreeMap::new();
    let mut n_nodes = 0usize;
    for ga in flat {
        let id = match lvalue_state(&ga.lhs, prog).and_then(|v| cluster_of(&v)) {
            Some(c) => *cluster_node.entry(c).or_insert_with(|| {
                let id = n_nodes;
                n_nodes += 1;
                id
            }),
            None => {
                let id = n_nodes;
                n_nodes += 1;
                id
            }
        };
        node_of.push(id);
    }
    // Field/var write tracking for dependencies.
    fn all_reads(ga: &GuardedAssign, prog: &Program) -> BTreeSet<String> {
        fn reads(e: &Expr, prog: &Program, out: &mut BTreeSet<String>) {
            match &e.kind {
                ExprKind::Field(f) => {
                    out.insert(format!("p.{f}"));
                }
                ExprKind::Var(v) if prog.is_state(v) => {
                    out.insert(format!("s.{v}"));
                }
                ExprKind::MapGet(m) | ExprKind::MapContains(m) => {
                    out.insert(format!("s.{m}"));
                }
                ExprKind::Min(a, b) | ExprKind::Max(a, b) | ExprKind::Bin(_, a, b) => {
                    reads(a, prog, out);
                    reads(b, prog, out);
                }
                ExprKind::Not(a) => reads(a, prog, out),
                _ => {}
            }
        }
        let mut out = BTreeSet::new();
        reads(&ga.rhs, prog, &mut out);
        if let Some(g) = &ga.guard {
            reads(g, prog, &mut out);
        }
        out
    }
    let write_key = |lv: &LValue| -> String {
        match &lv.kind {
            LValueKind::Var(v) => format!("s.{v}"),
            LValueKind::MapPut(m) => format!("s.{m}"),
            LValueKind::Field(f) => format!("p.{f}"),
        }
    };

    let mut depth: Vec<usize> = vec![1; n_nodes];
    let mut last_writer: BTreeMap<String, usize> = BTreeMap::new();
    for (i, ga) in flat.iter().enumerate() {
        let me = node_of[i];
        let mut d = depth[me];
        for r in all_reads(ga, prog) {
            if let Some(&w) = last_writer.get(&r) {
                if w != me {
                    d = d.max(depth[w] + 1);
                }
            }
        }
        depth[me] = d;
        last_writer.insert(write_key(&ga.lhs), me);
    }
    let cluster_stage: BTreeMap<usize, usize> =
        cluster_node.iter().map(|(c, n)| (*c, depth[*n])).collect();
    (depth.into_iter().max().unwrap_or(0), cluster_stage)
}

/// Compile against a target whose strongest atom is `available`; rejects
/// exactly when Domino would (the §4.1 line-rate check).
pub fn compile(prog: &Program, available: AtomKind) -> Result<PipelineReport, CompileError> {
    let report = analyze(prog)?;
    if report.required_atom > available {
        return Err(CompileError::AtomTooWeak {
            required: report.required_atom,
            available,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_unchecked};

    fn req(src: &str) -> AtomKind {
        analyze(&parse(src).unwrap()).unwrap().required_atom
    }

    #[test]
    fn stateless_transaction() {
        assert_eq!(req("p.rank = p.slack;"), AtomKind::Stateless);
        assert_eq!(req("p.rank = max(p.deadline, now);"), AtomKind::Stateless);
    }

    #[test]
    fn counter_is_raw() {
        assert_eq!(
            req("state c = 0;\nc = c + 1;\np.rank = c;"),
            AtomKind::ReadAddWrite
        );
    }

    #[test]
    fn guarded_counter_is_praw() {
        assert_eq!(
            req("state c = 0;\nif (p.length > 100) { c = c + 1; }\np.rank = c;"),
            AtomKind::PredRaw
        );
    }

    #[test]
    fn two_arm_additive_is_ifelseraw() {
        assert_eq!(
            req(
                "state c = 0;\nif (p.length > 100) { c = c + 1; } else { c = c + 2; }\np.rank = c;"
            ),
            AtomKind::IfElseRaw
        );
    }

    #[test]
    fn subtraction_is_sub() {
        assert_eq!(
            req("state c = 0;\nc = c - p.length;\np.rank = c;"),
            AtomKind::Sub
        );
    }

    #[test]
    fn reset_update_is_nested() {
        assert_eq!(
            req("state c = 0;\nif (c > 10) { c = 0; } else { c = c + 1; }\np.rank = c;"),
            AtomKind::NestedIf
        );
    }

    #[test]
    fn coupled_pair_is_pairs() {
        // b's update reads a: they must share an atom.
        assert_eq!(
            req("state a = 0;\nstate b = 0;\na = a + 1;\nb = b + a;\np.rank = b;"),
            AtomKind::Pairs
        );
    }

    #[test]
    fn three_coupled_vars_rejected() {
        // parse_unchecked: the stage checker would reject this statically
        // (that is its job — see crate::check); here we pin that the
        // analysis itself also rejects, for unchecked ASTs.
        let err = analyze(
            &parse_unchecked("state a = 0;\nstate b = 0;\nstate c = 0;\na = b + 1;\nb = c + 1;\nc = a + 1;\np.rank = a;")
                .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TooManyCoupledStateVars(v) if v.len() == 3));
    }

    #[test]
    fn independent_states_do_not_couple() {
        // Two counters with no cross-reads: two RAW atoms, not Pairs.
        assert_eq!(
            req("state a = 0;\nstate b = 0;\na = a + 1;\nb = b + 2;\np.rank = a + b;"),
            AtomKind::ReadAddWrite
        );
    }

    #[test]
    fn read_only_state_is_free() {
        // virtual_time is only read in the body; with no writer anywhere
        // it costs nothing.
        assert_eq!(
            req("state vt = 0;\np.rank = vt + p.length;"),
            AtomKind::Stateless
        );
    }

    #[test]
    fn dequeue_hook_couples_state() {
        // vt written at dequeue, read by the map update at enqueue: the
        // two share the physical atom -> Pairs. This is exactly the STFQ
        // shape (§4.1).
        let src = "state vt = 0;\nstatemap lf;\nlf[flow] = max(vt, lf[flow]) + p.length;\np.rank = vt;\n@dequeue { vt = max(vt, rank); }";
        assert_eq!(req(src), AtomKind::Pairs);
    }

    #[test]
    fn compile_rejects_weak_target() {
        let prog = parse("state c = 0;\nc = c + 1;\np.rank = c;").unwrap();
        assert!(compile(&prog, AtomKind::Stateless).is_err());
        assert!(compile(&prog, AtomKind::ReadAddWrite).is_ok());
        assert!(compile(&prog, AtomKind::Pairs).is_ok(), "stronger is fine");
    }

    #[test]
    fn flatten_produces_guards() {
        let prog = parse("p.a = 0;\nif (p.a > 0) { p.x = 1; } else { p.x = 2; }").unwrap();
        let flat = flatten(&prog.body);
        assert_eq!(flat.len(), 3);
        assert!(flat[1].guard.is_some());
        assert!(flat[2].guard.is_some());
    }

    #[test]
    fn stage_depth_counts_chains() {
        // x depends on nothing; y on x; z on y: 3 stages.
        let r = analyze(&parse("p.x = 1;\np.y = p.x + 1;\np.z = p.y + 1;").unwrap()).unwrap();
        assert_eq!(r.stages, 3);
        // Independent assignments: 1 stage.
        let r = analyze(&parse("p.x = 1;\np.y = 2;").unwrap()).unwrap();
        assert_eq!(r.stages, 1);
    }

    #[test]
    fn cluster_atoms_parallel_clusters() {
        let r = analyze(
            &parse("state a = 0;\nstate b = 0;\na = a + 1;\nb = b - p.length;\np.rank = a + b;")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.cluster_atoms.len(), 2);
        let mut pairs: Vec<(String, AtomKind)> = r
            .clusters
            .iter()
            .zip(&r.cluster_atoms)
            .map(|(c, k)| (c.join(","), *k))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("a".to_string(), AtomKind::ReadAddWrite),
                ("b".to_string(), AtomKind::Sub),
            ]
        );
    }
}
