//! Recursive-descent parser for domino-lite, consuming the spanned
//! token stream produced by [`crate::lexer`].
//!
//! The grammar is documented in `crates/domino/grammar.md`; the short
//! version:
//!
//! ```text
//! program   := decl* stmt* deq?
//! decl      := "state" ident "=" int ";"
//!            | "statemap" ident ";"
//!            | "param" ident "=" int ";"
//! deq       := "@dequeue" block
//! stmt      := lvalue "=" expr ";"
//!            | "if" "(" expr ")" block ("else" (block | if-stmt))?
//! block     := "{" stmt* "}"
//! lvalue    := ident | ident "[" "flow" "]" | ("p"|"pkt") "." ident
//! expr      := or-chain of comparisons over additive/multiplicative
//!              terms; `min(a,b)`, `max(a,b)`, `flow in map`, `!e`,
//!              parentheses, integers (optionally negative), idents,
//!              fields, map reads.
//! ```
//!
//! Two entry points:
//!
//! * [`parse`] is the staged front-end — lex → parse → [`crate::check()`]
//!   — and is what every production call site uses. A program it
//!   accepts is statically known to interpret without
//!   undefined-identifier errors and to fit a single-stage atom
//!   pipeline (§4.3).
//! * [`parse_unchecked`] stops after the grammar (lex → parse). Tests
//!   use it to build programs the checker would reject, e.g. to pin the
//!   runtime and `pipeline::analyze` behaviour on such programs, and the
//!   fuzz round-trip property uses it because generated ASTs need not
//!   be stage-checkable.
//!
//! Every AST node carries the [`Span`] of the source it came from, and
//! every error points at the offending token — including end-of-input
//! errors (the span is the zero-width point after the last token) and
//! unterminated blocks (the span is the `{` that was never closed).

use crate::ast::{
    BinOp, Expr, ExprKind, LValue, LValueKind, MapDecl, Program, StateDecl, Stmt, StmtKind,
};
use crate::diag::Span;
use crate::lexer::{lex, Token, TokenKind};

pub use crate::diag::ParseError;

/// Maximum nesting depth for statements + expressions combined. Deep
/// enough for any realistic transaction (the paper's figures nest < 10),
/// shallow enough that the raw-bytes fuzz property cannot overflow the
/// stack with `((((((…`.
pub const MAX_NEST_DEPTH: usize = 64;

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    fn peek_span(&self) -> Span {
        self.toks[self.i].span
    }

    /// Span of the most recently consumed token (for closing `hi` ends).
    fn prev_span(&self) -> Span {
        self.toks[self.i.saturating_sub(1)].span
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.err_at(self.peek_span(), msg)
    }

    fn err_at(&self, span: Span, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.src, span, msg)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.i].kind.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{p}', found {}", other.describe()))),
        }
    }

    /// Consume an identifier, returning it with its span.
    fn eat_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let span = self.peek_span();
                self.bump();
                Ok((s, span))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// Consume an integer literal with optional leading minus.
    fn eat_int(&mut self) -> Result<i64, ParseError> {
        let neg = matches!(self.peek(), TokenKind::Punct("-"));
        if neg {
            self.bump();
        }
        match self.peek().clone() {
            TokenKind::Num(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected integer, found {}", other.describe()))),
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    /// Guard against pathological nesting (fuzz inputs like `((((…`).
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_NEST_DEPTH} levels")));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program::empty();
        // Declarations.
        loop {
            if self.at_ident("state") {
                self.bump();
                let (name, span) = self.eat_ident()?;
                self.eat_punct("=")?;
                let init = self.eat_int()?;
                self.eat_punct(";")?;
                p.states.push(StateDecl { name, init, span });
            } else if self.at_ident("statemap") {
                self.bump();
                let (name, span) = self.eat_ident()?;
                self.eat_punct(";")?;
                p.maps.push(MapDecl { name, span });
            } else if self.at_ident("param") {
                self.bump();
                let (name, span) = self.eat_ident()?;
                self.eat_punct("=")?;
                let init = self.eat_int()?;
                self.eat_punct(";")?;
                p.params.push(StateDecl { name, init, span });
            } else {
                break;
            }
        }
        // Body.
        while !matches!(self.peek(), TokenKind::Eof) && !self.at_ident("@dequeue") {
            let s = self.stmt()?;
            p.body.push(s);
        }
        // Optional dequeue hook.
        if self.at_ident("@dequeue") {
            self.bump();
            p.dequeue_body = self.block()?;
            p.has_dequeue = true;
        }
        match self.peek() {
            TokenKind::Eof => Ok(p),
            other => Err(self.err(format!("trailing input: {}", other.describe()))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let open = self.peek_span();
        self.eat_punct("{")?;
        let mut out = vec![];
        while !matches!(self.peek(), TokenKind::Punct("}")) {
            if matches!(self.peek(), TokenKind::Eof) {
                // Point at the brace that was never closed, not at the
                // end of input — the opening is where the fix goes.
                return Err(self.err_at(open, "unterminated block (opened here)"));
            }
            out.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.peek_span();
        if self.at_ident("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr()?;
            self.eat_punct(")")?;
            let then = self.block()?;
            let otherwise = if self.at_ident("else") {
                self.bump();
                if self.at_ident("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::new(
                StmtKind::If {
                    cond,
                    then,
                    otherwise,
                },
                lo.to(self.prev_span()),
            ));
        }
        // Assignment.
        let lv = self.lvalue()?;
        self.eat_punct("=")?;
        let e = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::new(StmtKind::Assign(lv, e), lo.to(self.prev_span())))
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let (name, name_span) = self.eat_ident()?;
        if (name == "p" || name == "pkt") && matches!(self.peek(), TokenKind::Punct(".")) {
            self.bump();
            let (field, field_span) = self.eat_ident()?;
            return Ok(LValue::new(
                LValueKind::Field(field),
                name_span.to(field_span),
            ));
        }
        if matches!(self.peek(), TokenKind::Punct("[")) {
            self.bump();
            let (key, key_span) = self.eat_ident()?;
            if key != "flow" {
                return Err(self.err_at(key_span, "state maps are keyed by 'flow' only"));
            }
            self.eat_punct("]")?;
            return Ok(LValue::new(
                LValueKind::MapPut(name),
                name_span.to(self.prev_span()),
            ));
        }
        Ok(LValue::new(LValueKind::Var(name), name_span))
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.or_expr();
        self.leave();
        r
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while matches!(self.peek(), TokenKind::Punct("||")) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr::new(ExprKind::Bin(BinOp::Or, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr()?;
        while matches!(self.peek(), TokenKind::Punct("&&")) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr::new(ExprKind::Bin(BinOp::And, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Punct("<") => Some(BinOp::Lt),
            TokenKind::Punct("<=") => Some(BinOp::Le),
            TokenKind::Punct(">") => Some(BinOp::Gt),
            TokenKind::Punct(">=") => Some(BinOp::Ge),
            TokenKind::Punct("==") => Some(BinOp::Eq),
            TokenKind::Punct("!=") => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = e.span.to(rhs.span);
            return Ok(Expr::new(
                ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
                span,
            ));
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("+") => BinOp::Add,
                TokenKind::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr::new(ExprKind::Bin(op, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct("*") => BinOp::Mul,
                TokenKind::Punct("/") => BinOp::Div,
                TokenKind::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr::new(ExprKind::Bin(op, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.unary_inner();
        self.leave();
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        match self.peek().clone() {
            TokenKind::Punct("!") => {
                self.bump();
                let e = self.unary_expr()?;
                let span = lo.to(e.span);
                Ok(Expr::new(ExprKind::Not(Box::new(e)), span))
            }
            TokenKind::Punct("-") => {
                self.bump();
                let e = self.unary_expr()?;
                let span = lo.to(e.span);
                // Fold a negated literal into the literal, so `-5` is the
                // AST `Num(-5)` and pretty-printed negatives round-trip.
                // (Magnitudes stop at i64::MAX — the lexer rejects larger
                // literals — so negation cannot overflow.)
                if let ExprKind::Num(v) = e.kind {
                    return Ok(Expr::new(ExprKind::Num(-v), span));
                }
                Ok(Expr::new(
                    ExprKind::Bin(
                        BinOp::Sub,
                        Box::new(Expr::new(ExprKind::Num(0), lo)),
                        Box::new(e),
                    ),
                    span,
                ))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            TokenKind::Num(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Num(v), lo))
            }
            TokenKind::Ident(name) => {
                self.bump();
                // min/max calls
                if (name == "min" || name == "max") && matches!(self.peek(), TokenKind::Punct("("))
                {
                    self.bump();
                    let a = self.expr()?;
                    self.eat_punct(",")?;
                    let b = self.expr()?;
                    self.eat_punct(")")?;
                    let span = lo.to(self.prev_span());
                    return Ok(if name == "min" {
                        Expr::new(ExprKind::Min(Box::new(a), Box::new(b)), span)
                    } else {
                        Expr::new(ExprKind::Max(Box::new(a), Box::new(b)), span)
                    });
                }
                // p.field / pkt.field
                if (name == "p" || name == "pkt") && matches!(self.peek(), TokenKind::Punct(".")) {
                    self.bump();
                    let (field, field_span) = self.eat_ident()?;
                    return Ok(Expr::new(ExprKind::Field(field), lo.to(field_span)));
                }
                // flow in map
                if name == "flow" && self.at_ident("in") {
                    self.bump();
                    let (map, map_span) = self.eat_ident()?;
                    return Ok(Expr::new(ExprKind::MapContains(map), lo.to(map_span)));
                }
                // map[flow]
                if matches!(self.peek(), TokenKind::Punct("[")) {
                    self.bump();
                    let (key, key_span) = self.eat_ident()?;
                    if key != "flow" {
                        return Err(self.err_at(key_span, "state maps are keyed by 'flow' only"));
                    }
                    self.eat_punct("]")?;
                    return Ok(Expr::new(ExprKind::MapGet(name), lo.to(self.prev_span())));
                }
                Ok(Expr::new(ExprKind::Var(name), lo))
            }
            other => Err(self.err_at(lo, format!("unexpected token {}", other.describe()))),
        }
    }
}

/// Run the grammar only: lex → parse, **no** stage checking.
///
/// The returned program may reference undeclared identifiers, read
/// never-assigned packet fields, or violate the §4.3 single-stage atom
/// constraints; [`crate::interp::Interp`] and [`crate::pipeline`] report
/// those dynamically. Production call sites want [`parse`].
pub fn parse_unchecked(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        src,
        toks,
        i: 0,
        depth: 0,
    };
    p.program()
}

/// Parse a domino-lite program through the full front-end:
/// lex → parse → stage-check ([`crate::check()`]).
///
/// All errors — lexical, syntactic, or §4.3 stage violations — come back
/// as a [`ParseError`] carrying the span of the offending source and a
/// caret-rendered snippet ([`ParseError::render`]).
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let prog = parse_unchecked(src)?;
    crate::check::check(src, &prog).map_err(|e| e.into_parse_error())?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, ExprKind, LValueKind, StmtKind};

    #[test]
    fn parses_declarations() {
        let p = parse("state vt = 0;\nstatemap last_finish;\nparam r = 125;\np.rank = 1;").unwrap();
        assert_eq!(p.states.len(), 1);
        assert_eq!(p.map_names().collect::<Vec<_>>(), vec!["last_finish"]);
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parses_negative_init() {
        let p = parse("state x = -5; p.rank = x;").unwrap();
        assert_eq!(p.states[0].init, -5);
    }

    #[test]
    fn parses_if_else_and_membership() {
        let p = parse("statemap m;\nif (flow in m) { p.rank = m[flow]; } else { p.rank = 0; }")
            .unwrap();
        match &p.body[0].kind {
            StmtKind::If {
                cond,
                then,
                otherwise,
            } => {
                assert_eq!(cond.kind, ExprKind::MapContains("m".into()));
                assert_eq!(then.len(), 1);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_min_max_and_precedence() {
        let p = parse("p.rank = max(1, 2) + 3 * 4;").unwrap();
        match &p.body[0].kind {
            StmtKind::Assign(lv, e) => {
                assert_eq!(lv.kind, LValueKind::Field("rank".into()));
                match &e.kind {
                    ExprKind::Bin(BinOp::Add, lhs, rhs) => {
                        assert!(matches!(lhs.kind, ExprKind::Max(_, _)));
                        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_map_assignment_and_field_read() {
        let p = parse("statemap lf;\np.start = 0;\nlf[flow] = p.start + p.length / 2;").unwrap();
        assert!(
            matches!(&p.body[1].kind, StmtKind::Assign(lv, _) if lv.kind == LValueKind::MapPut("lf".into()))
        );
    }

    #[test]
    fn parses_dequeue_section() {
        let p = parse("state vt = 0;\np.rank = vt;\n@dequeue { vt = max(vt, rank); }").unwrap();
        assert_eq!(p.dequeue_body.len(), 1);
        assert!(p.has_dequeue);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse(
            "p.x = 0;\nif (p.x > 1) { p.x = 1; } else if (p.x > 0) { p.x = 2; } else { p.x = 3; }",
        )
        .unwrap();
        match &p.body[1].kind {
            StmtKind::If { otherwise, .. } => {
                assert_eq!(otherwise.len(), 1);
                assert!(matches!(otherwise[0].kind, StmtKind::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let p = parse("// a comment\nparam B = 1_500_000; # another\np.rank = B;").unwrap();
        assert_eq!(p.params[0].init, 1_500_000);
    }

    #[test]
    fn error_has_position() {
        let err = parse("p.rank = ;").unwrap_err();
        assert_eq!(err.line(), 1);
        assert_eq!(err.col(), 10, "points at the ';', not the line start");
        assert_eq!(err.span(), Span::new(9, 10));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn eof_errors_point_past_the_last_token() {
        let src = "p.rank = 1";
        let err = parse(src).unwrap_err();
        assert!(err.message().contains("expected ';'"), "{err}");
        assert_eq!(err.span(), Span::point(src.len()));
    }

    #[test]
    fn unterminated_block_points_at_open_brace() {
        let src = "if (1) {\n  p.rank = 1;";
        let err = parse(src).unwrap_err();
        assert!(err.message().contains("unterminated block"), "{err}");
        assert_eq!(err.span(), Span::new(7, 8), "span of the '{{'");
        assert_eq!((err.line(), err.col()), (1, 8));
    }

    #[test]
    fn rejects_non_flow_map_key() {
        let err = parse("statemap m;\nm[other] = 1;").unwrap_err();
        assert!(err.message().contains("keyed by 'flow'"));
        assert_eq!((err.line(), err.col()), (2, 3), "points at the bad key");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("p.rank = 1; }").unwrap_err();
        assert!(err.message().contains("expected identifier"));
        let err = parse("p.rank = 1;\n@dequeue { } junk = 1;").unwrap_err();
        assert!(err.message().contains("trailing"));
    }

    #[test]
    fn unary_minus_and_not() {
        let p = parse("p.rank = 0 - p.length;\nif (!(p.rank > 0)) { p.rank = 0; }").unwrap();
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn negated_literals_fold() {
        let p = parse_unchecked("p.rank = -5;").unwrap();
        match &p.body[0].kind {
            StmtKind::Assign(_, e) => assert_eq!(e.kind, ExprKind::Num(-5)),
            other => panic!("unexpected {other:?}"),
        }
        // Negating a non-literal still desugars to 0 - e.
        let p = parse_unchecked("p.rank = -p.length;").unwrap();
        match &p.body[0].kind {
            StmtKind::Assign(_, e) => {
                assert!(matches!(&e.kind, ExprKind::Bin(BinOp::Sub, z, _)
                    if z.kind == ExprKind::Num(0)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spans_cover_their_constructs() {
        let src = "state vt = 0;\np.rank = vt + 3;";
        let p = parse(src).unwrap();
        assert_eq!(&src[p.states[0].span.lo..p.states[0].span.hi], "vt");
        let s = &p.body[0];
        assert_eq!(&src[s.span.lo..s.span.hi], "p.rank = vt + 3;");
        match &s.kind {
            StmtKind::Assign(lv, e) => {
                assert_eq!(&src[lv.span.lo..lv.span.hi], "p.rank");
                assert_eq!(&src[e.span.lo..e.span.hi], "vt + 3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let src = format!("p.rank = {}1{};", "(".repeat(500), ")".repeat(500));
        let err = parse_unchecked(&src).unwrap_err();
        assert!(err.message().contains("nesting"), "{err}");
        // And just under the limit parses fine.
        let ok = format!("p.rank = {}1{};", "(".repeat(20), ")".repeat(20));
        parse_unchecked(&ok).unwrap();
    }
}
