//! Lexer and recursive-descent parser for domino-lite.
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! program   := decl* stmt* deq?
//! decl      := "state" ident "=" int ";"
//!            | "statemap" ident ";"
//!            | "param" ident "=" int ";"
//! deq       := "@dequeue" block
//! stmt      := lvalue "=" expr ";"
//!            | "if" "(" expr ")" block ("else" (block | if-stmt))?
//! block     := "{" stmt* "}"
//! lvalue    := ident | ident "[" "flow" "]" | ("p"|"pkt") "." ident
//! expr      := or-chain of comparisons over additive/multiplicative
//!              terms; `min(a,b)`, `max(a,b)`, `flow in map`, `!e`,
//!              parentheses, integers (optionally negative), idents,
//!              fields, map reads.
//! ```

use crate::ast::{BinOp, Expr, LValue, Program, StateDecl, Stmt};
use core::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, ParseError> {
        self.skip_ws_and_comments();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(Spanned {
                tok: Tok::Eof,
                line,
                col,
            });
        };
        // Identifiers / keywords (includes '@' for @dequeue).
        if c.is_ascii_alphabetic() || c == b'_' || c == b'@' {
            let mut s = String::new();
            s.push(self.bump().unwrap() as char);
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    s.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            return Ok(Spanned {
                tok: Tok::Ident(s),
                line,
                col,
            });
        }
        // Numbers (decimal; underscores allowed).
        if c.is_ascii_digit() {
            let mut v: i64 = 0;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    let d = (self.bump().unwrap() - b'0') as i64;
                    v = v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add(d))
                        .ok_or(ParseError {
                            message: "integer literal overflows i64".into(),
                            line,
                            col,
                        })?;
                } else if c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Spanned {
                tok: Tok::Num(v),
                line,
                col,
            });
        }
        // Punctuation (two-char first).
        let two: Option<&'static str> = match (c, self.peek2()) {
            (b'<', Some(b'=')) => Some("<="),
            (b'>', Some(b'=')) => Some(">="),
            (b'=', Some(b'=')) => Some("=="),
            (b'!', Some(b'=')) => Some("!="),
            (b'&', Some(b'&')) => Some("&&"),
            (b'|', Some(b'|')) => Some("||"),
            _ => None,
        };
        if let Some(p) = two {
            self.bump();
            self.bump();
            return Ok(Spanned {
                tok: Tok::Punct(p),
                line,
                col,
            });
        }
        let one: &'static str = match c {
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'/' => "/",
            b'%' => "%",
            b'<' => "<",
            b'>' => ">",
            b'=' => "=",
            b'!' => "!",
            b'(' => "(",
            b')' => ")",
            b'{' => "{",
            b'}' => "}",
            b'[' => "[",
            b']' => "]",
            b';' => ";",
            b',' => ",",
            b'.' => ".",
            other => {
                return Err(ParseError {
                    message: format!("unexpected character '{}'", other as char),
                    line,
                    col,
                })
            }
        };
        self.bump();
        Ok(Spanned {
            tok: Tok::Punct(one),
            line,
            col,
        })
    }
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> (usize, usize) {
        (self.toks[self.i].line, self.toks[self.i].col)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.pos();
        ParseError {
            message: msg.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_int(&mut self) -> Result<i64, ParseError> {
        // Allow a leading minus.
        let neg = matches!(self.peek(), Tok::Punct("-"));
        if neg {
            self.bump();
        }
        match self.peek().clone() {
            Tok::Num(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program {
            states: vec![],
            maps: vec![],
            params: vec![],
            body: vec![],
            dequeue_body: vec![],
        };
        // Declarations.
        loop {
            if self.at_ident("state") {
                self.bump();
                let name = self.eat_ident()?;
                self.eat_punct("=")?;
                let init = self.eat_int()?;
                self.eat_punct(";")?;
                p.states.push(StateDecl { name, init });
            } else if self.at_ident("statemap") {
                self.bump();
                let name = self.eat_ident()?;
                self.eat_punct(";")?;
                p.maps.push(name);
            } else if self.at_ident("param") {
                self.bump();
                let name = self.eat_ident()?;
                self.eat_punct("=")?;
                let init = self.eat_int()?;
                self.eat_punct(";")?;
                p.params.push(StateDecl { name, init });
            } else {
                break;
            }
        }
        // Body.
        while !matches!(self.peek(), Tok::Eof) && !self.at_ident("@dequeue") {
            let s = self.stmt(&p)?;
            p.body.push(s);
        }
        // Optional dequeue hook.
        if self.at_ident("@dequeue") {
            self.bump();
            p.dequeue_body = self.block(&p)?;
        }
        match self.peek() {
            Tok::Eof => Ok(p),
            other => Err(self.err(format!("trailing input: {other:?}"))),
        }
    }

    fn block(&mut self, ctx: &Program) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        let mut out = vec![];
        while !matches!(self.peek(), Tok::Punct("}")) {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unterminated block"));
            }
            out.push(self.stmt(ctx)?);
        }
        self.eat_punct("}")?;
        Ok(out)
    }

    fn stmt(&mut self, ctx: &Program) -> Result<Stmt, ParseError> {
        if self.at_ident("if") {
            self.bump();
            self.eat_punct("(")?;
            let cond = self.expr(ctx)?;
            self.eat_punct(")")?;
            let then = self.block(ctx)?;
            let otherwise = if self.at_ident("else") {
                self.bump();
                if self.at_ident("if") {
                    vec![self.stmt(ctx)?]
                } else {
                    self.block(ctx)?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        // Assignment.
        let lv = self.lvalue()?;
        self.eat_punct("=")?;
        let e = self.expr(ctx)?;
        self.eat_punct(";")?;
        Ok(Stmt::Assign(lv, e))
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.eat_ident()?;
        if (name == "p" || name == "pkt") && matches!(self.peek(), Tok::Punct(".")) {
            self.bump();
            let field = self.eat_ident()?;
            return Ok(LValue::Field(field));
        }
        if matches!(self.peek(), Tok::Punct("[")) {
            self.bump();
            let key = self.eat_ident()?;
            if key != "flow" {
                return Err(self.err("state maps are keyed by 'flow' only"));
            }
            self.eat_punct("]")?;
            return Ok(LValue::MapPut(name));
        }
        Ok(LValue::Var(name))
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative.
    fn expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        self.or_expr(ctx)
    }

    fn or_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        let mut e = self.and_expr(ctx)?;
        while matches!(self.peek(), Tok::Punct("||")) {
            self.bump();
            let rhs = self.and_expr(ctx)?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr(ctx)?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            self.bump();
            let rhs = self.cmp_expr(ctx)?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        let e = self.add_expr(ctx)?;
        let op = match self.peek() {
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr(ctx)?;
            return Ok(Expr::Bin(op, Box::new(e), Box::new(rhs)));
        }
        Ok(e)
    }

    fn add_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr(ctx)?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr(ctx)?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn mul_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr(ctx)?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr(ctx)?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary_expr(&mut self, ctx: &Program) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Punct("!") => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr(ctx)?)))
            }
            Tok::Punct("-") => {
                self.bump();
                let e = self.unary_expr(ctx)?;
                Ok(Expr::Bin(BinOp::Sub, Box::new(Expr::Num(0)), Box::new(e)))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr(ctx)?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Num(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            Tok::Ident(name) => {
                self.bump();
                // min/max calls
                if (name == "min" || name == "max") && matches!(self.peek(), Tok::Punct("(")) {
                    self.bump();
                    let a = self.expr(ctx)?;
                    self.eat_punct(",")?;
                    let b = self.expr(ctx)?;
                    self.eat_punct(")")?;
                    return Ok(if name == "min" {
                        Expr::Min(Box::new(a), Box::new(b))
                    } else {
                        Expr::Max(Box::new(a), Box::new(b))
                    });
                }
                // p.field / pkt.field
                if (name == "p" || name == "pkt") && matches!(self.peek(), Tok::Punct(".")) {
                    self.bump();
                    let field = self.eat_ident()?;
                    return Ok(Expr::Field(field));
                }
                // flow in map
                if name == "flow" && self.at_ident("in") {
                    self.bump();
                    let map = self.eat_ident()?;
                    return Ok(Expr::MapContains(map));
                }
                // map[flow]
                if matches!(self.peek(), Tok::Punct("[")) {
                    self.bump();
                    let key = self.eat_ident()?;
                    if key != "flow" {
                        return Err(self.err("state maps are keyed by 'flow' only"));
                    }
                    self.eat_punct("]")?;
                    return Ok(Expr::MapGet(name));
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse a domino-lite program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = matches!(t.tok, Tok::Eof);
        toks.push(t);
        if eof {
            break;
        }
    }
    let mut p = Parser { toks, i: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, LValue, Stmt};

    #[test]
    fn parses_declarations() {
        let p = parse("state vt = 0;\nstatemap last_finish;\nparam r = 125;\np.rank = 1;").unwrap();
        assert_eq!(p.states.len(), 1);
        assert_eq!(p.maps, vec!["last_finish"]);
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parses_negative_init() {
        let p = parse("state x = -5; p.rank = x;").unwrap();
        assert_eq!(p.states[0].init, -5);
    }

    #[test]
    fn parses_if_else_and_membership() {
        let p = parse("statemap m;\nif (flow in m) { p.rank = m[flow]; } else { p.rank = 0; }")
            .unwrap();
        match &p.body[0] {
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                assert_eq!(*cond, Expr::MapContains("m".into()));
                assert_eq!(then.len(), 1);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_min_max_and_precedence() {
        let p = parse("p.rank = max(1, 2) + 3 * 4;").unwrap();
        match &p.body[0] {
            Stmt::Assign(LValue::Field(f), Expr::Bin(BinOp::Add, lhs, rhs)) => {
                assert_eq!(f, "rank");
                assert!(matches!(**lhs, Expr::Max(_, _)));
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_map_assignment_and_field_read() {
        let p = parse("statemap lf;\nlf[flow] = p.start + p.length / 2;").unwrap();
        assert!(matches!(&p.body[0], Stmt::Assign(LValue::MapPut(m), _) if m == "lf"));
    }

    #[test]
    fn parses_dequeue_section() {
        let p = parse("state vt = 0;\np.rank = vt;\n@dequeue { vt = max(vt, rank); }").unwrap();
        assert_eq!(p.dequeue_body.len(), 1);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse(
            "p.x = 0;\nif (p.a > 1) { p.x = 1; } else if (p.a > 0) { p.x = 2; } else { p.x = 3; }",
        )
        .unwrap();
        match &p.body[1] {
            Stmt::If { otherwise, .. } => {
                assert_eq!(otherwise.len(), 1);
                assert!(matches!(otherwise[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let p = parse("// a comment\nparam B = 1_500_000; # another\np.rank = B;").unwrap();
        assert_eq!(p.params[0].init, 1_500_000);
    }

    #[test]
    fn error_has_position() {
        let err = parse("p.rank = ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn rejects_non_flow_map_key() {
        let err = parse("statemap m;\nm[other] = 1;").unwrap_err();
        assert!(err.message.contains("keyed by 'flow'"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("p.rank = 1; }").unwrap_err();
        assert!(err.message.contains("expected identifier"));
        let err = parse("p.rank = 1;\n@dequeue { } junk = 1;").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn unary_minus_and_not() {
        let p = parse("p.rank = -p.slack;\nif (!(p.a > 0)) { p.rank = 0; }").unwrap();
        assert_eq!(p.body.len(), 2);
    }
}
