//! Mapping compiled transactions onto the `pifo-hw` block model.
//!
//! The last leg of the figure-program pipeline: after the front-end
//! (lex → parse → check) and the atom analysis
//! ([`crate::pipeline::analyze`]), this module places the program on the
//! paper's hardware — one stateful atom per state cluster, positioned at
//! the pipeline stage its data dependencies dictate, plus stateless ALUs
//! for the packet-field computations, all feeding a
//! [`pifo_hw::BlockConfig`]-sized PIFO block (§5).
//!
//! ```
//! use domino_lite::{figures, parse, pipeline, hwmap};
//!
//! let prog = parse(figures::STFQ_SRC).unwrap();
//! let report = pipeline::analyze(&prog).unwrap();
//! let hw = hwmap::map_to_hw(&prog, &report);
//! assert_eq!(hw.stateful_atoms.len(), 1); // {last_finish, virtual_time}
//! assert_eq!(hw.block.n_flows, 1024);     // Trident baseline
//! ```

use crate::ast::{AtomKind, LValueKind, Program};
use crate::pipeline::{flatten, stage_info, state_clusters, PipelineReport};
use core::fmt;
use pifo_hw::BlockConfig;

/// One stateful atom placed in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomPlacement {
    /// 1-based pipeline stage (data-dependency depth of the cluster's
    /// fused update; clusters only written in `@dequeue` sit at stage 1).
    pub stage: usize,
    /// The state variables the atom owns (one cluster).
    pub vars: Vec<String>,
    /// The template the atom must instantiate.
    pub atom: AtomKind,
}

/// A transaction mapped onto the hardware: atom placements + the PIFO
/// block the computed rank feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwPipelineConfig {
    /// Pipeline depth (stages) of the enqueue transaction.
    pub stages: usize,
    /// Stateful atoms, one per state cluster, in placement order.
    pub stateful_atoms: Vec<AtomPlacement>,
    /// Stateless ALUs (packet-field assignments).
    pub stateless_alus: usize,
    /// The strongest template any placed atom needs (max over
    /// `stateful_atoms`, `Stateless` when there are none).
    pub required_atom: AtomKind,
    /// The PIFO block this transaction's rank feeds.
    pub block: BlockConfig,
}

impl fmt::Display for HwPipelineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} stage(s), {} stateless ALU(s), required atom {}",
            self.stages, self.stateless_alus, self.required_atom
        )?;
        for a in &self.stateful_atoms {
            writeln!(
                f,
                "  stage {}: {} atom on {{{}}}",
                a.stage,
                a.atom,
                a.vars.join(", ")
            )?;
        }
        write!(
            f,
            "  -> PIFO block: {} flows x {} lpifos, {}-bit rank, {}-element store",
            self.block.n_flows,
            self.block.n_logical_pifos,
            self.block.rank_bits,
            self.block.rank_store_capacity
        )
    }
}

/// Map an analyzed program onto a block of the given size.
///
/// The `report` must come from [`crate::pipeline::analyze`] on the same
/// program (its `clusters`/`cluster_atoms` drive the placement).
pub fn map_to_block(
    prog: &Program,
    report: &PipelineReport,
    block: BlockConfig,
) -> HwPipelineConfig {
    // Recompute the clustering (identical order to `analyze`) to get the
    // per-cluster stage placement from the dependency walk.
    let clusters = state_clusters(prog).clusters;
    let (_, cluster_stage) = stage_info(&flatten(&prog.body), prog, &clusters);

    let mut stateful_atoms: Vec<AtomPlacement> = report
        .clusters
        .iter()
        .zip(&report.cluster_atoms)
        .enumerate()
        .map(|(i, (vars, atom))| AtomPlacement {
            stage: cluster_stage.get(&i).copied().unwrap_or(1),
            vars: vars.clone(),
            atom: *atom,
        })
        .collect();
    stateful_atoms.sort_by(|a, b| (a.stage, &a.vars).cmp(&(b.stage, &b.vars)));

    let stateless_alus = flatten(&prog.body)
        .iter()
        .filter(|ga| matches!(ga.lhs.kind, LValueKind::Field(_)))
        .count();

    HwPipelineConfig {
        stages: report.stages,
        required_atom: report.required_atom,
        stateful_atoms,
        stateless_alus,
        block,
    }
}

/// [`map_to_block`] with the paper's Trident-class baseline block
/// ([`BlockConfig::default`]).
pub fn map_to_hw(prog: &Program, report: &PipelineReport) -> HwPipelineConfig {
    map_to_block(prog, report, BlockConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::parser::parse;
    use crate::pipeline::analyze;

    #[test]
    fn stfq_places_one_pairs_atom() {
        let prog = parse(figures::STFQ_SRC).unwrap();
        let report = analyze(&prog).unwrap();
        let hw = map_to_hw(&prog, &report);
        assert_eq!(hw.stateful_atoms.len(), 1);
        let atom = &hw.stateful_atoms[0];
        assert_eq!(atom.atom, AtomKind::Pairs);
        assert_eq!(atom.vars, vec!["last_finish", "virtual_time"]);
        assert!(atom.stage >= 1 && atom.stage <= hw.stages);
        assert!(hw.stateless_alus >= 3, "start/serv/rank field writes");
        assert_eq!(hw.required_atom, AtomKind::Pairs);
    }

    #[test]
    fn lstf_is_all_stateless() {
        let prog = parse(figures::LSTF_SRC).unwrap();
        let report = analyze(&prog).unwrap();
        let hw = map_to_hw(&prog, &report);
        assert!(hw.stateful_atoms.is_empty());
        assert_eq!(hw.required_atom, AtomKind::Stateless);
        assert_eq!(hw.stateless_alus, 2);
    }

    #[test]
    fn every_figure_maps_within_its_stage_budget() {
        for (name, src) in figures::all_figures() {
            let prog = parse(src).unwrap();
            let report = analyze(&prog).unwrap();
            let hw = map_to_hw(&prog, &report);
            assert_eq!(hw.stages, report.stages, "{name}");
            for a in &hw.stateful_atoms {
                assert!(
                    a.stage >= 1 && a.stage <= hw.stages.max(1),
                    "{name}: atom {{{}}} at stage {} of {}",
                    a.vars.join(", "),
                    a.stage,
                    hw.stages
                );
                assert!(!a.vars.is_empty(), "{name}");
            }
            // The display form renders without panicking and names the block.
            let shown = hw.to_string();
            assert!(shown.contains("PIFO block"), "{shown}");
        }
    }

    #[test]
    fn custom_block_is_threaded_through() {
        let prog = parse(figures::TBF_SRC).unwrap();
        let report = analyze(&prog).unwrap();
        let hw = map_to_block(&prog, &report, BlockConfig::tiny());
        assert_eq!(hw.block.n_flows, 8);
    }
}
