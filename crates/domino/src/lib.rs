//! # domino-lite
//!
//! A small reimplementation of the Domino substrate the paper builds on
//! (§4.1): scheduling and shaping transactions are *programs*, compiled
//! onto a pipeline of hardware atoms, and rejected when no atom template
//! can execute their state updates atomically at line rate.
//!
//! The compiler is a staged front-end plus three back-end consumers:
//!
//! * [`lexer`] — source text → spanned tokens (`Span { lo, hi }` byte
//!   offsets);
//! * [`parser`] — recursive-descent over the token stream; every AST
//!   node carries its span; [`parse`] = lex → parse → check,
//!   [`parser::parse_unchecked`] stops after the grammar;
//! * [`mod@check`] — the stage checker: resolves state vs. packet-field vs.
//!   builtin identifiers, rejects use-before-def and type-confused
//!   programs, and enforces the §4.3 single-stage atomicity rule before
//!   analysis;
//! * [`diag`] — the shared [`diag::Diagnostic`] every front-end error
//!   renders as a caret-underlined snippet;
//! * [`interp`] — deterministic checked-integer execution with serial
//!   packet-transaction semantics;
//! * [`pipeline`] — the atom-pipeline compiler: state-variable
//!   clustering, atom classification against the vocabulary of §4.1
//!   (up to `Pairs`), and pipeline-depth estimation;
//! * [`hwmap`] — places the analyzed program on a `pifo-hw` block:
//!   per-stage atom placement plus the [`pifo_hw::BlockConfig`] the
//!   computed rank feeds;
//! * [`adapter`] — run any program as a `pifo-core`
//!   scheduling/shaping transaction, interchangeable with the native
//!   Rust implementations in `pifo-algos`.
//!
//! ```
//! use domino_lite::{figures, pipeline, ast::AtomKind};
//!
//! // The paper's §4.1 claim, executable: STFQ needs the Pairs atom.
//! let prog = domino_lite::parser::parse(figures::STFQ_SRC).unwrap();
//! let report = pipeline::analyze(&prog).unwrap();
//! assert_eq!(report.required_atom, AtomKind::Pairs);
//!
//! // Front-end errors carry spans and render caret snippets.
//! let err = domino_lite::parse("p.rank = p.start;").unwrap_err();
//! assert!(err.render().contains("^"));
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod adapter;
pub mod ast;
pub mod check;
pub mod diag;
pub mod figures;
pub mod hwmap;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pipeline;

pub use adapter::{DominoScheduling, DominoShaping};
pub use ast::{AtomKind, Program};
pub use check::{check, CheckError};
pub use diag::{Diagnostic, Span};
pub use hwmap::{map_to_hw, HwPipelineConfig};
pub use interp::{Interp, PacketView, RuntimeError};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, parse_unchecked, ParseError};
pub use pipeline::{analyze, compile, CompileError, PipelineReport};
