//! # domino-lite
//!
//! A small reimplementation of the Domino substrate the paper builds on
//! (§4.1): scheduling and shaping transactions are *programs*, compiled
//! onto a pipeline of hardware atoms, and rejected when no atom template
//! can execute their state updates atomically at line rate.
//!
//! Four pieces:
//!
//! * [`parser`] — a C-ish surface syntax for the paper's transaction
//!   pseudocode (Figs 1, 4c, 6, 7, 8);
//! * [`interp`] — deterministic checked-integer execution with serial
//!   packet-transaction semantics;
//! * [`pipeline`] — the atom-pipeline compiler: state-variable
//!   clustering, atom classification against the vocabulary of §4.1
//!   (up to `Pairs`), and pipeline-depth estimation;
//! * [`adapter`] — run any program as a `pifo-core`
//!   scheduling/shaping transaction, interchangeable with the native
//!   Rust implementations in `pifo-algos`.
//!
//! ```
//! use domino_lite::{figures, pipeline, ast::AtomKind};
//!
//! // The paper's §4.1 claim, executable: STFQ needs the Pairs atom.
//! let prog = domino_lite::parser::parse(figures::STFQ_SRC).unwrap();
//! let report = pipeline::analyze(&prog).unwrap();
//! assert_eq!(report.required_atom, AtomKind::Pairs);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod adapter;
pub mod ast;
pub mod figures;
pub mod interp;
pub mod parser;
pub mod pipeline;

pub use adapter::{DominoScheduling, DominoShaping};
pub use ast::{AtomKind, Program};
pub use interp::{Interp, PacketView, RuntimeError};
pub use parser::{parse, ParseError};
pub use pipeline::{analyze, compile, CompileError, PipelineReport};
