//! The hand-rolled lexer: source text → spanned token stream.
//!
//! The first of the three front-end stages (lex → parse → check). Every
//! token carries a byte-offset [`Span`] into the original source, which
//! the parser threads into AST nodes and every later stage threads into
//! diagnostics. The token vocabulary is pinned by the golden corpus in
//! `tests/lexer_corpus.rs` and documented in `grammar.md`.
//!
//! Lexical rules:
//!
//! * whitespace separates tokens; `// …` and `# …` comments run to end
//!   of line and produce no tokens;
//! * identifiers are `[A-Za-z_@][A-Za-z0-9_]*` (the leading `@` exists
//!   only for the `@dequeue` keyword) and are capped at
//!   [`MAX_IDENT_LEN`] characters;
//! * numbers are decimal digit runs with `_` separators allowed after
//!   the first digit; values must fit `i64`;
//! * operators and punctuation are the fixed sets in
//!   [`TWO_CHAR_PUNCT`] / [`ONE_CHAR_PUNCT`], longest-match-first;
//! * anything else is a spanned error — the lexer never panics, even on
//!   arbitrary (non-UTF-8-lossy, multibyte, control) input.

use crate::diag::{ParseError, Span};
use core::fmt;

/// Longest identifier the language accepts, in characters.
pub const MAX_IDENT_LEN: usize = 256;

/// Two-character operators, matched before any one-character token.
pub const TWO_CHAR_PUNCT: [&str; 6] = ["<=", ">=", "==", "!=", "&&", "||"];

/// One-character operators and delimiters.
pub const ONE_CHAR_PUNCT: [&str; 18] = [
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[", "]", ";", ",", ".",
];

/// What a token is, independent of where it sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Decimal integer literal.
    Num(i64),
    /// Operator / delimiter — one of [`TWO_CHAR_PUNCT`] or
    /// [`ONE_CHAR_PUNCT`].
    Punct(&'static str),
    /// End of input (always the final token of a lexed stream).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "Ident({s})"),
            TokenKind::Num(v) => write!(f, "Num({v})"),
            TokenKind::Punct(p) => write!(f, "Punct({p})"),
            TokenKind::Eof => write!(f, "Eof"),
        }
    }
}

impl TokenKind {
    /// How the token reads in an error message ("expected ';', found X").
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("'{s}'"),
            TokenKind::Num(v) => format!("number {v}"),
            TokenKind::Punct(p) => format!("'{p}'"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token and its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// Byte span in the original source.
    pub span: Span,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.span)
    }
}

/// Lex `src` into a token stream ending with a single [`TokenKind::Eof`].
///
/// Errors carry the span of the offending character or literal and
/// render a caret snippet:
///
/// ```
/// let err = domino_lite::lexer::lex("p.rank = $;").unwrap_err();
/// assert!(err.render().contains("^"));
/// assert_eq!(err.col(), 10);
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut pos = 0usize;

    'outer: while pos < bytes.len() {
        let c = bytes[pos];
        // Whitespace.
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Comments: `// …` and `# …` to end of line.
        if c == b'#' || (c == b'/' && bytes.get(pos + 1) == Some(&b'/')) {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        // Identifiers / keywords ('@' only starts `@dequeue`).
        if c.is_ascii_alphabetic() || c == b'_' || c == b'@' {
            let lo = pos;
            pos += 1;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            let span = Span::new(lo, pos);
            if pos - lo > MAX_IDENT_LEN {
                return Err(ParseError::new(
                    src,
                    span,
                    format!(
                        "identifier is {} characters long; the limit is {MAX_IDENT_LEN}",
                        pos - lo
                    ),
                ));
            }
            toks.push(Token {
                kind: TokenKind::Ident(src[lo..pos].to_string()),
                span,
            });
            continue;
        }
        // Numbers: decimal with `_` separators after the first digit.
        if c.is_ascii_digit() {
            let lo = pos;
            let mut v: i64 = 0;
            let mut overflowed = false;
            while pos < bytes.len() {
                let d = bytes[pos];
                if d.is_ascii_digit() {
                    v = match v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((d - b'0') as i64))
                    {
                        Some(x) => x,
                        None => {
                            overflowed = true;
                            0
                        }
                    };
                    pos += 1;
                } else if d == b'_' {
                    pos += 1;
                } else {
                    break;
                }
            }
            let span = Span::new(lo, pos);
            if overflowed {
                return Err(ParseError::new(src, span, "integer literal overflows i64"));
            }
            toks.push(Token {
                kind: TokenKind::Num(v),
                span,
            });
            continue;
        }
        // Two-character operators, longest match first.
        if pos + 1 < bytes.len() {
            let pair = &src.as_bytes()[pos..pos + 2];
            for p in TWO_CHAR_PUNCT {
                if p.as_bytes() == pair {
                    toks.push(Token {
                        kind: TokenKind::Punct(p),
                        span: Span::new(pos, pos + 2),
                    });
                    pos += 2;
                    continue 'outer;
                }
            }
        }
        // One-character operators / delimiters.
        for p in ONE_CHAR_PUNCT {
            if p.as_bytes()[0] == c {
                toks.push(Token {
                    kind: TokenKind::Punct(p),
                    span: Span::new(pos, pos + 1),
                });
                pos += 1;
                continue 'outer;
            }
        }
        // Anything else is an error, spanning the whole character (which
        // may be multibyte).
        let ch = src[pos..].chars().next().expect("pos is a char boundary");
        return Err(ParseError::new(
            src,
            Span::new(pos, pos + ch.len_utf8()),
            format!("unexpected character '{}'", ch.escape_default()),
        ));
    }

    toks.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(src.len()),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_spanned_stream() {
        let toks = lex("state vt = 0;").unwrap();
        let rendered: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "Ident(state)@0..5",
                "Ident(vt)@6..8",
                "Punct(=)@9..10",
                "Num(0)@11..12",
                "Punct(;)@12..13",
                "Eof@13..13",
            ]
        );
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(
            kinds("<= < == = != ! && ||"),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("=="),
                TokenKind::Punct("="),
                TokenKind::Punct("!="),
                TokenKind::Punct("!"),
                TokenKind::Punct("&&"),
                TokenKind::Punct("||"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_underscores() {
        assert_eq!(
            kinds("// full line\nparam B = 1_500_000; # trailing"),
            vec![
                TokenKind::Ident("param".into()),
                TokenKind::Ident("B".into()),
                TokenKind::Punct("="),
                TokenKind::Num(1_500_000),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn empty_input_is_just_eof() {
        let toks = lex("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
        assert_eq!(toks[0].span, Span::point(0));
    }

    #[test]
    fn overflow_literal_is_spanned_error() {
        let err = lex("x = 99999999999999999999;").unwrap_err();
        assert!(err.message().contains("overflows i64"), "{err}");
        assert_eq!(err.span(), Span::new(4, 24));
    }

    #[test]
    fn bad_char_is_spanned_error() {
        let err = lex("p.rank = $;").unwrap_err();
        assert_eq!(err.span(), Span::new(9, 10));
        assert!(err.message().contains("unexpected character '$'"));
        // Multibyte characters span their full UTF-8 width.
        let err = lex("p.rank = §;").unwrap_err();
        assert_eq!(err.span().len(), '§'.len_utf8());
    }

    #[test]
    fn identifier_length_boundary() {
        let ok = "a".repeat(MAX_IDENT_LEN);
        assert_eq!(kinds(&ok).len(), 2, "limit-length identifier lexes");
        let too_long = "a".repeat(MAX_IDENT_LEN + 1);
        let err = lex(&too_long).unwrap_err();
        assert!(err.message().contains("limit is 256"), "{err}");
        assert_eq!(err.span(), Span::new(0, MAX_IDENT_LEN + 1));
    }

    #[test]
    fn ampersand_alone_is_error_not_and() {
        let err = lex("a & b").unwrap_err();
        assert!(err.message().contains("'&'"), "{err}");
        assert_eq!(err.span(), Span::new(2, 3));
    }
}
