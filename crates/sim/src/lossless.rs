//! The lossless fabric: PFC-style backpressure instead of drops.
//!
//! §6.2 of the paper names priority flow control pause/resume as a
//! concern the programmable scheduler must absorb; §5.1's shared buffer
//! computes admission from "occupancies of various flows and ports".
//! This module combines both into a closed-loop fabric: instead of
//! letting [`AdmissionPolicy`] *drop*
//! a packet the thresholds reject, a [`LosslessFabric`] **pauses the
//! traffic sources that feed the congested port** and resumes them once
//! the buffer drains — the discipline RDMA-class datacenter fabrics
//! run, where a single lost packet costs a transport-level recovery.
//!
//! # The control loop
//!
//! Per `(port, class)` pair the fabric keeps a two-watermark hysteresis
//! ([`Watermarks`]): when the pair's buffered pressure (packets resident
//! in the port tree plus packets held at ingress) reaches `xoff` — or
//! the pool-side [`PoolHandle::would_admit`] probe goes false — a
//! **pause** is asserted; once pressure falls back to `xon` *and* the
//! pool admits again, a **resume** follows. `xon < xoff` keeps the
//! signal from chattering. Pause/resume control frames reach the
//! sources after [`LosslessConfig::wire_delay`]; packets already in
//! flight during that window land in a bounded per-port **headroom
//! (skid) buffer**, sized exactly like a real PFC skid buffer absorbs
//! the round-trip worth of line-rate traffic. Sources receive the
//! signal through [`TrafficSource::pause`]/[`TrafficSource::resume`]:
//! clock-driven sources shift their schedule; oblivious sources keep
//! their timestamps and the fabric simply holds their packets back.
//!
//! Ingress admission into a port tree is gated on the **full port ×
//! flow verdict** ([`PoolHandle::would_admit_flow`]): a packet whose
//! flow or port threshold would reject it waits in the skid buffer
//! instead of being dropped, and the resulting pressure is what trips
//! the pause watermark — drops become backpressure.
//!
//! # Determinism
//!
//! The driver executes one global event loop in `(time, kind, index)`
//! order — control-frame deliveries before emissions before scheduling
//! rounds at equal instants — and rounds reuse the exact
//! [`Switch`]-fabric round semantics (admit-by-arrival-instant, `burst`
//! dequeues decided at the round time, back-to-back transmit). All
//! decisions read tree/pool state that is identical across the exact
//! engines and both round APIs, so departure traces *and* the
//! pause/resume event log are bit-identical across backends and
//! [`DrainMode`]s. `DrainMode::Parallel` maps onto the batched
//! sequential order: a lossless fabric is globally coupled through the
//! pause wire, the same serial dependency chain that already forces
//! shared-pool fabrics onto the sequential path.
//!
//! # Faults and the watchdog
//!
//! A [`FaultPlan`] injects the classic lossless-fabric failure modes —
//! dead egress port, slow drain, a pool stuck full, delayed resume
//! frames — and the **pause watchdog** turns what would be a silent
//! hang into a typed [`FabricStall`]: any `(port, class)` pause held
//! longer than [`LosslessConfig::max_pause`], a scheduling-round budget
//! blowout, or a quiescent fabric with packets still trapped
//! (circular wait) stops the run with a diagnosis instead of looping.

use crate::port::Departure;
use crate::switch::{DrainMode, PortTrace, Switch, SwitchRun};
use crate::traffic::TrafficSource;
use pifo_core::prelude::*;
use pifo_core::telemetry::NO_NODE;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// The two-watermark pause hysteresis: assert pause at `xoff`, release
/// at `xon`, with `xon < xoff` so the signal cannot chatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Pause when a `(port, class)` pair's pressure reaches this many
    /// packets.
    pub xoff: usize,
    /// Resume once pressure has drained back to this many packets.
    pub xon: usize,
}

impl Watermarks {
    /// Watermarks with `xon < xoff` hysteresis.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < xoff` and `xon < xoff`.
    pub fn new(xoff: usize, xon: usize) -> Self {
        assert!(
            xoff > 0 && xon < xoff,
            "watermarks need 0 < xoff and xon < xoff (got xoff={xoff}, xon={xon})"
        );
        Watermarks { xoff, xon }
    }
}

/// Everything that sizes the lossless control loop. Build with
/// [`LosslessConfig::new`] and adjust with the `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LosslessConfig {
    /// The pause/resume hysteresis per `(port, class)`.
    pub watermarks: Watermarks,
    /// Per-port skid-buffer slots beyond the trees: in-flight packets
    /// that arrive while pause propagates (or whose admission is gated)
    /// wait here. Overflowing the headroom is the only way a lossless
    /// fabric drops, and a correctly sized headroom — at least the
    /// packets a source can emit in one pause round trip — never does.
    pub headroom: usize,
    /// Propagation delay of pause/resume control frames from the switch
    /// to the sources (one way). Zero models an on-die wire.
    pub wire_delay: Nanos,
    /// Watchdog bound: a `(port, class)` pause continuously asserted
    /// longer than this is diagnosed as a [`FabricStall`] instead of
    /// being allowed to wedge the run.
    pub max_pause: Nanos,
    /// Watchdog bound on total scheduling rounds — the formal guarantee
    /// that any run (any fault plan) terminates.
    pub round_budget: u64,
}

impl LosslessConfig {
    /// A config with `Watermarks::new(xoff, xon)`, headroom sized to one
    /// `xoff` worth of packets (min 16), an on-die pause wire, a 10 ms
    /// watchdog, and a 10-million-round budget.
    pub fn new(xoff: usize, xon: usize) -> Self {
        LosslessConfig {
            watermarks: Watermarks::new(xoff, xon),
            headroom: xoff.max(16),
            wire_delay: Nanos::ZERO,
            max_pause: Nanos::from_millis(10),
            round_budget: 10_000_000,
        }
    }

    /// Set the per-port skid-buffer size.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is zero — a lossless fabric needs somewhere
    /// to put the in-flight packets.
    pub fn with_headroom(mut self, headroom: usize) -> Self {
        assert!(headroom > 0, "headroom must be positive");
        self.headroom = headroom;
        self
    }

    /// Set the pause-frame propagation delay.
    pub fn with_wire_delay(mut self, delay: Nanos) -> Self {
        self.wire_delay = delay;
        self
    }

    /// Set the pause watchdog bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_pause` is zero.
    pub fn with_max_pause(mut self, max_pause: Nanos) -> Self {
        assert!(max_pause > Nanos::ZERO, "max_pause must be positive");
        self.max_pause = max_pause;
        self
    }

    /// Set the scheduling-round budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_round_budget(mut self, budget: u64) -> Self {
        assert!(budget > 0, "round budget must be positive");
        self.round_budget = budget;
        self
    }

    /// The pool capacity below which `ports` ports could overrun the
    /// buffer even with every pause honored: each port may legitimately
    /// hold up to `xoff` packets in its tree (the pause only asserts at
    /// the watermark) plus a skid buffer of in-flight packets, so a
    /// shared pool of at least `ports × (xoff + headroom)` can never be
    /// forced over capacity by admitted traffic.
    pub fn min_pool_capacity(&self, ports: usize) -> usize {
        ports * (self.watermarks.xoff + self.headroom)
    }
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// Injected faults for robustness testing — the lossless-fabric failure
/// modes a pause watchdog exists to survive. Compose with the chainable
/// constructors; [`FaultPlan::default`] injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Ports whose transmitter is dead: they admit and buffer but never
    /// dequeue — the classic PFC head-of-line victim maker.
    pub dead_ports: Vec<usize>,
    /// `(port, k)` pairs: the port drains at `1/k` of the fabric line
    /// rate.
    pub slow_drain: Vec<(usize, u32)>,
    /// From this instant on, the pool admits nothing — as if another
    /// tenant wedged the shared buffer full.
    pub stuck_pool_at: Option<Nanos>,
    /// Extra delay added to **resume** frames only (pause frames stay
    /// prompt) — the asymmetry that turns transient congestion into
    /// pause storms.
    pub resume_delay: Nanos,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Kill `port`'s transmitter.
    pub fn dead_port(mut self, port: usize) -> Self {
        self.dead_ports.push(port);
        self
    }

    /// Drain `port` at `1/k` of the line rate.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn slow_port(mut self, port: usize, k: u32) -> Self {
        assert!(k > 0, "slow-drain factor must be >= 1");
        self.slow_drain.push((port, k));
        self
    }

    /// Wedge the pool full from `at` onward.
    pub fn stuck_pool(mut self, at: Nanos) -> Self {
        self.stuck_pool_at = Some(at);
        self
    }

    /// Delay every resume frame by `delay`.
    pub fn delayed_resume(mut self, delay: Nanos) -> Self {
        self.resume_delay = delay;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self == &FaultPlan::default()
    }
}

// ---------------------------------------------------------------------------
// Diagnoses and reports
// ---------------------------------------------------------------------------

/// Why a lossless run stalled (see [`FabricStall`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// A dead egress port is sitting on trapped packets.
    DeadPort {
        /// The dead port.
        port: usize,
    },
    /// The shared pool stopped admitting and never recovered.
    StuckPool,
    /// A pause stayed asserted past the watchdog bound with no dead
    /// port or stuck pool to blame — a pause storm.
    PauseStorm {
        /// The port whose pause exceeded the bound.
        port: usize,
    },
    /// The scheduling-round budget ran out before the fabric drained.
    RoundBudget {
        /// Rounds executed when the budget tripped.
        rounds: u64,
    },
    /// The fabric went quiescent — no deliverable control frame, no
    /// eligible emission, no runnable round — with packets still
    /// trapped: a circular wait between paused sources and gated
    /// ingress.
    CircularWait,
}

/// A typed stall diagnosis: what a lossless fabric reports **instead of
/// hanging** when a fault (or a misconfiguration) makes progress
/// impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricStall {
    /// What wedged.
    pub kind: StallKind,
    /// Simulated time of the diagnosis.
    pub at: Nanos,
    /// The longest pause still asserted at the diagnosis instant.
    pub paused_for: Nanos,
}

impl core::fmt::Display for FabricStall {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            StallKind::DeadPort { port } => write!(f, "dead port {port}")?,
            StallKind::StuckPool => write!(f, "stuck pool")?,
            StallKind::PauseStorm { port } => write!(f, "pause storm on port {port}")?,
            StallKind::RoundBudget { rounds } => {
                write!(f, "round budget exhausted after {rounds} rounds")?
            }
            StallKind::CircularWait => write!(f, "circular wait")?,
        }
        write!(
            f,
            " (stalled at {}, longest pause {})",
            self.at, self.paused_for
        )
    }
}

/// Pause or resume, as logged in [`PauseEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PauseAction {
    /// The watermark (or the pool probe) tripped: stop sending.
    Pause,
    /// Pressure drained: send again.
    Resume,
}

/// One switch-side pause-signal transition, logged at the instant the
/// watermark decision was made (frames reach sources `wire_delay`
/// later). The log is deterministic: identical runs produce identical
/// event sequences, across backends and drain modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseEvent {
    /// Decision instant.
    pub time: Nanos,
    /// Egress port asserting the signal.
    pub port: usize,
    /// Priority class the signal covers.
    pub class: u8,
    /// Pause or resume.
    pub action: PauseAction,
}

/// Per-source pause accounting for a lossless run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourcePauseStats {
    /// Pause notifications delivered to this source.
    pub pauses: u64,
    /// Resume notifications delivered to this source.
    pub resumes: u64,
    /// Total time spent paused.
    pub total_paused: Nanos,
    /// The longest single pause.
    pub max_pause: Nanos,
}

/// Everything a [`LosslessFabric`] run produced.
#[derive(Debug)]
pub struct LosslessRun {
    /// The per-port departure traces and misroute counter, exactly like
    /// a [`Switch::run`] (drops here count skid-buffer overflows — zero
    /// on a correctly sized fabric).
    pub run: SwitchRun,
    /// Every switch-side pause/resume transition, in decision order.
    pub pause_events: Vec<PauseEvent>,
    /// The stall diagnosis, if the watchdog stopped the run.
    pub stall: Option<FabricStall>,
    /// Pause accounting per source, indexed like the input sources.
    pub sources: Vec<SourcePauseStats>,
    /// Total switch-side pause-asserted time per port (summed across
    /// classes).
    pub port_paused: Vec<Nanos>,
    /// Peak skid-buffer occupancy per port.
    pub peak_skid: Vec<usize>,
    /// Packets lost to skid-buffer overflow (== `run.total_drops()`).
    pub skid_overflow: u64,
    /// Peak pool occupancy observed across the run.
    pub max_pool_live: usize,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// The merged telemetry of the run — tree-level trace events plus
    /// synthesized pause/resume/fault events and fabric-level gauges
    /// (`fabric.pool_live`, `fabric.paused_classes`,
    /// `fabric.skid_occupancy`). `None` unless the wrapped switch was
    /// built with [`crate::switch::SwitchBuilder::with_telemetry`].
    pub telemetry: Option<TelemetrySnapshot>,
}

impl LosslessRun {
    /// Total packets transmitted.
    pub fn total_departures(&self) -> usize {
        self.run.total_departures()
    }

    /// Total packets lost anywhere in the fabric (skid overflows; tree
    /// admission is gated, so trees never drop). Zero is the lossless
    /// contract.
    pub fn total_drops(&self) -> u64 {
        self.run.total_drops()
    }

    /// Switch-side pause events of one action kind.
    pub fn count_events(&self, action: PauseAction) -> usize {
        self.pause_events
            .iter()
            .filter(|e| e.action == action)
            .count()
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// A pause/resume control frame in flight from the switch to the
/// sources. Ordered by `(deliver, seq)` for the deterministic frame
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Frame {
    deliver: Nanos,
    seq: u64,
    port: usize,
    class: u8,
    action: PauseAction,
}

/// Per-`(port, class)` pressure and pause state.
#[derive(Debug, Default)]
struct ClassState {
    /// Packets of this class resident in the port's tree.
    occ: usize,
    /// Packets of this class waiting in the port's skid buffer.
    skid: usize,
    /// Switch-side pause assertion time, when asserted.
    paused_since: Option<Nanos>,
}

/// Per-port driver state (the tree itself stays in the switch, borrowed
/// per round exactly like `Switch::run`).
struct PortState {
    /// Decision time of the next scheduling round; `None` = parked
    /// (woken by emissions or by other ports' progress).
    t: Option<Nanos>,
    /// The transmitter is committed until this instant: arrivals may
    /// wake a parked or idle-hopping port but never rewind one
    /// mid-transmit.
    busy_until: Nanos,
    /// Horizon reached: no further rounds start.
    done: bool,
    trace: PortTrace,
    /// The PFC skid buffer: packets held at ingress, FIFO.
    skid: VecDeque<Packet>,
    /// Per-class pressure/pause state (BTreeMap for deterministic
    /// iteration order).
    classes: BTreeMap<u8, ClassState>,
    peak_skid: usize,
    paused_total: Nanos,
    /// Scratch for round dequeues.
    round: Vec<Packet>,
}

/// Per-source driver state.
struct SourceState {
    src: Box<dyn TrafficSource>,
    /// The next packet pulled from the source (its head of line).
    next: Option<Packet>,
    /// Classified target of `next`: `Some((port, class))`, or `None`
    /// for a misroute.
    target: Option<(usize, u8)>,
    /// True while the source-visible pause covers `next`'s target.
    blocked: bool,
    blocked_since: Nanos,
    /// Emissions may not precede this instant (set by resume delivery):
    /// packets stamped earlier are in-flight work released now.
    gate: Nanos,
    stats: SourcePauseStats,
}

/// Packets currently resident across the fabric's buffers: the shared
/// pool when one is attached, else the sum of the private slabs.
fn fabric_live(switch: &Switch) -> usize {
    match &switch.pool {
        Some(pool) => pool.borrow().live(),
        None => switch.ports.iter().map(|t| t.packet_buffer().live()).sum(),
    }
}

/// A [`Switch`] driven closed-loop: watermark-triggered PFC pause and
/// resume to the traffic sources instead of admission drops. Build the
/// switch as usual (a shared pool under
/// [`AdmissionPolicy::PortFlow`](pifo_core::pool::AdmissionPolicy) is
/// the intended configuration), wrap it, and [`run`](Self::run) it
/// against live [`TrafficSource`]s.
pub struct LosslessFabric {
    switch: Switch,
    cfg: LosslessConfig,
}

impl LosslessFabric {
    /// Wrap `switch` in the lossless control loop under `cfg`.
    pub fn new(switch: Switch, cfg: LosslessConfig) -> Self {
        LosslessFabric { switch, cfg }
    }

    /// The wrapped switch (tree/pool inspection after a run).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// The control-loop configuration.
    pub fn config(&self) -> &LosslessConfig {
        &self.cfg
    }

    /// Run `sources` through the fabric with no injected faults.
    pub fn run(&mut self, sources: Vec<Box<dyn TrafficSource>>, mode: DrainMode) -> LosslessRun {
        self.run_with_faults(sources, mode, &FaultPlan::none())
    }

    /// Run `sources` through the fabric under `faults`.
    ///
    /// Sources are polled lazily — a paused source is simply not asked
    /// for packets — and every decision happens in one deterministic
    /// global `(time, kind, index)` event order: control-frame
    /// deliveries, then emissions, then scheduling rounds at equal
    /// times, index-ordered within a kind. `mode` selects the tree API
    /// used inside rounds ([`DrainMode::Parallel`] maps to the batched
    /// sequential order — the pause wire couples every port, see the
    /// module docs); traces and pause logs are identical in all modes.
    pub fn run_with_faults(
        &mut self,
        sources: Vec<Box<dyn TrafficSource>>,
        mode: DrainMode,
        faults: &FaultPlan,
    ) -> LosslessRun {
        let per_packet = matches!(mode, DrainMode::PerPacket);
        let n = self.switch.ports.len();
        let (xoff, xon) = (self.cfg.watermarks.xoff, self.cfg.watermarks.xon);

        // Effective per-port drain rates under the slow-drain fault.
        let rate: Vec<u64> = (0..n)
            .map(|i| {
                let k = faults
                    .slow_drain
                    .iter()
                    .rev()
                    .find(|&&(p, _)| p == i)
                    .map_or(1, |&(_, k)| k.max(1));
                (self.switch.rate_bps / k as u64).max(1)
            })
            .collect();
        let dead = |i: usize| faults.dead_ports.contains(&i);

        let mut ports: Vec<PortState> = (0..n)
            .map(|_| PortState {
                t: None,
                busy_until: Nanos::ZERO,
                done: false,
                trace: PortTrace::default(),
                skid: VecDeque::new(),
                classes: BTreeMap::new(),
                peak_skid: 0,
                paused_total: Nanos::ZERO,
                round: Vec::with_capacity(self.switch.burst),
            })
            .collect();

        let mut srcs: Vec<SourceState> = sources
            .into_iter()
            .map(|mut src| {
                let next = src.next_packet();
                let target = next.as_ref().and_then(|p| {
                    let port = (self.switch.classifier)(p);
                    (port < n).then_some((port, p.class))
                });
                SourceState {
                    src,
                    next,
                    target,
                    blocked: false,
                    blocked_since: Nanos::ZERO,
                    gate: Nanos::ZERO,
                    stats: SourcePauseStats::default(),
                }
            })
            .collect();

        let mut frames: BinaryHeap<std::cmp::Reverse<Frame>> = BinaryHeap::new();
        let mut frame_seq = 0u64;
        let mut visible: HashSet<(usize, u8)> = HashSet::new();
        let mut pause_events: Vec<PauseEvent> = Vec::new();
        let mut misrouted = 0u64;
        let mut skid_overflow = 0u64;
        let mut max_pool_live = 0usize;
        let mut rounds = 0u64;
        let mut next_id = 0u64;
        let mut stall: Option<FabricStall> = None;
        // Fabric-level gauge sampling rides the global round counter —
        // identical round order in every mode keeps the series
        // bit-reproducible.
        let sample_every = self
            .switch
            .telemetry_config()
            .map(|c| c.sample_every.max(1));
        let mut g_pool = GaugeSeries::new("fabric.pool_live");
        let mut g_paused = GaugeSeries::new("fabric.paused_classes");
        let mut g_skid = GaugeSeries::new("fabric.skid_occupancy");

        // The switch-side pause evaluation for one port at `now`:
        // compare every class's pressure against the watermarks, emit
        // transitions, and schedule the control frames.
        macro_rules! eval_pause {
            ($i:expr, $now:expr) => {{
                let i: usize = $i;
                let now: Nanos = $now;
                let stuck = faults.stuck_pool_at.is_some_and(|t| now >= t);
                let pool_ok = !stuck && self.switch.ports[i].pool_handle().would_admit();
                let ps = &mut ports[i];
                for (&class, cs) in ps.classes.iter_mut() {
                    let pressure = cs.occ + cs.skid;
                    match cs.paused_since {
                        None if pressure >= xoff || !pool_ok => {
                            cs.paused_since = Some(now);
                            pause_events.push(PauseEvent {
                                time: now,
                                port: i,
                                class,
                                action: PauseAction::Pause,
                            });
                            frames.push(std::cmp::Reverse(Frame {
                                deliver: now + self.cfg.wire_delay,
                                seq: frame_seq,
                                port: i,
                                class,
                                action: PauseAction::Pause,
                            }));
                            frame_seq += 1;
                        }
                        Some(since) if pressure <= xon && pool_ok => {
                            cs.paused_since = None;
                            ps.paused_total += now.saturating_sub(since);
                            pause_events.push(PauseEvent {
                                time: now,
                                port: i,
                                class,
                                action: PauseAction::Resume,
                            });
                            frames.push(std::cmp::Reverse(Frame {
                                deliver: now + self.cfg.wire_delay + faults.resume_delay,
                                seq: frame_seq,
                                port: i,
                                class,
                                action: PauseAction::Resume,
                            }));
                            frame_seq += 1;
                        }
                        _ => {}
                    }
                }
            }};
        }

        loop {
            // --- choose the next event: (time, kind, index) order ----
            let next_control = frames.peek().map(|r| r.0.deliver);
            let mut next_emit: Option<(Nanos, usize)> = None;
            for (si, s) in srcs.iter().enumerate() {
                if s.blocked {
                    continue;
                }
                if let Some(p) = &s.next {
                    let t = p.arrival.max(s.gate);
                    if next_emit.map_or(true, |(bt, _)| t < bt) {
                        next_emit = Some((t, si));
                    }
                }
            }
            let mut next_round: Option<(Nanos, usize)> = None;
            for (i, ps) in ports.iter().enumerate() {
                if ps.done {
                    continue;
                }
                if let Some(t) = ps.t {
                    if next_round.map_or(true, |(bt, _)| t < bt) {
                        next_round = Some((t, i));
                    }
                }
            }
            // kind: 0 = control, 1 = emission, 2 = round.
            let mut pick: Option<(Nanos, u8)> = None;
            for (t, kind) in [
                (next_control, 0u8),
                (next_emit.map(|(t, _)| t), 1),
                (next_round.map(|(t, _)| t), 2),
            ] {
                if let Some(t) = t {
                    if pick.map_or(true, |(bt, bk)| (t, kind) < (bt, bk)) {
                        pick = Some((t, kind));
                    }
                }
            }

            // --- watchdog: the oldest asserted pause must not outlive
            // max_pause before the next event runs --------------------
            let oldest_pause = ports
                .iter()
                .enumerate()
                .flat_map(|(i, ps)| {
                    ps.classes
                        .values()
                        .filter_map(move |cs| cs.paused_since.map(|s| (s, i)))
                })
                .min();
            if let (Some((since, port)), Some((tev, _))) = (oldest_pause, pick) {
                let deadline = since + self.cfg.max_pause;
                if tev > deadline {
                    let kind = if dead(port) {
                        StallKind::DeadPort { port }
                    } else if faults.stuck_pool_at.is_some_and(|t| deadline >= t) {
                        StallKind::StuckPool
                    } else {
                        StallKind::PauseStorm { port }
                    };
                    stall = Some(FabricStall {
                        kind,
                        at: deadline,
                        paused_for: self.cfg.max_pause,
                    });
                    break;
                }
            }

            let Some((now, kind)) = pick else {
                // Quiescent. Complete drain, or a wait nothing can break?
                let trapped = srcs.iter().any(|s| s.next.is_some())
                    || ports.iter().enumerate().any(|(i, ps)| {
                        !ps.skid.is_empty()
                            || (!ps.done
                                && (!self.switch.ports[i].is_empty()
                                    || self.switch.ports[i].shaped_len() > 0))
                    });
                if trapped {
                    // With a pause still asserted and no event left, the
                    // pause outlives any bound: report the watchdog
                    // deadline. Otherwise stamp the last event time.
                    let (at, paused_for) = match oldest_pause {
                        Some((since, _)) => (since + self.cfg.max_pause, self.cfg.max_pause),
                        None => (
                            pause_events.last().map_or(Nanos::ZERO, |e| e.time),
                            Nanos::ZERO,
                        ),
                    };
                    let kind = if let Some(&p) = faults.dead_ports.iter().find(|&&p| {
                        p < n && (!self.switch.ports[p].is_empty() || !ports[p].skid.is_empty())
                    }) {
                        StallKind::DeadPort { port: p }
                    } else if faults.stuck_pool_at.is_some() {
                        StallKind::StuckPool
                    } else {
                        StallKind::CircularWait
                    };
                    stall = Some(FabricStall {
                        kind,
                        at,
                        paused_for,
                    });
                }
                break;
            };

            match kind {
                // --- control-frame delivery --------------------------
                0 => {
                    let Frame {
                        port,
                        class,
                        action,
                        ..
                    } = frames.pop().expect("peeked control frame").0;
                    match action {
                        PauseAction::Pause => {
                            visible.insert((port, class));
                            for s in srcs.iter_mut() {
                                if !s.blocked && s.target == Some((port, class)) {
                                    s.blocked = true;
                                    s.blocked_since = now;
                                    s.stats.pauses += 1;
                                    s.src.pause(now);
                                }
                            }
                        }
                        PauseAction::Resume => {
                            visible.remove(&(port, class));
                            for s in srcs.iter_mut() {
                                if s.blocked && s.target == Some((port, class)) {
                                    s.blocked = false;
                                    let dur = now.saturating_sub(s.blocked_since);
                                    s.stats.resumes += 1;
                                    s.stats.total_paused += dur;
                                    s.stats.max_pause = s.stats.max_pause.max(dur);
                                    s.src.resume(now);
                                    s.gate = now;
                                }
                            }
                        }
                    }
                }

                // --- emission ----------------------------------------
                1 => {
                    let (_, si) = next_emit.expect("picked emission");
                    let s = &mut srcs[si];
                    let mut p = s.next.take().expect("eligible emission");
                    let target = s.target.take();
                    // Stamp the true emission instant (a gated release
                    // happens at the gate, not the original stamp) and a
                    // globally unique id.
                    p.arrival = p.arrival.max(s.gate);
                    p.id = PacketId(next_id);
                    next_id += 1;

                    match target {
                        None => misrouted += 1,
                        Some((i, class)) => {
                            let stuck = faults.stuck_pool_at.is_some_and(|t| now >= t);
                            let ps = &mut ports[i];
                            ps.classes.entry(class).or_default();
                            // Direct admission keeps arrival order: only
                            // when nothing is already held back may this
                            // packet bypass the skid queue.
                            let gate_open = !stuck
                                && ps.skid.is_empty()
                                && self.switch.ports[i].pool_handle().would_admit_flow(p.flow);
                            if gate_open {
                                match self.switch.ports[i].enqueue(p, now) {
                                    Ok(()) => {
                                        let cs = ps.classes.get_mut(&class).expect("entry above");
                                        cs.occ += 1;
                                    }
                                    Err(_) => {
                                        // would_admit_flow said yes and
                                        // nothing ran in between; a
                                        // reject here is a tree-level
                                        // refusal (unknown flow etc.).
                                        ps.trace.drops += 1;
                                    }
                                }
                            } else if ps.skid.len() < self.cfg.headroom {
                                let cs = ps.classes.get_mut(&class).expect("entry above");
                                cs.skid += 1;
                                ps.skid.push_back(p);
                                ps.peak_skid = ps.peak_skid.max(ps.skid.len());
                            } else {
                                // Headroom overflow: the one loss mode.
                                ps.trace.drops += 1;
                                skid_overflow += 1;
                            }
                            // Wake the port (no earlier than its
                            // transmitter allows) and re-evaluate its
                            // pause signal at the arrival instant.
                            let wake = now.max(ps.busy_until);
                            if !ps.done && ps.t.map_or(true, |t| t > wake) {
                                ps.t = Some(wake);
                            }
                            eval_pause!(i, now);
                            // The pool peaks at admission instants (a
                            // round's burst may drain it before the
                            // round-end sample).
                            max_pool_live = max_pool_live.max(fabric_live(&self.switch));
                        }
                    }

                    // Pull the next packet and classify it.
                    let s = &mut srcs[si];
                    s.next = s.src.next_packet();
                    s.target = s.next.as_ref().and_then(|p| {
                        let port = (self.switch.classifier)(p);
                        (port < n).then_some((port, p.class))
                    });
                    if let Some(t) = s.target {
                        if visible.contains(&t) && !s.blocked {
                            s.blocked = true;
                            s.blocked_since = now;
                            s.stats.pauses += 1;
                            s.src.pause(now);
                        }
                    }
                }

                // --- scheduling round --------------------------------
                _ => {
                    let (_, i) = next_round.expect("picked round");
                    rounds += 1;
                    if rounds > self.cfg.round_budget {
                        stall = Some(FabricStall {
                            kind: StallKind::RoundBudget { rounds },
                            at: now,
                            paused_for: oldest_pause
                                .map_or(Nanos::ZERO, |(s, _)| now.saturating_sub(s)),
                        });
                        break;
                    }
                    if now >= self.switch.horizon {
                        ports[i].done = true;
                        ports[i].t = None;
                        continue;
                    }
                    let stuck = faults.stuck_pool_at.is_some_and(|t| now >= t);

                    // Admit gated skid packets, oldest first, each at
                    // its own arrival instant — stop at the first the
                    // pool still refuses (head-of-line, not reorder).
                    while let Some(front) = ports[i].skid.front() {
                        if front.arrival > now
                            || stuck
                            || !self.switch.ports[i]
                                .pool_handle()
                                .would_admit_flow(front.flow)
                        {
                            break;
                        }
                        let p = ports[i].skid.pop_front().expect("peeked front");
                        let (class, at) = (p.class, p.arrival);
                        let cs = ports[i].classes.get_mut(&class).expect("counted in");
                        cs.skid -= 1;
                        match self.switch.ports[i].enqueue(p, at) {
                            Ok(()) => ports[i].classes.get_mut(&class).expect("entry").occ += 1,
                            Err(_) => ports[i].trace.drops += 1,
                        }
                    }
                    max_pool_live = max_pool_live.max(fabric_live(&self.switch));

                    // One burst of dequeues decided at `now` (a dead
                    // port decides nothing).
                    ports[i].round.clear();
                    if !dead(i) {
                        if per_packet {
                            for _ in 0..self.switch.burst {
                                match self.switch.ports[i].dequeue(now) {
                                    Some(p) => ports[i].round.push(p),
                                    None => break,
                                }
                            }
                        } else {
                            let mut round = std::mem::take(&mut ports[i].round);
                            self.switch.ports[i].dequeue_upto(now, self.switch.burst, &mut round);
                            ports[i].round = round;
                        }
                    }

                    let round_end = if ports[i].round.is_empty() {
                        // Idle: hop to the next local cause — a future
                        // skid arrival or a shaping release — or park
                        // until an emission or another port's progress
                        // wakes us.
                        let next_skid = ports[i].skid.front().map(|p| p.arrival);
                        let next_ready = self.switch.ports[i].next_shaping_event();
                        let next = match (next_skid, next_ready) {
                            (Some(a), Some(r)) => Some(a.min(r)),
                            (a, r) => a.or(r),
                        };
                        ports[i].busy_until = now;
                        ports[i].t = match next {
                            Some(t) if t > now => Some(t),
                            // A gated head (arrival <= now) cannot be
                            // hopped to; park and wait for pool space.
                            _ => None,
                        };
                        now
                    } else {
                        // Transmit back-to-back at the port's (possibly
                        // fault-slowed) line rate.
                        let mut t = now;
                        let round = std::mem::take(&mut ports[i].round);
                        for p in round {
                            let finish = t + tx_time(p.length as u64, rate[i]);
                            let cs = ports[i]
                                .classes
                                .get_mut(&p.class)
                                .expect("departed packet was admitted");
                            cs.occ = cs.occ.saturating_sub(1);
                            ports[i].trace.departures.push(Departure {
                                wait: t.saturating_sub(p.arrival),
                                start: t,
                                finish,
                                packet: p,
                            });
                            t = finish;
                        }
                        ports[i].busy_until = t;
                        ports[i].t = Some(t);
                        if self.switch.ports[i].path_records_enabled() {
                            // One record completed per dequeued packet,
                            // in dequeue order — the departures just
                            // pushed. Finalize `departed` to transmit
                            // start so waits reconcile exactly.
                            let mut recs = self.switch.ports[i].drain_path_records();
                            let base = ports[i].trace.departures.len() - recs.len();
                            for (k, r) in recs.iter_mut().enumerate() {
                                r.departed = ports[i].trace.departures[base + k].start;
                            }
                            ports[i].trace.paths.append(&mut recs);
                        }
                        // Progress frees pool space: wake parked ports
                        // whose skid heads may now be admissible.
                        for (j, other) in ports.iter_mut().enumerate() {
                            if j != i && !other.done && other.t.is_none() && !other.skid.is_empty()
                            {
                                other.t = Some(t.max(other.busy_until));
                            }
                        }
                        t
                    };
                    // Re-evaluate the pause signal at the instant the
                    // round's effect is complete: the last transmit
                    // finish, or the decision time of an idle round.
                    eval_pause!(i, round_end);
                    max_pool_live = max_pool_live.max(fabric_live(&self.switch));
                    if sample_every.is_some_and(|every| rounds % every == 0) {
                        g_pool.push(round_end, fabric_live(&self.switch) as u64);
                        let paused = ports
                            .iter()
                            .flat_map(|p| p.classes.values())
                            .filter(|c| c.paused_since.is_some())
                            .count();
                        g_paused.push(round_end, paused as u64);
                        let skid: usize = ports.iter().map(|p| p.skid.len()).sum();
                        g_skid.push(round_end, skid as u64);
                    }
                }
            }
        }

        // A cleanly drained fabric resolves any pause still asserted
        // (e.g. one tripped by the very last round) so the event log
        // reconciles: every pause has a matching resume or the stall
        // report explains why not.
        if stall.is_none() {
            let end = pause_events.last().map_or(Nanos::ZERO, |e| e.time);
            for (i, ps) in ports.iter_mut().enumerate() {
                for (&class, cs) in ps.classes.iter_mut() {
                    if let Some(since) = cs.paused_since.take() {
                        ps.paused_total += end.saturating_sub(since);
                        pause_events.push(PauseEvent {
                            time: end,
                            port: i,
                            class,
                            action: PauseAction::Resume,
                        });
                    }
                }
            }
            for s in srcs.iter_mut() {
                if s.blocked {
                    s.blocked = false;
                    s.stats.resumes += 1;
                    let dur = end.saturating_sub(s.blocked_since);
                    s.stats.total_paused += dur;
                    s.stats.max_pause = s.stats.max_pause.max(dur);
                }
            }
        }

        let telemetry = self.switch.telemetry_config().map(|_| {
            let mut snap = TelemetrySnapshot::default();
            for tree in &self.switch.ports {
                if let Some(r) = tree.flight_recorder() {
                    snap.absorb_recorder(r);
                }
            }
            // Pause/resume transitions and the stall verdict are driver
            // state, not tree state: synthesize their trace events here,
            // off the hot path.
            for e in &pause_events {
                let kind = match e.action {
                    PauseAction::Pause => EventKind::Pause,
                    PauseAction::Resume => EventKind::Resume,
                };
                snap.counts[kind as usize] += 1;
                snap.events_recorded += 1;
                snap.events.push(TraceEvent {
                    time: e.time,
                    kind,
                    port: e.port as u16,
                    node: NO_NODE,
                    flow: FlowId(0),
                    value: e.class as u64,
                    aux: 0,
                });
            }
            if let Some(s) = &stall {
                let (code, port) = match s.kind {
                    StallKind::DeadPort { port } => (0u64, port as u16),
                    StallKind::StuckPool => (1, 0),
                    StallKind::PauseStorm { port } => (2, port as u16),
                    StallKind::RoundBudget { .. } => (3, 0),
                    StallKind::CircularWait => (4, 0),
                };
                snap.counts[EventKind::Fault as usize] += 1;
                snap.events_recorded += 1;
                snap.events.push(TraceEvent {
                    time: s.at,
                    kind: EventKind::Fault,
                    port,
                    node: NO_NODE,
                    flow: FlowId(0),
                    value: code,
                    aux: u32::try_from(s.paused_for.as_nanos()).unwrap_or(u32::MAX),
                });
            }
            snap.sort_events();
            snap.gauges.push(g_pool);
            snap.gauges.push(g_paused);
            snap.gauges.push(g_skid);
            snap
        });

        LosslessRun {
            run: SwitchRun {
                ports: ports
                    .iter_mut()
                    .map(|p| std::mem::take(&mut p.trace))
                    .collect(),
                misrouted,
            },
            pause_events,
            stall,
            sources: srcs.iter().map(|s| s.stats).collect(),
            port_paused: ports.iter().map(|p| p.paused_total).collect(),
            peak_skid: ports.iter().map(|p| p.peak_skid).collect(),
            skid_overflow,
            max_pool_live,
            rounds,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchBuilder;
    use crate::traffic::CbrSource;
    use pifo_algos::Stfq;
    use pifo_core::pool::{AdmissionPolicy, Threshold};

    fn lossless_switch(ports: usize, capacity: usize, xoff: usize, headroom: usize) -> Switch {
        let mut sb = SwitchBuilder::new(8_000_000_000); // 1 B/ns
        sb.with_shared_pool(
            capacity,
            AdmissionPolicy::PortFlow {
                port: Threshold::Static(xoff + headroom),
                flow: Threshold::Unlimited,
            },
        );
        for _ in 0..ports {
            sb.add_shared_port(|h| {
                let mut b = TreeBuilder::new();
                let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
                b.build_in_pool(Box::new(move |_| root), h).unwrap()
            });
        }
        sb.build(Box::new(move |p: &Packet| p.flow.0 as usize % ports))
    }

    /// An overdriven port pauses its source, resumes it, and loses
    /// nothing.
    #[test]
    fn overload_pauses_then_drains_without_loss() {
        // One port at 8 Gb/s fed 2× line rate: queue must grow, trip
        // xoff, pause the source, drain, resume.
        let cfg = LosslessConfig::new(16, 4).with_headroom(64);
        let switch = lossless_switch(1, 128, 16, 64);
        let mut fabric = LosslessFabric::new(switch, cfg);
        let src = CbrSource::new(
            FlowId(0),
            1_000,
            16_000_000_000,
            Nanos::ZERO,
            Nanos(400_000),
        );
        let run = fabric.run(vec![Box::new(src)], DrainMode::Batched);

        assert!(run.stall.is_none(), "no stall: {:?}", run.stall);
        assert_eq!(run.total_drops(), 0, "lossless");
        assert!(run.total_departures() > 0);
        assert!(
            run.count_events(PauseAction::Pause) > 0,
            "2x overload must pause"
        );
        assert_eq!(
            run.count_events(PauseAction::Pause),
            run.count_events(PauseAction::Resume),
            "every pause resolved"
        );
        assert_eq!(run.sources[0].pauses, run.sources[0].resumes);
        assert!(run.sources[0].total_paused > Nanos::ZERO);
        assert!(run.port_paused[0] > Nanos::ZERO);
    }

    /// Pause events and traces are identical across drain modes.
    #[test]
    fn drain_modes_agree_on_traces_and_pause_log() {
        let mk_run = |mode: DrainMode| {
            let cfg = LosslessConfig::new(12, 4).with_headroom(32);
            let switch = lossless_switch(2, 128, 12, 32);
            let mut fabric = LosslessFabric::new(switch, cfg);
            let sources: Vec<Box<dyn TrafficSource>> = (0..4)
                .map(|f| {
                    Box::new(CbrSource::new(
                        FlowId(f),
                        1_000,
                        6_000_000_000,
                        Nanos(f as u64 * 10),
                        Nanos(200_000),
                    )) as Box<dyn TrafficSource>
                })
                .collect();
            fabric.run(sources, mode)
        };
        let a = mk_run(DrainMode::PerPacket);
        let b = mk_run(DrainMode::Batched);
        let c = mk_run(DrainMode::Parallel { workers: 4 });
        for (x, label) in [(&b, "batched"), (&c, "parallel")] {
            assert_eq!(a.pause_events, x.pause_events, "{label} pause log");
            for (pa, px) in a.run.ports.iter().zip(&x.run.ports) {
                assert_eq!(pa.departures, px.departures, "{label} departures");
                assert_eq!(pa.drops, px.drops, "{label} drops");
            }
        }
        assert!(a.stall.is_none());
        assert_eq!(a.total_drops(), 0);
    }

    /// A dead port under load is diagnosed, not hung.
    #[test]
    fn dead_port_yields_typed_stall() {
        let cfg = LosslessConfig::new(8, 2)
            .with_headroom(16)
            .with_max_pause(Nanos::from_micros(100));
        let switch = lossless_switch(2, 64, 8, 16);
        let mut fabric = LosslessFabric::new(switch, cfg);
        let sources: Vec<Box<dyn TrafficSource>> = (0..2)
            .map(|f| {
                Box::new(CbrSource::new(
                    FlowId(f),
                    1_000,
                    8_000_000_000,
                    Nanos::ZERO,
                    Nanos(500_000),
                )) as Box<dyn TrafficSource>
            })
            .collect();
        let run =
            fabric.run_with_faults(sources, DrainMode::Batched, &FaultPlan::none().dead_port(0));
        let stall = run.stall.expect("dead port under load must stall");
        assert_eq!(stall.kind, StallKind::DeadPort { port: 0 });
        // Port 1 kept transmitting — the fault is contained.
        assert!(!run.run.ports[1].departures.is_empty());
    }

    /// Config invariants hold and are enforced.
    #[test]
    #[should_panic(expected = "xon < xoff")]
    fn inverted_watermarks_rejected() {
        let _ = Watermarks::new(4, 4);
    }

    #[test]
    fn min_pool_capacity_math() {
        let cfg = LosslessConfig::new(64, 16).with_headroom(32);
        assert_eq!(cfg.min_pool_capacity(16), 16 * (64 + 32));
    }
}
