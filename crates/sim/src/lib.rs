//! # pifo-sim
//!
//! A deterministic discrete-event network-simulation substrate for the
//! PIFO reproduction: traffic generators (CBR, Poisson, deterministic
//! and Markov on/off bursts, incast, heavy-tailed flow workloads),
//! output ports, the multi-port [`switch`] fabric with its batched
//! line-rate drain loop, multi-hop paths, metric collectors, the
//! fixed-function baseline schedulers the paper contrasts against (§1),
//! a fluid GPS reference for fairness ground truth, and the pFabric
//! reference queue used by the §3.5 inexpressibility demonstration.
//!
//! Everything is seeded and deterministic: identical inputs produce
//! identical outputs, bit for bit — including the [`switch`] fabric's
//! multi-core drain ([`DrainMode::Parallel`]), whose merged traces are
//! differentially pinned against the sequential modes.
//!
//! Observability rides along without steering: build a fabric with
//! [`SwitchBuilder::with_telemetry`] and every port tree records flight
//! recorder events, optional per-packet path records
//! ([`PortTrace::paths`]), and sampled gauges, merged after a run by
//! [`Switch::telemetry_snapshot`] (or [`LosslessRun::telemetry`] for the
//! lossless fabric) — with departure traces bit-identical to a
//! telemetry-off run.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod baselines;
pub mod buffer;
pub mod events;
pub mod gps;
pub mod lossless;
pub mod metrics;
pub mod pfabric_ref;
pub mod pipeline;
pub mod port;
pub mod scheduler;
pub mod switch;
pub mod traffic;

pub use baselines::{DrrSched, FifoSched, SfqSched, ShapedFifo, StrictPrioritySched};
pub use buffer::{ManagedScheduler, Red, RedScheduler, SharedBuffer, Threshold};
pub use events::EventQueue;
pub use gps::FluidGps;
pub use lossless::{
    FabricStall, FaultPlan, LosslessConfig, LosslessFabric, LosslessRun, PauseAction, PauseEvent,
    SourcePauseStats, StallKind, Watermarks,
};
pub use metrics::{
    flow_completions, jain_index, latency_stats, throughput, throughput_series, waits_of,
    FlowCompletion, LatencyStats, ThroughputReport,
};
pub use pfabric_ref::PFabricQueue;
pub use pipeline::{run_pipeline, Hop, PipelineResult};
pub use port::{run_port, Departure, PortConfig};
pub use scheduler::{PortScheduler, TreeScheduler};
pub use switch::{DrainMode, PortClassifier, PortTrace, Switch, SwitchBuilder, SwitchRun};
pub use traffic::{
    flow_workload, merge, renumber, CbrSource, FlowSpec, IncastSource, MarkovOnOffSource,
    OnOffSource, PoissonSource, SizeDistribution, TrafficSource,
};
