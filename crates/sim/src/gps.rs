//! A fluid Generalized Processor Sharing (GPS) reference.
//!
//! WFQ/STFQ are packetized approximations of GPS \[17\]: an idealised server
//! that serves every backlogged flow *simultaneously*, in proportion to
//! its weight. This module simulates the fluid system exactly (piecewise
//! constant service rates between events) so that experiments can compare
//! a packetized scheduler's per-flow service against the ideal and bound
//! the deviation.

use pifo_core::prelude::*;
use std::collections::HashMap;

/// The fluid GPS server.
#[derive(Debug, Clone)]
pub struct FluidGps {
    rate_bps: u64,
    weights: HashMap<FlowId, u64>,
    default_weight: u64,
    /// Remaining backlog per flow, in *fluid* units of bytes × 2^20 (so
    /// proportional division stays exact enough at ns granularity).
    backlog: HashMap<FlowId, u128>,
    served: HashMap<FlowId, u128>,
    now: Nanos,
}

const FLUID: u128 = 1 << 20;

impl FluidGps {
    /// A GPS server at `rate_bps`.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        FluidGps {
            rate_bps,
            weights: HashMap::new(),
            default_weight: 1,
            backlog: HashMap::new(),
            served: HashMap::new(),
            now: Nanos::ZERO,
        }
    }

    /// Set a flow's weight.
    pub fn set_weight(&mut self, flow: FlowId, w: u64) {
        assert!(w > 0, "weight must be positive");
        self.weights.insert(flow, w);
    }

    fn weight(&self, f: FlowId) -> u64 {
        self.weights.get(&f).copied().unwrap_or(self.default_weight)
    }

    /// Advance the fluid system to time `t`, distributing service among
    /// backlogged flows by weight; flows that drain mid-interval free
    /// their share for the rest (handled by sub-interval iteration).
    pub fn advance_to(&mut self, t: Nanos) {
        assert!(t >= self.now, "time cannot go backwards");
        let mut remaining_ns = (t - self.now).as_nanos();
        self.now = t;

        while remaining_ns > 0 {
            let active: Vec<FlowId> = self
                .backlog
                .iter()
                .filter(|(_, &b)| b > 0)
                .map(|(f, _)| *f)
                .collect();
            if active.is_empty() {
                break;
            }
            let total_w: u128 = active.iter().map(|f| self.weight(*f) as u128).sum();
            // Fluid bytes the link serves per ns, ×FLUID: rate_bps/8e9.
            let link_per_ns = (self.rate_bps as u128) * FLUID / (8 * 1_000_000_000);

            // Earliest drain among active flows at current shares.
            let mut dt = remaining_ns;
            for f in &active {
                let share = link_per_ns * self.weight(*f) as u128 / total_w;
                if share == 0 {
                    continue;
                }
                let b = self.backlog[f];
                let need_ns = b.div_ceil(share);
                dt = dt.min(need_ns as u64);
            }
            let dt = dt.max(1);

            for f in &active {
                let share = link_per_ns * self.weight(*f) as u128 / total_w;
                let amount = (share * dt as u128).min(self.backlog[f]);
                *self.backlog.get_mut(f).unwrap() -= amount;
                *self.served.entry(*f).or_insert(0) += amount;
            }
            remaining_ns -= dt;
        }
    }

    /// Inject `bytes` of flow `f` arriving at time `t` (advances first).
    pub fn arrive(&mut self, f: FlowId, bytes: u64, t: Nanos) {
        self.advance_to(t);
        *self.backlog.entry(f).or_insert(0) += bytes as u128 * FLUID;
    }

    /// Cumulative service of `f` so far, in bytes (rounded down).
    pub fn served_bytes(&self, f: FlowId) -> u64 {
        (self.served.get(&f).copied().unwrap_or(0) / FLUID) as u64
    }

    /// Remaining backlog of `f`, in bytes (rounded up).
    pub fn backlog_bytes(&self, f: FlowId) -> u64 {
        self.backlog.get(&f).copied().unwrap_or(0).div_ceil(FLUID) as u64
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_split_evenly() {
        let mut g = FluidGps::new(8_000_000_000); // 1 B/ns
        g.arrive(FlowId(1), 10_000, Nanos(0));
        g.arrive(FlowId(2), 10_000, Nanos(0));
        g.advance_to(Nanos(10_000)); // serves 10_000 B total
        let s1 = g.served_bytes(FlowId(1));
        let s2 = g.served_bytes(FlowId(2));
        assert!((s1 as i64 - 5_000).abs() <= 1, "s1={s1}");
        assert!((s2 as i64 - 5_000).abs() <= 1, "s2={s2}");
    }

    #[test]
    fn weights_split_proportionally() {
        let mut g = FluidGps::new(8_000_000_000);
        g.set_weight(FlowId(1), 1);
        g.set_weight(FlowId(2), 3);
        g.arrive(FlowId(1), 100_000, Nanos(0));
        g.arrive(FlowId(2), 100_000, Nanos(0));
        g.advance_to(Nanos(40_000));
        let s1 = g.served_bytes(FlowId(1)) as f64;
        let s2 = g.served_bytes(FlowId(2)) as f64;
        assert!((s2 / s1 - 3.0).abs() < 0.01, "ratio {}", s2 / s1);
    }

    #[test]
    fn drained_flow_frees_capacity() {
        let mut g = FluidGps::new(8_000_000_000);
        g.arrive(FlowId(1), 1_000, Nanos(0));
        g.arrive(FlowId(2), 100_000, Nanos(0));
        // Shared phase at 0.5 B/ns each until flow 1 drains at t=2000
        // (1000 B each); flow 2 then gets the full 1 B/ns for 8000 ns.
        g.advance_to(Nanos(10_000));
        assert_eq!(g.served_bytes(FlowId(1)), 1_000);
        let s2 = g.served_bytes(FlowId(2)) as i64;
        assert!((s2 - 9_000).abs() <= 2, "s2={s2}");
    }

    #[test]
    fn idle_system_serves_nothing() {
        let mut g = FluidGps::new(1_000_000);
        g.advance_to(Nanos(1_000_000));
        assert_eq!(g.served_bytes(FlowId(1)), 0);
    }

    #[test]
    fn conservation_of_bytes() {
        let mut g = FluidGps::new(8_000_000_000);
        for f in 0..5u32 {
            g.arrive(FlowId(f), 7_777, Nanos(0));
        }
        g.advance_to(Nanos::from_millis(1)); // plenty of time
        for f in 0..5u32 {
            assert_eq!(g.served_bytes(FlowId(f)), 7_777);
            assert_eq!(g.backlog_bytes(FlowId(f)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "time cannot go backwards")]
    fn time_monotonicity_enforced() {
        let mut g = FluidGps::new(1_000);
        g.advance_to(Nanos(100));
        g.advance_to(Nanos(50));
    }
}
