//! Multi-hop simulation: a line of switches, each with its own scheduler
//! and local cross-traffic. Built for the LSTF experiment (§3.1), where a
//! packet's slack is initialised at the end host and decremented by the
//! queueing wait *at each hop*.

use crate::port::{run_port, Departure, PortConfig};
use crate::scheduler::PortScheduler;
use pifo_core::prelude::*;
use std::collections::{HashMap, HashSet};

/// One switch on the path.
pub struct Hop {
    /// The output-port scheduler at this switch.
    pub scheduler: Box<dyn PortScheduler>,
    /// Cross-traffic entering at this hop and leaving right after it
    /// (time-sorted). Ids must not collide with the main traffic's.
    pub cross_traffic: Vec<Packet>,
    /// Propagation delay to the next hop.
    pub prop_delay: Nanos,
}

/// The result of a pipeline run.
pub struct PipelineResult {
    /// Departure log at every hop (main + cross traffic).
    pub per_hop: Vec<Vec<Departure>>,
    /// End-to-end delay (ns) per delivered main packet id: last-hop finish
    /// minus first-hop arrival.
    pub e2e_delay: HashMap<PacketId, u64>,
    /// Main packets as they left the final hop (slack updated hop by hop
    /// when LSTF charging is on).
    pub delivered: Vec<Packet>,
}

/// Drive `main` traffic through `hops`, merging each hop's cross-traffic.
///
/// `cfg` applies to every hop (same link rate); enable
/// [`PortConfig::with_lstf_charging`] to decrement slack per hop.
///
/// # Panics
///
/// Panics if packet ids are not unique across main and cross traffic.
pub fn run_pipeline(main: Vec<Packet>, mut hops: Vec<Hop>, cfg: &PortConfig) -> PipelineResult {
    let mut seen: HashSet<PacketId> = HashSet::new();
    for p in main
        .iter()
        .chain(hops.iter().flat_map(|h| h.cross_traffic.iter()))
    {
        assert!(seen.insert(p.id), "duplicate packet id {}", p.id);
    }
    let main_ids: HashSet<PacketId> = main.iter().map(|p| p.id).collect();
    let first_arrival: HashMap<PacketId, Nanos> = main.iter().map(|p| (p.id, p.arrival)).collect();

    let mut current = main;
    let mut per_hop = Vec::with_capacity(hops.len());
    let mut delivered = Vec::new();
    let mut e2e = HashMap::new();

    let last = hops.len().saturating_sub(1);
    for (k, hop) in hops.iter_mut().enumerate() {
        // Merge main stream with this hop's cross traffic.
        let mut arrivals = current.clone();
        arrivals.extend(hop.cross_traffic.iter().cloned());
        arrivals.sort_by_key(|p| (p.arrival, p.id.0));

        let deps = run_port(&arrivals, hop.scheduler.as_mut(), cfg);

        // Main packets continue to the next hop.
        current = deps
            .iter()
            .filter(|d| main_ids.contains(&d.packet.id))
            .map(|d| {
                let mut p = d.packet.clone();
                let t_next = d.finish + hop.prop_delay;
                if k == last {
                    e2e.insert(p.id, d.finish.as_nanos() - first_arrival[&p.id].as_nanos());
                    delivered.push(p.clone());
                }
                p.arrival = t_next;
                p
            })
            .collect();
        current.sort_by_key(|p| (p.arrival, p.id.0));
        per_hop.push(deps);
    }

    PipelineResult {
        per_hop,
        e2e_delay: e2e,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FifoSched;

    fn pkt(id: u64, t: u64, slack: i64) -> Packet {
        Packet::new(id, FlowId(0), 1_000, Nanos(t)).with_slack(slack)
    }

    fn fifo_hop(prop: u64, cross: Vec<Packet>) -> Hop {
        Hop {
            scheduler: Box::new(FifoSched::new(1_000)),
            cross_traffic: cross,
            prop_delay: Nanos(prop),
        }
    }

    #[test]
    fn uncongested_path_delay_is_tx_plus_prop() {
        // One packet, two hops, 1000 B at 8 Gb/s = 1000 ns tx per hop,
        // 500 ns prop after hop 0.
        let main = vec![pkt(0, 0, 0)];
        let hops = vec![fifo_hop(500, vec![]), fifo_hop(0, vec![])];
        let r = run_pipeline(main, hops, &PortConfig::new(8_000_000_000));
        // e2e = tx(1000) + prop(500) + tx(1000) = 2500.
        assert_eq!(r.e2e_delay[&PacketId(0)], 2_500);
        assert_eq!(r.delivered.len(), 1);
    }

    #[test]
    fn cross_traffic_delays_main() {
        // Cross packet arrives just before main at hop 0.
        let main = vec![pkt(0, 10, 0)];
        let cross = vec![Packet::new(100, FlowId(9), 1_000, Nanos(0))];
        let hops = vec![fifo_hop(0, cross), fifo_hop(0, vec![])];
        let r = run_pipeline(main, hops, &PortConfig::new(8_000_000_000));
        // Main waits until 1000 (cross tx done), then 2 hops of tx.
        assert_eq!(r.e2e_delay[&PacketId(0)], (1_000 - 10) + 1_000 + 1_000);
    }

    #[test]
    fn lstf_charging_accumulates_across_hops() {
        // Two main packets back-to-back: the second waits one tx at each
        // hop... at hop 0 it waits 1000 ns; at hop 1 they arrive spaced
        // 1000 ns apart so no wait. Slack decremented once.
        let main = vec![pkt(0, 0, 50_000), pkt(1, 0, 50_000)];
        let hops = vec![fifo_hop(0, vec![]), fifo_hop(0, vec![])];
        let cfg = PortConfig::new(8_000_000_000).with_lstf_charging();
        let r = run_pipeline(main, hops, &cfg);
        let p1 = r.delivered.iter().find(|p| p.id.0 == 1).unwrap();
        assert_eq!(p1.slack, 50_000 - 1_000);
        let p0 = r.delivered.iter().find(|p| p.id.0 == 0).unwrap();
        assert_eq!(p0.slack, 50_000);
    }

    #[test]
    fn per_hop_logs_include_cross_traffic() {
        let main = vec![pkt(0, 0, 0)];
        let cross = vec![Packet::new(100, FlowId(9), 500, Nanos(0))];
        let hops = vec![fifo_hop(0, cross)];
        let r = run_pipeline(main, hops, &PortConfig::new(8_000_000_000));
        assert_eq!(r.per_hop[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate packet id")]
    fn duplicate_ids_rejected() {
        let main = vec![pkt(0, 0, 0)];
        let cross = vec![Packet::new(0, FlowId(9), 500, Nanos(0))];
        let _ = run_pipeline(main, vec![fifo_hop(0, cross)], &PortConfig::new(1_000_000));
    }
}
