//! Fixed-function baseline schedulers — the "menu" a conventional switch
//! offers (§1): FIFO, Deficit Round Robin \[34\], strict priorities, and a
//! token-bucket-shaped FIFO. These are *not* built on PIFOs; they are the
//! comparison points the paper's programmable scheduler replaces.

use crate::scheduler::PortScheduler;
use pifo_core::prelude::*;
use std::collections::{HashMap, VecDeque};

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// Plain tail-drop FIFO.
#[derive(Debug)]
pub struct FifoSched {
    q: VecDeque<Packet>,
    limit: usize,
    drops: u64,
}

impl FifoSched {
    /// FIFO with space for `limit` packets.
    pub fn new(limit: usize) -> Self {
        FifoSched {
            q: VecDeque::new(),
            limit,
            drops: 0,
        }
    }

    /// Packets dropped at the tail so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl PortScheduler for FifoSched {
    fn enqueue(&mut self, pkt: Packet, _now: Nanos) -> bool {
        if self.q.len() >= self.limit {
            self.drops += 1;
            return false;
        }
        self.q.push_back(pkt);
        true
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        self.q.pop_front()
    }

    fn next_ready(&self, _now: Nanos) -> Option<Nanos> {
        None // work-conserving: ready iff non-empty, never "later"
    }

    fn backlog(&self) -> usize {
        self.q.len()
    }

    fn name(&self) -> &str {
        "FIFO"
    }
}

// ---------------------------------------------------------------------------
// Deficit Round Robin
// ---------------------------------------------------------------------------

/// Deficit Round Robin \[34\]: the classic line-rate approximation of fair
/// queueing found in today's switches.
#[derive(Debug)]
pub struct DrrSched {
    queues: HashMap<FlowId, VecDeque<Packet>>,
    /// Active list: flows with backlog, in round-robin order.
    active: VecDeque<FlowId>,
    deficit: HashMap<FlowId, u64>,
    quantum: HashMap<FlowId, u64>,
    default_quantum: u64,
    backlog: usize,
    limit: usize,
    drops: u64,
}

impl DrrSched {
    /// DRR with the given default quantum (bytes added to a flow's deficit
    /// each round) and a shared buffer of `limit` packets.
    pub fn new(default_quantum: u64, limit: usize) -> Self {
        assert!(default_quantum > 0, "quantum must be positive");
        DrrSched {
            queues: HashMap::new(),
            active: VecDeque::new(),
            deficit: HashMap::new(),
            quantum: HashMap::new(),
            default_quantum,
            backlog: 0,
            limit,
            drops: 0,
        }
    }

    /// Give `flow` a custom quantum (weighted DRR).
    pub fn set_quantum(&mut self, flow: FlowId, quantum: u64) {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum.insert(flow, quantum);
    }

    fn quantum_of(&self, flow: FlowId) -> u64 {
        self.quantum
            .get(&flow)
            .copied()
            .unwrap_or(self.default_quantum)
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl PortScheduler for DrrSched {
    fn enqueue(&mut self, pkt: Packet, _now: Nanos) -> bool {
        if self.backlog >= self.limit {
            self.drops += 1;
            return false;
        }
        let flow = pkt.flow;
        let q = self.queues.entry(flow).or_default();
        let was_empty = q.is_empty();
        q.push_back(pkt);
        self.backlog += 1;
        if was_empty {
            self.active.push_back(flow);
            self.deficit.insert(flow, 0);
        }
        true
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        // Visit flows round-robin; a flow sends while its deficit covers
        // the head packet, then moves to the back of the list.
        loop {
            let flow = *self.active.front().expect("backlog>0 implies active");
            let head_len = self.queues[&flow].front().expect("active flow").length as u64;
            let quantum = self.quantum_of(flow);
            let d = self.deficit.get_mut(&flow).expect("active flow");
            if *d >= head_len {
                *d -= head_len;
                let pkt = self
                    .queues
                    .get_mut(&flow)
                    .and_then(|q| q.pop_front())
                    .expect("head exists");
                self.backlog -= 1;
                if self.queues[&flow].is_empty() {
                    // Flow done: leave the round and forfeit its deficit.
                    self.active.pop_front();
                    self.deficit.remove(&flow);
                }
                return Some(pkt);
            }
            // Grant a quantum and rotate.
            *d += quantum;
            self.active.rotate_left(1);
        }
    }

    fn next_ready(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn backlog(&self) -> usize {
        self.backlog
    }

    fn name(&self) -> &str {
        "DRR"
    }
}

// ---------------------------------------------------------------------------
// Strict priority bank
// ---------------------------------------------------------------------------

/// A bank of FIFO queues served in strict priority order of the packet's
/// `class` field (0 = highest).
#[derive(Debug)]
pub struct StrictPrioritySched {
    queues: Vec<VecDeque<Packet>>,
    backlog: usize,
    limit: usize,
    drops: u64,
}

impl StrictPrioritySched {
    /// `levels` priority classes sharing a buffer of `limit` packets.
    pub fn new(levels: usize, limit: usize) -> Self {
        assert!(levels > 0, "need at least one priority level");
        StrictPrioritySched {
            queues: (0..levels).map(|_| VecDeque::new()).collect(),
            backlog: 0,
            limit,
            drops: 0,
        }
    }

    /// Packets dropped so far (buffer full or class out of range).
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl PortScheduler for StrictPrioritySched {
    fn enqueue(&mut self, pkt: Packet, _now: Nanos) -> bool {
        let class = pkt.class as usize;
        if self.backlog >= self.limit || class >= self.queues.len() {
            self.drops += 1;
            return false;
        }
        self.queues[class].push_back(pkt);
        self.backlog += 1;
        true
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        for q in &mut self.queues {
            if let Some(p) = q.pop_front() {
                self.backlog -= 1;
                return Some(p);
            }
        }
        None
    }

    fn next_ready(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn backlog(&self) -> usize {
        self.backlog
    }

    fn name(&self) -> &str {
        "StrictPriority"
    }
}

// ---------------------------------------------------------------------------
// Token-bucket-shaped FIFO (classic "traffic shaping" menu item)
// ---------------------------------------------------------------------------

/// A FIFO whose head is released by a token bucket: the fixed-function
/// "traffic shaping" of conventional switches.
#[derive(Debug)]
pub struct ShapedFifo {
    q: VecDeque<Packet>,
    limit: usize,
    drops: u64,
    rate_bps: u64,
    burst_nanobits: i128,
    tokens: i128,
    last_refill: Nanos,
}

impl ShapedFifo {
    /// FIFO shaped to `rate_bps` with `burst_bytes` of burst, buffering up
    /// to `limit` packets.
    pub fn new(rate_bps: u64, burst_bytes: u64, limit: usize) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        let burst = burst_bytes as i128 * 8 * 1_000_000_000;
        ShapedFifo {
            q: VecDeque::new(),
            limit,
            drops: 0,
            rate_bps,
            burst_nanobits: burst,
            tokens: burst,
            last_refill: Nanos::ZERO,
        }
    }

    fn refill(&mut self, now: Nanos) {
        let dt = now.saturating_sub(self.last_refill).as_nanos() as i128;
        self.tokens = (self.tokens + dt * self.rate_bps as i128).min(self.burst_nanobits);
        self.last_refill = now;
    }

    fn head_cost(&self) -> Option<i128> {
        self.q.front().map(|p| p.length as i128 * 8 * 1_000_000_000)
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl PortScheduler for ShapedFifo {
    fn enqueue(&mut self, pkt: Packet, _now: Nanos) -> bool {
        if self.q.len() >= self.limit {
            self.drops += 1;
            return false;
        }
        self.q.push_back(pkt);
        true
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.refill(now);
        let need = self.head_cost()?;
        if need <= self.tokens {
            self.tokens -= need;
            self.q.pop_front()
        } else {
            None
        }
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        let need = self.head_cost()?;
        let deficit = need - self.tokens;
        if deficit <= 0 {
            return Some(now);
        }
        let wait = (deficit + self.rate_bps as i128 - 1) / self.rate_bps as i128;
        Some(Nanos(now.as_nanos() + wait as u64))
    }

    fn backlog(&self) -> usize {
        self.q.len()
    }

    fn name(&self) -> &str {
        "ShapedFIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: u32, len: u32) -> Packet {
        Packet::new(id, FlowId(flow), len, Nanos::ZERO)
    }

    #[test]
    fn fifo_is_fifo_and_tail_drops() {
        let mut s = FifoSched::new(2);
        assert!(s.enqueue(pkt(0, 0, 100), Nanos(0)));
        assert!(s.enqueue(pkt(1, 0, 100), Nanos(0)));
        assert!(!s.enqueue(pkt(2, 0, 100), Nanos(0)));
        assert_eq!(s.drops(), 1);
        assert_eq!(s.dequeue(Nanos(1)).unwrap().id.0, 0);
        assert_eq!(s.dequeue(Nanos(1)).unwrap().id.0, 1);
        assert!(s.dequeue(Nanos(1)).is_none());
    }

    #[test]
    fn drr_equal_quanta_split_evenly() {
        let mut s = DrrSched::new(1_500, 1_000);
        for i in 0..100 {
            s.enqueue(pkt(i, (i % 2) as u32, 1_000), Nanos(0));
        }
        let mut count = [0u32; 2];
        for _ in 0..40 {
            let p = s.dequeue(Nanos(1)).unwrap();
            count[p.flow.0 as usize] += 1;
        }
        assert!((count[0] as i32 - count[1] as i32).abs() <= 2, "{count:?}");
    }

    #[test]
    fn drr_weighted_quanta_split_proportionally() {
        let mut s = DrrSched::new(1_000, 1_000);
        s.set_quantum(FlowId(0), 1_000);
        s.set_quantum(FlowId(1), 3_000);
        for i in 0..200 {
            s.enqueue(pkt(i, (i % 2) as u32, 1_000), Nanos(0));
        }
        let mut count = [0u32; 2];
        for _ in 0..80 {
            let p = s.dequeue(Nanos(1)).unwrap();
            count[p.flow.0 as usize] += 1;
        }
        let ratio = count[1] as f64 / count[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "want ~3.0, got {ratio:.2}");
    }

    #[test]
    fn drr_large_packets_accumulate_deficit() {
        // Quantum 500 < packet 1000: a flow needs two rounds per packet
        // but still progresses (no starvation).
        let mut s = DrrSched::new(500, 100);
        s.enqueue(pkt(0, 0, 1_000), Nanos(0));
        s.enqueue(pkt(1, 1, 1_000), Nanos(0));
        let a = s.dequeue(Nanos(1)).unwrap();
        let b = s.dequeue(Nanos(1)).unwrap();
        assert_ne!(a.flow, b.flow);
        assert!(s.dequeue(Nanos(1)).is_none());
    }

    #[test]
    fn drr_flow_leaving_forfeits_deficit() {
        let mut s = DrrSched::new(1_500, 100);
        s.enqueue(pkt(0, 0, 100), Nanos(0));
        assert_eq!(s.dequeue(Nanos(1)).unwrap().id.0, 0);
        // Flow 0 re-arrives: deficit must restart at 0, not carry over.
        s.enqueue(pkt(1, 0, 100), Nanos(2));
        assert_eq!(s.dequeue(Nanos(3)).unwrap().id.0, 1);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn strict_priority_orders_classes() {
        let mut s = StrictPrioritySched::new(4, 100);
        s.enqueue(pkt(0, 0, 100).with_class(3), Nanos(0));
        s.enqueue(pkt(1, 0, 100).with_class(1), Nanos(0));
        s.enqueue(pkt(2, 0, 100).with_class(2), Nanos(0));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Nanos(1)).map(|p| p.id.0)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn strict_priority_rejects_out_of_range_class() {
        let mut s = StrictPrioritySched::new(2, 100);
        assert!(!s.enqueue(pkt(0, 0, 100).with_class(5), Nanos(0)));
        assert_eq!(s.drops(), 1);
    }

    #[test]
    fn shaped_fifo_gates_on_tokens() {
        // 8 Gb/s = 1 B/ns, burst 1000 B.
        let mut s = ShapedFifo::new(8_000_000_000, 1_000, 10);
        s.enqueue(pkt(0, 0, 1_000), Nanos(0));
        s.enqueue(pkt(1, 0, 1_000), Nanos(0));
        assert!(s.dequeue(Nanos(0)).is_some(), "burst covers first packet");
        assert!(s.dequeue(Nanos(0)).is_none(), "no tokens for second");
        assert_eq!(s.next_ready(Nanos(0)), Some(Nanos(1_000)));
        assert!(s.dequeue(Nanos(1_000)).is_some());
    }

    #[test]
    fn shaped_fifo_next_ready_none_when_empty() {
        let s = ShapedFifo::new(1_000_000, 1_000, 10);
        assert_eq!(s.next_ready(Nanos(0)), None);
    }
}

// ---------------------------------------------------------------------------
// Stochastic Fairness Queueing
// ---------------------------------------------------------------------------

/// Stochastic Fairness Queueing \[29\] — the third WFQ approximation §2.1
/// names: flows hash into a fixed number of buckets served round-robin;
/// fairness is probabilistic (hash collisions share a bucket).
#[derive(Debug)]
pub struct SfqSched {
    buckets: Vec<VecDeque<Packet>>,
    /// Round-robin cursor over buckets.
    cursor: usize,
    backlog: usize,
    limit: usize,
    drops: u64,
    /// Salt for the flow hash (rotated periodically in real SFQ; fixed
    /// here for determinism).
    salt: u64,
}

impl SfqSched {
    /// SFQ with `n_buckets` hash buckets and a shared `limit`.
    pub fn new(n_buckets: usize, limit: usize, salt: u64) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        SfqSched {
            buckets: (0..n_buckets).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            backlog: 0,
            limit,
            drops: 0,
            salt,
        }
    }

    fn bucket_of(&self, flow: FlowId) -> usize {
        // SplitMix64-style scramble of (flow, salt).
        let mut x = flow.0 as u64 ^ self.salt;
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        (x ^ (x >> 31)) as usize % self.buckets.len()
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl PortScheduler for SfqSched {
    fn enqueue(&mut self, pkt: Packet, _now: Nanos) -> bool {
        if self.backlog >= self.limit {
            self.drops += 1;
            return false;
        }
        let b = self.bucket_of(pkt.flow);
        self.buckets[b].push_back(pkt);
        self.backlog += 1;
        true
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.backlog == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            if let Some(p) = self.buckets[i].pop_front() {
                self.backlog -= 1;
                return Some(p);
            }
        }
        unreachable!("backlog > 0 but all buckets empty");
    }

    fn next_ready(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn backlog(&self) -> usize {
        self.backlog
    }

    fn name(&self) -> &str {
        "SFQ"
    }
}

#[cfg(test)]
mod sfq_tests {
    use super::*;

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 1_000, Nanos(id))
    }

    #[test]
    fn distinct_buckets_share_round_robin() {
        let mut s = SfqSched::new(64, 1_000, 7);
        // Find two flows that do NOT collide.
        let (f1, f2) = {
            let mut a = 0u32;
            let mut b = 1u32;
            while s.bucket_of(FlowId(a)) == s.bucket_of(FlowId(b)) {
                b += 1;
                let _ = &mut a;
            }
            (a, b)
        };
        for i in 0..10 {
            s.enqueue(pkt(i * 2, f1), Nanos(0));
            s.enqueue(pkt(i * 2 + 1, f2), Nanos(0));
        }
        let mut count = [0u32; 2];
        for _ in 0..10 {
            let p = s.dequeue(Nanos(1)).unwrap();
            count[if p.flow.0 == f1 { 0 } else { 1 }] += 1;
        }
        assert!((count[0] as i32 - count[1] as i32).abs() <= 1, "{count:?}");
    }

    #[test]
    fn colliding_flows_share_one_bucket() {
        // With a single bucket everything collides: SFQ degenerates to
        // FIFO — the probabilistic caveat of the scheme.
        let mut s = SfqSched::new(1, 100, 0);
        s.enqueue(pkt(0, 1), Nanos(0));
        s.enqueue(pkt(1, 2), Nanos(0));
        s.enqueue(pkt(2, 1), Nanos(0));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(Nanos(1)).map(|p| p.id.0)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn tail_drop_and_backlog() {
        let mut s = SfqSched::new(4, 2, 1);
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(s.enqueue(pkt(1, 2), Nanos(0)));
        assert!(!s.enqueue(pkt(2, 3), Nanos(0)));
        assert_eq!(s.drops(), 1);
        assert_eq!(s.backlog(), 2);
        assert_eq!(s.name(), "SFQ");
    }

    #[test]
    fn hash_is_deterministic_per_salt() {
        let a = SfqSched::new(64, 10, 42);
        let b = SfqSched::new(64, 10, 42);
        let c = SfqSched::new(64, 10, 43);
        let same = (0..100u32).all(|f| a.bucket_of(FlowId(f)) == b.bucket_of(FlowId(f)));
        assert!(same, "same salt, same mapping");
        let differs = (0..100u32).any(|f| a.bucket_of(FlowId(f)) != c.bucket_of(FlowId(f)));
        assert!(differs, "different salt perturbs the mapping");
    }
}
