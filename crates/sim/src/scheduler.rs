//! The scheduler interface an output port drives, and the adapter that
//! plugs a PIFO [`ScheduleTree`] into it.

use pifo_core::prelude::*;

/// What a switch output port needs from a packet scheduler.
///
/// Implemented by the PIFO tree adapter ([`TreeScheduler`]) and by the
/// fixed-function baselines in [`crate::baselines`] — the "menu" of
/// algorithms the paper contrasts programmable scheduling against (§1).
pub trait PortScheduler {
    /// Offer `pkt` to the scheduler at time `now`. Returns `false` when
    /// the packet was dropped (buffer full / unknown flow); the port
    /// records the drop.
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool;

    /// Ask for the next packet to transmit at time `now`.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;

    /// If `dequeue` would return `None` at `now`, the earliest future time
    /// it might succeed without further arrivals (`None` = never, i.e.
    /// empty). Lets the port sleep precisely across shaping gaps.
    fn next_ready(&self, now: Nanos) -> Option<Nanos>;

    /// Packets currently buffered.
    fn backlog(&self) -> usize;

    /// Display name for reports.
    fn name(&self) -> &str;
}

/// Adapter: any [`ScheduleTree`] is a [`PortScheduler`].
pub struct TreeScheduler {
    tree: ScheduleTree,
    label: String,
    drops: u64,
}

impl TreeScheduler {
    /// Wrap `tree` under a display `label`.
    pub fn new(label: &str, tree: ScheduleTree) -> Self {
        TreeScheduler {
            tree,
            label: label.to_string(),
            drops: 0,
        }
    }

    /// Packets rejected so far (buffer full or unknown flow).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Access the wrapped tree (e.g. to inspect PIFO occupancies).
    pub fn tree(&self) -> &ScheduleTree {
        &self.tree
    }

    /// Mutable access to the wrapped tree.
    pub fn tree_mut(&mut self) -> &mut ScheduleTree {
        &mut self.tree
    }
}

impl PortScheduler for TreeScheduler {
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool {
        match self.tree.enqueue(pkt, now) {
            Ok(()) => true,
            Err(_) => {
                self.drops += 1;
                false
            }
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.tree.dequeue(now)
    }

    fn next_ready(&self, _now: Nanos) -> Option<Nanos> {
        // If the root has work, "now"; otherwise the next shaping release.
        if self.tree.peek().is_some() {
            None // port only calls this after a failed dequeue
        } else {
            self.tree.next_shaping_event()
        }
    }

    fn backlog(&self) -> usize {
        self.tree.len()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pifo_algos::Fifo;

    fn fifo_tree(limit: usize) -> ScheduleTree {
        let mut b = TreeBuilder::new();
        let root = b.add_root("fifo", Box::new(Fifo));
        b.buffer_limit(limit);
        b.build(Box::new(move |_| root)).unwrap()
    }

    #[test]
    fn adapter_round_trips_packets() {
        let mut s = TreeScheduler::new("fifo", fifo_tree(10));
        assert!(s.enqueue(Packet::new(1, FlowId(0), 100, Nanos(0)), Nanos(0)));
        assert_eq!(s.backlog(), 1);
        let p = s.dequeue(Nanos(1)).unwrap();
        assert_eq!(p.id.0, 1);
        assert_eq!(s.backlog(), 0);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn adapter_counts_drops() {
        let mut s = TreeScheduler::new("fifo", fifo_tree(1));
        assert!(s.enqueue(Packet::new(1, FlowId(0), 100, Nanos(0)), Nanos(0)));
        assert!(!s.enqueue(Packet::new(2, FlowId(0), 100, Nanos(0)), Nanos(0)));
        assert_eq!(s.drops(), 1);
    }

    /// The scheduler adapter is backend-agnostic end to end: an identical
    /// STFQ workload driven through the real port loop departs in the
    /// same order on every PIFO engine.
    #[test]
    fn tree_scheduler_is_backend_invariant() {
        use crate::port::{run_port, PortConfig};
        use crate::traffic::{CbrSource, TrafficSource};
        use pifo_algos::{Stfq, WeightTable};

        let run = |backend: PifoBackend| -> Vec<(u64, u64)> {
            let end = Nanos::from_millis(1);
            let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
            for f in 1..=3u32 {
                sources.push(Box::new(CbrSource::new(
                    FlowId(f),
                    1_000,
                    4_000_000_000,
                    Nanos::ZERO,
                    end,
                )));
            }
            let mut arrivals = crate::traffic::merge(sources);
            crate::traffic::renumber(&mut arrivals);

            let table = WeightTable::from_pairs([(FlowId(1), 1), (FlowId(2), 2), (FlowId(3), 4)]);
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("WFQ", Box::new(Stfq::new(table)));
            b.buffer_limit(10_000);
            let tree = b.build(Box::new(move |_| root)).unwrap();
            let mut sched = TreeScheduler::new("WFQ", tree);
            let cfg = PortConfig::new(2_000_000_000).with_horizon(end);
            run_port(&arrivals, &mut sched, &cfg)
                .into_iter()
                .map(|d| (d.packet.id.0, d.finish.as_nanos()))
                .collect()
        };

        let reference = run(PifoBackend::SortedArray);
        assert!(
            !reference.is_empty(),
            "workload must actually depart packets"
        );
        for backend in [PifoBackend::Heap, PifoBackend::Bucket] {
            assert_eq!(
                run(backend),
                reference,
                "{backend} departure trace diverges"
            );
        }
    }

    /// A work-conserving tree driven through the real port loop never
    /// touches the shaping agenda: the whole enqueue/dequeue hot path is
    /// free of shaping inspections end to end, not just in unit tests.
    #[test]
    fn work_conserving_port_run_never_inspects_shaping() {
        use crate::port::{run_port, PortConfig};
        use crate::traffic::{CbrSource, TrafficSource};
        use pifo_algos::{Stfq, WeightTable};

        let end = Nanos::from_millis(1);
        let sources: Vec<Box<dyn TrafficSource>> = (1..=3u32)
            .map(|f| {
                Box::new(CbrSource::new(
                    FlowId(f),
                    1_000,
                    3_000_000_000,
                    Nanos::ZERO,
                    end,
                )) as Box<dyn TrafficSource>
            })
            .collect();
        let mut arrivals = crate::traffic::merge(sources);
        crate::traffic::renumber(&mut arrivals);

        let mut b = TreeBuilder::new();
        let root = b.add_root(
            "WFQ",
            Box::new(Stfq::new(WeightTable::from_pairs([
                (FlowId(1), 1),
                (FlowId(2), 2),
                (FlowId(3), 4),
            ]))),
        );
        let tree = b.build(Box::new(move |_| root)).unwrap();
        let mut sched = TreeScheduler::new("WFQ", tree);
        let deps = run_port(
            &arrivals,
            &mut sched,
            &PortConfig::new(2_000_000_000).with_horizon(end),
        );
        assert!(!deps.is_empty(), "workload departs packets");
        assert_eq!(
            sched.tree().shaping_inspections(),
            0,
            "no shaper in the tree, so the agenda must never be examined"
        );
    }

    #[test]
    fn next_ready_reports_shaping_gap() {
        use pifo_algos::TokenBucketFilter;
        let mut b = TreeBuilder::new();
        let root = b.add_root("root", Box::new(Fifo));
        let leaf = b.add_child(root, "shaped", Box::new(Fifo));
        // 8 Gb/s = 1 B/ns, burst one 1000 B packet.
        b.set_shaper(leaf, Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)));
        let tree = b.build(Box::new(move |_| leaf)).unwrap();
        let mut s = TreeScheduler::new("shaped", tree);

        s.enqueue(Packet::new(0, FlowId(0), 1_000, Nanos(0)), Nanos(0));
        s.enqueue(Packet::new(1, FlowId(0), 1_000, Nanos(0)), Nanos(0));
        // First packet passes the burst; drain it.
        assert!(s.dequeue(Nanos(0)).is_some());
        // Second is shaped 1000 ns out.
        assert!(s.dequeue(Nanos(1)).is_none());
        assert_eq!(s.next_ready(Nanos(1)), Some(Nanos(1_000)));
        assert!(s.dequeue(Nanos(1_000)).is_some());
    }
}
