//! A minimal deterministic discrete-event queue.
//!
//! Events pop in time order; ties pop in push order (a stable calendar),
//! which keeps every simulation in this workspace bit-for-bit reproducible.

use pifo_core::prelude::*;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, FIFO-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: Nanos, event: E) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(9), ());
        q.push(Nanos(3), ());
        assert_eq!(q.peek_time(), Some(Nanos(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
