//! Deterministic, seeded traffic generation.
//!
//! Sources produce finite packet streams (each [`Packet`] carries its
//! arrival time); [`merge`] interleaves several sources into one
//! time-sorted arrival list for a port. All randomness comes from a seeded
//! [`rand::rngs::StdRng`], keeping every experiment reproducible.

use pifo_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite stream of packets, already stamped with arrival times.
pub trait TrafficSource {
    /// The next packet, or `None` when the source is exhausted.
    fn next_packet(&mut self) -> Option<Packet>;

    /// PFC-style pause notification: the fabric asked this source to stop
    /// transmitting at `now` (§6.2). The default is a no-op — an
    /// oblivious source keeps its precomputed schedule, and the lossless
    /// fabric holds its packets back for it. Clock-driven sources
    /// override this (with [`resume`](Self::resume)) to *shift* their
    /// emission clock by the paused duration, like a real NIC that
    /// transmits nothing while paused rather than bursting a backlog.
    ///
    /// A second `pause` before the matching `resume` is idempotent.
    fn pause(&mut self, _now: Nanos) {}

    /// PFC-style resume notification at `now`; see [`pause`](Self::pause).
    /// Without a preceding `pause` this is a no-op.
    fn resume(&mut self, _now: Nanos) {}
}

/// Merge sources into one arrival-time-sorted vector.
///
/// Ties keep source order (stable), so experiments are deterministic.
pub fn merge(mut sources: Vec<Box<dyn TrafficSource>>) -> Vec<Packet> {
    let mut all: Vec<Packet> = Vec::new();
    for s in sources.iter_mut() {
        while let Some(p) = s.next_packet() {
            all.push(p);
        }
    }
    all.sort_by_key(|p| p.arrival);
    all
}

/// Re-number packet ids to be globally unique after merging (sources
/// assign ids independently). Call after [`merge`].
pub fn renumber(packets: &mut [Packet]) {
    for (i, p) in packets.iter_mut().enumerate() {
        p.id = PacketId(i as u64);
    }
}

// ---------------------------------------------------------------------------
// CBR
// ---------------------------------------------------------------------------

/// Constant-bit-rate source: fixed-size packets at exact intervals.
#[derive(Debug)]
pub struct CbrSource {
    flow: FlowId,
    pkt_len: u32,
    interval: Nanos,
    next_time: Nanos,
    end: Nanos,
    next_id: u64,
    seq: u64,
    class: u8,
    paused_at: Option<Nanos>,
}

impl CbrSource {
    /// A CBR stream for `flow`: `pkt_len`-byte packets at `rate_bps`,
    /// from `start` (inclusive) to `end` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the rate or length is zero.
    pub fn new(flow: FlowId, pkt_len: u32, rate_bps: u64, start: Nanos, end: Nanos) -> Self {
        assert!(
            rate_bps > 0 && pkt_len > 0,
            "rate and length must be positive"
        );
        let interval = tx_time(pkt_len as u64, rate_bps);
        CbrSource {
            flow,
            pkt_len,
            interval,
            next_time: start,
            end,
            next_id: 0,
            seq: 0,
            class: 0,
            paused_at: None,
        }
    }

    /// Set the priority class stamped on every packet.
    pub fn with_class(mut self, class: u8) -> Self {
        self.class = class;
        self
    }
}

impl TrafficSource for CbrSource {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.next_time >= self.end {
            return None;
        }
        let p = Packet::new(self.next_id, self.flow, self.pkt_len, self.next_time)
            .with_class(self.class)
            .with_seq_in_flow(self.seq);
        self.next_id += 1;
        self.seq += 1;
        self.next_time += self.interval;
        Some(p)
    }

    fn pause(&mut self, now: Nanos) {
        if self.paused_at.is_none() {
            self.paused_at = Some(now);
        }
    }

    fn resume(&mut self, now: Nanos) {
        if let Some(t0) = self.paused_at.take() {
            // Shift the emission clock by the paused duration: the
            // stream restarts at its configured rate, it does not burst.
            self.next_time += now.saturating_sub(t0);
        }
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Poisson arrivals: exponentially distributed gaps at a mean packet rate.
#[derive(Debug)]
pub struct PoissonSource {
    flow: FlowId,
    pkt_len: u32,
    mean_gap_ns: f64,
    next_time: Nanos,
    end: Nanos,
    rng: StdRng,
    next_id: u64,
    seq: u64,
}

impl PoissonSource {
    /// Poisson stream for `flow`: `pkt_len`-byte packets at an average of
    /// `rate_pps` packets/second until `end`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the rate or length is zero.
    pub fn new(flow: FlowId, pkt_len: u32, rate_pps: f64, end: Nanos, seed: u64) -> Self {
        assert!(
            rate_pps > 0.0 && pkt_len > 0,
            "rate and length must be positive"
        );
        PoissonSource {
            flow,
            pkt_len,
            mean_gap_ns: 1e9 / rate_pps,
            next_time: Nanos::ZERO,
            end,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            seq: 0,
        }
    }
}

impl TrafficSource for PoissonSource {
    fn next_packet(&mut self) -> Option<Packet> {
        // Exponential gap via inverse transform.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.mean_gap_ns).round() as u64;
        let t = Nanos(self.next_time.as_nanos() + gap);
        if t >= self.end {
            return None;
        }
        self.next_time = t;
        let p = Packet::new(self.next_id, self.flow, self.pkt_len, t).with_seq_in_flow(self.seq);
        self.next_id += 1;
        self.seq += 1;
        Some(p)
    }
}

// ---------------------------------------------------------------------------
// On/Off bursts
// ---------------------------------------------------------------------------

/// On/off source: bursts of back-to-back packets separated by idle gaps —
/// the bursty traffic Stop-and-Go (§3.2) is designed to smooth.
#[derive(Debug)]
pub struct OnOffSource {
    flow: FlowId,
    pkt_len: u32,
    burst_pkts: u32,
    line_gap: Nanos,
    idle_gap: Nanos,
    in_burst: u32,
    next_time: Nanos,
    end: Nanos,
    next_id: u64,
    seq: u64,
    paused_at: Option<Nanos>,
}

impl OnOffSource {
    /// Bursts of `burst_pkts` packets emitted back-to-back at
    /// `line_rate_bps`, separated by `idle` time, until `end`.
    ///
    /// # Panics
    ///
    /// Panics if any of the sizing parameters is zero.
    pub fn new(
        flow: FlowId,
        pkt_len: u32,
        burst_pkts: u32,
        line_rate_bps: u64,
        idle: Nanos,
        end: Nanos,
    ) -> Self {
        assert!(
            burst_pkts > 0 && pkt_len > 0,
            "burst and length must be positive"
        );
        OnOffSource {
            flow,
            pkt_len,
            burst_pkts,
            line_gap: tx_time(pkt_len as u64, line_rate_bps),
            idle_gap: idle,
            in_burst: 0,
            next_time: Nanos::ZERO,
            end,
            next_id: 0,
            seq: 0,
            paused_at: None,
        }
    }
}

impl TrafficSource for OnOffSource {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.next_time >= self.end {
            return None;
        }
        let p = Packet::new(self.next_id, self.flow, self.pkt_len, self.next_time)
            .with_seq_in_flow(self.seq);
        self.next_id += 1;
        self.seq += 1;
        self.in_burst += 1;
        if self.in_burst >= self.burst_pkts {
            self.in_burst = 0;
            self.next_time += self.idle_gap;
        } else {
            self.next_time += self.line_gap;
        }
        Some(p)
    }

    fn pause(&mut self, now: Nanos) {
        if self.paused_at.is_none() {
            self.paused_at = Some(now);
        }
    }

    fn resume(&mut self, now: Nanos) {
        if let Some(t0) = self.paused_at.take() {
            self.next_time += now.saturating_sub(t0);
        }
    }
}

// ---------------------------------------------------------------------------
// Incast
// ---------------------------------------------------------------------------

/// Incast: `fanin` synchronized senders all firing a burst at the same
/// target at once, repeating every `period` — the partition/aggregate
/// traffic that concentrates load on one egress port and stresses a
/// switch far beyond what any single smooth flow can.
///
/// Each epoch, every sender emits `pkts_per_sender` back-to-back packets
/// at its access line rate, and all `fanin` senders start simultaneously
/// (their packets tie instant-for-instant; [`merge`]'s stable sort keeps
/// per-sender order). Senders are flows `base_flow .. base_flow + fanin`.
#[derive(Debug)]
pub struct IncastSource {
    base_flow: u32,
    fanin: u32,
    pkt_len: u32,
    pkts_per_sender: u32,
    line_gap: Nanos,
    period: Nanos,
    end: Nanos,
    /// Iteration state: (epoch, packet-within-sender, sender).
    epoch: u64,
    k: u32,
    sender: u32,
    next_id: u64,
    /// Cumulative PFC pause shift added to every emitted time (incast
    /// times are computed from the epoch grid rather than carried in a
    /// clock, so the shift is additive).
    offset: Nanos,
    paused_at: Option<Nanos>,
}

impl IncastSource {
    /// `fanin` senders, each bursting `pkts_per_sender` packets of
    /// `pkt_len` bytes at `line_rate_bps`, synchronized every `period`
    /// until `end`. Flows are numbered from `base_flow`.
    ///
    /// # Panics
    ///
    /// Panics if any sizing parameter is zero, or if a sender's burst
    /// does not fit inside `period` — overlapping epochs would make the
    /// emitted stream non-monotonic in time (and the exhaustion check
    /// would silently drop the overlapped tail), breaking the documented
    /// time-sorted contract.
    pub fn new(
        base_flow: FlowId,
        fanin: u32,
        pkt_len: u32,
        pkts_per_sender: u32,
        line_rate_bps: u64,
        period: Nanos,
        end: Nanos,
    ) -> Self {
        assert!(
            fanin > 0 && pkt_len > 0 && pkts_per_sender > 0 && period > Nanos::ZERO,
            "incast sizing parameters must be positive"
        );
        let line_gap = tx_time(pkt_len as u64, line_rate_bps);
        assert!(
            (pkts_per_sender as u64 - 1) * line_gap.as_nanos() < period.as_nanos(),
            "incast burst ({pkts_per_sender} pkts x {line_gap} gap) must fit inside the \
             {period} period, or epochs would overlap and emission order would not be \
             time-sorted"
        );
        IncastSource {
            base_flow: base_flow.0,
            fanin,
            pkt_len,
            pkts_per_sender,
            line_gap,
            period,
            end,
            epoch: 0,
            k: 0,
            sender: 0,
            next_id: 0,
            offset: Nanos::ZERO,
            paused_at: None,
        }
    }
}

impl TrafficSource for IncastSource {
    fn next_packet(&mut self) -> Option<Packet> {
        // Emission order (epoch, k, sender) is time-sorted: within an
        // epoch, packet k of *every* sender shares one arrival instant.
        let t = Nanos(
            self.offset.as_nanos()
                + self.epoch * self.period.as_nanos()
                + self.k as u64 * self.line_gap.as_nanos(),
        );
        if t >= self.end {
            return None;
        }
        let p = Packet::new(
            self.next_id,
            FlowId(self.base_flow + self.sender),
            self.pkt_len,
            t,
        )
        .with_seq_in_flow((self.epoch * self.pkts_per_sender as u64) + self.k as u64);
        self.next_id += 1;
        self.sender += 1;
        if self.sender == self.fanin {
            self.sender = 0;
            self.k += 1;
            if self.k == self.pkts_per_sender {
                self.k = 0;
                self.epoch += 1;
            }
        }
        Some(p)
    }

    fn pause(&mut self, now: Nanos) {
        if self.paused_at.is_none() {
            self.paused_at = Some(now);
        }
    }

    fn resume(&mut self, now: Nanos) {
        if let Some(t0) = self.paused_at.take() {
            self.offset += now.saturating_sub(t0);
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized (Markov-style) on/off bursts
// ---------------------------------------------------------------------------

/// On/off source with *randomized* burst and idle durations: burst
/// lengths are 1 + Exp(mean_burst_pkts − 1) packets (rounded), idle gaps
/// Exp(mean_idle) — the seeded, heavy-burst traffic that batching
/// schedulers (Eiffel, NSDI'19) are built for, where the deterministic
/// [`OnOffSource`] is too regular to expose queue-depth excursions.
#[derive(Debug)]
pub struct MarkovOnOffSource {
    flow: FlowId,
    pkt_len: u32,
    mean_burst_pkts: f64,
    mean_idle_ns: f64,
    line_gap: Nanos,
    rng: StdRng,
    remaining_in_burst: u32,
    next_time: Nanos,
    end: Nanos,
    next_id: u64,
    seq: u64,
    paused_at: Option<Nanos>,
}

impl MarkovOnOffSource {
    /// Bursts averaging `mean_burst_pkts` packets of `pkt_len` bytes at
    /// `line_rate_bps`, separated by idle gaps averaging `mean_idle`,
    /// until `end`; all randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the burst mean is below 1 or the length is zero.
    pub fn new(
        flow: FlowId,
        pkt_len: u32,
        mean_burst_pkts: f64,
        line_rate_bps: u64,
        mean_idle: Nanos,
        end: Nanos,
        seed: u64,
    ) -> Self {
        assert!(
            mean_burst_pkts >= 1.0 && pkt_len > 0,
            "mean burst must be >= 1 packet and length positive"
        );
        let mut src = MarkovOnOffSource {
            flow,
            pkt_len,
            mean_burst_pkts,
            mean_idle_ns: mean_idle.as_nanos() as f64,
            line_gap: tx_time(pkt_len as u64, line_rate_bps),
            rng: StdRng::seed_from_u64(seed),
            remaining_in_burst: 0,
            next_time: Nanos::ZERO,
            end,
            next_id: 0,
            seq: 0,
            paused_at: None,
        };
        src.remaining_in_burst = src.sample_burst();
        src
    }

    fn exp_sample(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    }

    fn sample_burst(&mut self) -> u32 {
        // 1 + Exp(mean - 1): strictly positive bursts with the requested
        // mean, exponentially heavy tails.
        let extra = self.exp_sample(self.mean_burst_pkts - 1.0);
        1 + extra.round().min(u32::MAX as f64 / 2.0) as u32
    }
}

impl TrafficSource for MarkovOnOffSource {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.next_time >= self.end {
            return None;
        }
        let p = Packet::new(self.next_id, self.flow, self.pkt_len, self.next_time)
            .with_seq_in_flow(self.seq);
        self.next_id += 1;
        self.seq += 1;
        self.remaining_in_burst -= 1;
        if self.remaining_in_burst == 0 {
            let idle = self.exp_sample(self.mean_idle_ns).round() as u64;
            self.next_time += Nanos(self.line_gap.as_nanos() + idle);
            self.remaining_in_burst = self.sample_burst();
        } else {
            self.next_time += self.line_gap;
        }
        Some(p)
    }

    fn pause(&mut self, now: Nanos) {
        if self.paused_at.is_none() {
            self.paused_at = Some(now);
        }
    }

    fn resume(&mut self, now: Nanos) {
        if let Some(t0) = self.paused_at.take() {
            self.next_time += now.saturating_sub(t0);
        }
    }
}

// ---------------------------------------------------------------------------
// Flow workloads (for FCT experiments)
// ---------------------------------------------------------------------------

/// An empirical flow-size distribution given as a CDF over sizes in bytes.
#[derive(Debug, Clone)]
pub struct SizeDistribution {
    /// `(size_bytes, cumulative_probability)`, increasing in both.
    points: Vec<(u64, f64)>,
}

impl SizeDistribution {
    /// Build from `(size, cdf)` points.
    ///
    /// # Panics
    ///
    /// Panics if points are empty, unordered, or the last CDF != 1.0.
    pub fn new(points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "distribution needs points");
        for w in points.windows(2) {
            assert!(
                w[0].0 <= w[1].0 && w[0].1 <= w[1].1,
                "CDF points must be non-decreasing"
            );
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0"
        );
        SizeDistribution { points }
    }

    /// A web-search-like heavy-tailed distribution (most flows are a few
    /// KB; a small fraction are multi-MB), in the spirit of the workloads
    /// that motivate SRPT/pFabric (§1, §3.4).
    pub fn web_search() -> Self {
        SizeDistribution::new(vec![
            (6_000, 0.15),
            (13_000, 0.30),
            (19_000, 0.45),
            (33_000, 0.60),
            (53_000, 0.70),
            (133_000, 0.80),
            (667_000, 0.90),
            (1_333_000, 0.95),
            (6_667_000, 0.98),
            (20_000_000, 1.00),
        ])
    }

    /// A bounded Pareto distribution on `[min_bytes, max_bytes]` with
    /// tail index `alpha` — the canonical heavy-tailed flow-size model
    /// (small `alpha` ⇒ heavier tail; `alpha ≈ 1.1–1.3` matches measured
    /// datacenter workloads). Discretized onto 32 log-spaced CDF points,
    /// sampled with the same inverse-transform interpolation as the
    /// empirical distributions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_bytes < max_bytes` and `alpha > 0`.
    pub fn bounded_pareto(alpha: f64, min_bytes: u64, max_bytes: u64) -> Self {
        assert!(
            alpha > 0.0 && min_bytes > 0 && min_bytes < max_bytes,
            "need alpha > 0 and 0 < min < max"
        );
        const POINTS: usize = 32;
        let (xm, xmax) = (min_bytes as f64, max_bytes as f64);
        // Bounded-Pareto CDF: F(x) = (1 - (xm/x)^a) / (1 - (xm/xM)^a).
        let tail = (xm / xmax).powf(alpha);
        let cdf = |x: f64| (1.0 - (xm / x).powf(alpha)) / (1.0 - tail);
        let log_step = (xmax / xm).ln() / (POINTS - 1) as f64;
        let mut points: Vec<(u64, f64)> = (0..POINTS)
            .map(|i| {
                let x = xm * (log_step * i as f64).exp();
                (x.round() as u64, cdf(x).clamp(0.0, 1.0))
            })
            .collect();
        // Pin the endpoints exactly (float round-off must not violate
        // the CDF contract).
        points.first_mut().expect("POINTS > 0").1 = 0.0;
        let last = points.last_mut().expect("POINTS > 0");
        last.0 = max_bytes;
        last.1 = 1.0;
        // Monotonicity can be dented by rounding at tiny ranges; repair.
        for i in 1..points.len() {
            if points[i].0 < points[i - 1].0 {
                points[i].0 = points[i - 1].0;
            }
            if points[i].1 < points[i - 1].1 {
                points[i].1 = points[i - 1].1;
            }
        }
        SizeDistribution::new(points)
    }

    /// A data-mining-like distribution: even heavier tail, most flows tiny.
    pub fn data_mining() -> Self {
        SizeDistribution::new(vec![
            (100, 0.50),
            (1_000, 0.60),
            (10_000, 0.70),
            (100_000, 0.80),
            (1_000_000, 0.90),
            (10_000_000, 0.95),
            (100_000_000, 1.00),
        ])
    }

    /// Sample a size using inverse-transform over the piecewise CDF.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut prev_size = 0u64;
        let mut prev_cdf = 0.0;
        for &(size, cdf) in &self.points {
            if u <= cdf {
                // Linear interpolation within the segment.
                let frac = if cdf > prev_cdf {
                    (u - prev_cdf) / (cdf - prev_cdf)
                } else {
                    1.0
                };
                let lo = prev_size as f64;
                let hi = size as f64;
                return (lo + frac * (hi - lo)).max(1.0) as u64;
            }
            prev_size = size;
            prev_cdf = cdf;
        }
        self.points.last().unwrap().0
    }
}

/// A generated flow: id, arrival of its first packet, total size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Flow identifier.
    pub flow: FlowId,
    /// Time the flow starts.
    pub start: Nanos,
    /// Total bytes.
    pub size: u64,
}

/// Generate an open-loop flow workload: flows arrive Poisson at
/// `flows_per_sec`, sizes from `dist`, each flow's packets injected
/// back-to-back at `access_rate_bps` in `mtu`-byte packets.
///
/// Packets carry `flow_size` and `remaining` so SJF/SRPT/LAS transactions
/// work out of the box. Returns the packets (time-sorted) and the specs.
pub fn flow_workload(
    n_flows: usize,
    flows_per_sec: f64,
    dist: &SizeDistribution,
    access_rate_bps: u64,
    mtu: u32,
    seed: u64,
) -> (Vec<Packet>, Vec<FlowSpec>) {
    assert!(n_flows > 0 && mtu > 0, "need flows and a positive MTU");
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / flows_per_sec;
    let mut t = 0u64;
    let mut specs = Vec::with_capacity(n_flows);
    let mut packets = Vec::new();
    let gap = tx_time(mtu as u64, access_rate_bps);

    for i in 0..n_flows {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += (-u.ln() * mean_gap_ns).round() as u64;
        let size = dist.sample(&mut rng);
        let flow = FlowId(i as u32);
        specs.push(FlowSpec {
            flow,
            start: Nanos(t),
            size,
        });
        let mut remaining = size;
        let mut pt = Nanos(t);
        let mut seq = 0u64;
        let mut attained = 0u64;
        while remaining > 0 {
            let len = remaining.min(mtu as u64) as u32;
            packets.push(
                Packet::new(0, flow, len, pt)
                    .with_flow_size(size)
                    .with_remaining(remaining)
                    .with_attained(attained)
                    .with_seq_in_flow(seq),
            );
            attained += len as u64;
            remaining -= len as u64;
            seq += 1;
            pt += gap;
        }
    }
    packets.sort_by_key(|p| p.arrival);
    renumber(&mut packets);
    (packets, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_spacing_is_exact() {
        // 1000 B at 8 Mb/s: 1 ms per packet.
        let mut s = CbrSource::new(
            FlowId(1),
            1_000,
            8_000_000,
            Nanos::ZERO,
            Nanos::from_millis(5),
        );
        let times: Vec<u64> = std::iter::from_fn(|| s.next_packet())
            .map(|p| p.arrival.as_nanos())
            .collect();
        assert_eq!(times, vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]);
    }

    #[test]
    fn cbr_respects_start_and_class() {
        let mut s = CbrSource::new(FlowId(1), 500, 8_000_000, Nanos(100), Nanos(200)).with_class(3);
        let p = s.next_packet().unwrap();
        assert_eq!(p.arrival, Nanos(100));
        assert_eq!(p.class, 3);
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let a: Vec<u64> = {
            let mut s = PoissonSource::new(FlowId(0), 100, 1e6, Nanos::from_millis(1), 42);
            std::iter::from_fn(|| s.next_packet())
                .map(|p| p.arrival.as_nanos())
                .collect()
        };
        let b: Vec<u64> = {
            let mut s = PoissonSource::new(FlowId(0), 100, 1e6, Nanos::from_millis(1), 42);
            std::iter::from_fn(|| s.next_packet())
                .map(|p| p.arrival.as_nanos())
                .collect()
        };
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        // 1e6 pps over 100 ms ≈ 100_000 packets; allow 5%.
        let mut s = PoissonSource::new(FlowId(0), 100, 1e6, Nanos::from_millis(100), 7);
        let n = std::iter::from_fn(|| s.next_packet()).count();
        assert!((90_000..110_000).contains(&n), "got {n}");
    }

    #[test]
    fn onoff_bursts_then_idles() {
        let mut s = OnOffSource::new(
            FlowId(0),
            1_000,
            3,
            8_000_000_000, // 1 B/ns -> 1000 ns per packet
            Nanos(10_000),
            Nanos(50_000),
        );
        let times: Vec<u64> = std::iter::from_fn(|| s.next_packet())
            .map(|p| p.arrival.as_nanos())
            .take(6)
            .collect();
        assert_eq!(times, vec![0, 1_000, 2_000, 12_000, 13_000, 14_000]);
    }

    #[test]
    fn merge_sorts_by_time() {
        let a = CbrSource::new(FlowId(0), 100, 8_000_000, Nanos(50), Nanos::from_millis(1));
        let b = CbrSource::new(FlowId(1), 100, 8_000_000, Nanos(0), Nanos::from_millis(1));
        let mut merged = merge(vec![Box::new(a), Box::new(b)]);
        renumber(&mut merged);
        assert!(merged.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Ids unique and dense.
        for (i, p) in merged.iter().enumerate() {
            assert_eq!(p.id.0, i as u64);
        }
    }

    #[test]
    fn size_distribution_samples_within_support() {
        let d = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((1..=20_000_000).contains(&s));
        }
    }

    #[test]
    fn size_distribution_median_sane() {
        // Web-search CDF hits 0.45 at 19KB and 0.60 at 33KB; the median
        // must land between.
        let d = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(2);
        let mut samples: Vec<u64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!((19_000..=33_000).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic(expected = "CDF must end at 1.0")]
    fn bad_cdf_rejected() {
        let _ = SizeDistribution::new(vec![(100, 0.5)]);
    }

    #[test]
    fn incast_senders_fire_simultaneously() {
        // 4 senders, 2 packets each, 1000 B at 1 B/ns, every 50 µs.
        let mut s = IncastSource::new(
            FlowId(10),
            4,
            1_000,
            2,
            8_000_000_000,
            Nanos::from_micros(50),
            Nanos::from_micros(120),
        );
        let pkts: Vec<Packet> = std::iter::from_fn(|| s.next_packet()).collect();
        // 3 epochs fit (t = 0, 50 µs, 100 µs) × 4 senders × 2 packets.
        assert_eq!(pkts.len(), 24);
        // First wave: all 4 senders at t=0, then all 4 at t=1000.
        let wave: Vec<(u64, u32)> = pkts[..8]
            .iter()
            .map(|p| (p.arrival.as_nanos(), p.flow.0))
            .collect();
        assert_eq!(
            wave,
            vec![
                (0, 10),
                (0, 11),
                (0, 12),
                (0, 13),
                (1_000, 10),
                (1_000, 11),
                (1_000, 12),
                (1_000, 13),
            ]
        );
        // Epochs repeat at the period.
        assert_eq!(pkts[8].arrival, Nanos::from_micros(50));
        assert!(pkts.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Per-sender sequence numbers advance across epochs.
        let f10: Vec<u64> = pkts
            .iter()
            .filter(|p| p.flow.0 == 10)
            .map(|p| p.seq_in_flow)
            .collect();
        assert_eq!(f10, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pause_shifts_the_cbr_clock_without_bursting() {
        // 1000 B at 8 Mb/s: 1 ms per packet. Pause for 2.5 ms after the
        // second packet: the stream resumes on a shifted grid, never
        // emitting a backlog burst, and pause is idempotent.
        let mut s = CbrSource::new(
            FlowId(1),
            1_000,
            8_000_000,
            Nanos::ZERO,
            Nanos::from_millis(10),
        );
        let a = s.next_packet().unwrap();
        let b = s.next_packet().unwrap();
        assert_eq!((a.arrival.0, b.arrival.0), (0, 1_000_000));
        s.pause(Nanos::from_millis(2));
        s.pause(Nanos::from_millis(3)); // second pause: no double shift
        s.resume(Nanos(4_500_000));
        let c = s.next_packet().unwrap();
        assert_eq!(c.arrival, Nanos(4_500_000), "clock shifted by the pause");
        let d = s.next_packet().unwrap();
        assert_eq!(d.arrival, Nanos(5_500_000), "rate preserved after resume");
        // A resume without a pause is a no-op.
        s.resume(Nanos::from_millis(9));
        assert_eq!(s.next_packet().unwrap().arrival, Nanos(6_500_000));
    }

    #[test]
    fn pause_shifts_the_incast_epoch_grid() {
        let mut s = IncastSource::new(
            FlowId(10),
            2,
            1_000,
            2,
            8_000_000_000,
            Nanos::from_micros(50),
            Nanos::from_micros(200),
        );
        // Drain epoch 0 (2 senders × 2 packets).
        for _ in 0..4 {
            s.next_packet().unwrap();
        }
        s.pause(Nanos::from_micros(10));
        s.resume(Nanos::from_micros(30));
        // Epoch 1 lands 20 µs late, and the intra-epoch grid is intact.
        let p = s.next_packet().unwrap();
        assert_eq!(p.arrival, Nanos::from_micros(70));
        for _ in 0..2 {
            s.next_packet().unwrap();
        }
        assert_eq!(s.next_packet().unwrap().arrival, Nanos(71_000));
    }

    #[test]
    fn default_pause_is_a_noop() {
        // PoissonSource keeps the trait defaults: pausing must not
        // disturb its schedule.
        let run = |pause: bool| {
            let mut s = PoissonSource::new(FlowId(0), 100, 1e6, Nanos::from_micros(100), 42);
            let mut out = Vec::new();
            for i in 0.. {
                if pause && i == 3 {
                    s.pause(Nanos(1));
                    s.resume(Nanos(2));
                }
                match s.next_packet() {
                    Some(p) => out.push(p.arrival.0),
                    None => break,
                }
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn markov_onoff_is_bursty_and_deterministic() {
        let gen = || {
            let mut s = MarkovOnOffSource::new(
                FlowId(0),
                1_000,
                8.0,
                8_000_000_000,
                Nanos::from_micros(20),
                Nanos::from_millis(2),
                99,
            );
            std::iter::from_fn(move || s.next_packet())
                .map(|p| p.arrival.as_nanos())
                .collect::<Vec<u64>>()
        };
        let a = gen();
        assert_eq!(a, gen(), "same seed, same stream");
        assert!(a.len() > 50, "got {}", a.len());
        // Bursty: both back-to-back gaps (line gap = 1000 ns) and long
        // idles must appear.
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.contains(&1_000), "line-rate gaps inside bursts");
        assert!(gaps.iter().any(|&g| g > 5_000), "idle gaps between bursts");
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed_within_support() {
        let d = SizeDistribution::bounded_pareto(1.2, 1_000, 10_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (1..=10_000_000).contains(&s)));
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Heavy tail: the mean sits far above the median, and the top
        // percentile reaches deep into the tail.
        assert!(median < 3_000, "median {median} should be near the minimum");
        assert!(mean > 2.0 * median as f64, "mean {mean} vs median {median}");
        assert!(sorted[sorted.len() * 99 / 100] > 40_000);
    }

    #[test]
    fn flow_workload_packets_consistent() {
        let (pkts, specs) = flow_workload(
            20,
            10_000.0,
            &SizeDistribution::web_search(),
            10_000_000_000,
            1_500,
            3,
        );
        assert_eq!(specs.len(), 20);
        // Per-flow totals must match the spec.
        for spec in &specs {
            let total: u64 = pkts
                .iter()
                .filter(|p| p.flow == spec.flow)
                .map(|p| p.length as u64)
                .sum();
            assert_eq!(total, spec.size, "flow {} bytes", spec.flow);
        }
        // remaining must decrease along each flow, ending at last packet len.
        for spec in &specs {
            let mut flow_pkts: Vec<&Packet> = pkts.iter().filter(|p| p.flow == spec.flow).collect();
            flow_pkts.sort_by_key(|p| p.seq_in_flow);
            let mut expect = spec.size;
            for p in flow_pkts {
                assert_eq!(p.remaining, expect);
                assert_eq!(p.flow_size, spec.size);
                expect -= p.length as u64;
            }
            assert_eq!(expect, 0);
        }
    }
}
